//! The generic gossip-based peer-sampling framework (Jelasity, Voulgaris,
//! Guerraoui, Kermarrec & van Steen, TOCS 2007) — the paper's overlay
//! substrate, the paper's reference \[11\].
//!
//! Every node keeps a *partial view*: up to `view_size` node descriptors,
//! each with an *age*. Periodically a node selects a peer (uniformly at
//! random or the oldest descriptor — `rand`/`tail`), the two exchange
//! buffers of `exchange_len` descriptors (each side's buffer leads with a
//! fresh self-descriptor), and each installs the received buffer with two
//! tunable clean-up steps:
//!
//! * **healing `H`** — after merging, drop up to `H` of the *oldest*
//!   descriptors: old descriptors are the likeliest to be dead, so larger
//!   `H` purges failed nodes faster;
//! * **swapping `S`** — drop up to `S` of the descriptors that were just
//!   sent to the peer: larger `S` makes the exchange closer to a swap
//!   (Cyclon), reducing descriptor replication.
//!
//! The framework subsumes the classic protocols: `H=0, S=ℓ` ≈ Cyclon,
//! `H=ℓ, S=0` ≈ Newscast-with-healing. The [`Overlay`](crate::Overlay)
//! shuffle mode drives this module once per round.
//!
//! All steps are pure functions over [`PsView`]s so the policies can be
//! unit-tested without an engine.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::RngExt as _;

use crate::node::{NodeId, NodeSlab};

/// How the gossip partner is selected from the view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeerSelection {
    /// A uniformly random view entry.
    #[default]
    Random,
    /// The entry with the highest age ("tail") — detects failed peers
    /// sooner and evens out descriptor ages.
    Tail,
}

/// Parameters of the peer-sampling framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerSamplingPolicy {
    /// Partial view size `c`.
    pub view_size: usize,
    /// Descriptors exchanged per gossip (`ℓ`, including the fresh
    /// self-descriptor).
    pub exchange_len: usize,
    /// Healing parameter `H`: old descriptors dropped after a merge.
    pub healing: usize,
    /// Swapping parameter `S`: sent descriptors dropped after a merge.
    pub swap: usize,
    /// Partner selection policy.
    pub selection: PeerSelection,
}

impl PeerSamplingPolicy {
    /// A balanced default (the TOCS paper's healer/swapper middle ground):
    /// `ℓ = c/2`, `H = 1`, `S = ℓ/2 - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `view_size < 2`.
    pub fn balanced(view_size: usize) -> Self {
        assert!(view_size >= 2, "view_size must be at least 2");
        let exchange_len = (view_size / 2).max(2);
        Self {
            view_size,
            exchange_len,
            healing: 1,
            swap: (exchange_len / 2).saturating_sub(1),
            selection: PeerSelection::Tail,
        }
    }

    /// Validates the invariants `ℓ <= c` and `H + S <= ℓ`.
    pub fn is_valid(&self) -> bool {
        self.view_size >= 2
            && self.exchange_len >= 1
            && self.exchange_len <= self.view_size
            && self.healing + self.swap <= self.exchange_len
    }
}

/// One view entry: a node descriptor and its age in gossip rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewEntry {
    /// The descriptor.
    pub id: NodeId,
    /// Rounds since the descriptor was created.
    pub age: u32,
}

/// A node's partial view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PsView {
    entries: Vec<ViewEntry>,
}

impl PsView {
    /// Creates an empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current entries.
    pub fn entries(&self) -> &[ViewEntry] {
        &self.entries
    }

    /// The descriptors currently in the view.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|e| e.id)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a descriptor if not already present (used for bootstrap).
    pub fn insert(&mut self, id: NodeId, age: u32) {
        if !self.entries.iter().any(|e| e.id == id) {
            self.entries.push(ViewEntry { id, age });
        }
    }

    /// Ages every descriptor by one round.
    pub fn increase_ages(&mut self) {
        for e in &mut self.entries {
            e.age = e.age.saturating_add(1);
        }
    }

    /// Removes descriptors of dead nodes.
    pub fn prune_dead<N>(&mut self, slab: &NodeSlab<N>) {
        self.entries.retain(|e| slab.contains(e.id));
    }

    /// Removes the descriptor for `id`, returning whether one was present
    /// (used by the overlay's incremental churn scrub).
    pub fn remove_id(&mut self, id: NodeId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.id != id);
        self.entries.len() != before
    }

    /// Selects the gossip partner per the policy (`None` if the view is
    /// empty).
    pub fn select_peer(&self, selection: PeerSelection, rng: &mut StdRng) -> Option<NodeId> {
        if self.entries.is_empty() {
            return None;
        }
        match selection {
            PeerSelection::Random => Some(self.entries[rng.random_range(0..self.entries.len())].id),
            PeerSelection::Tail => self.entries.iter().max_by_key(|e| e.age).map(|e| e.id),
        }
    }

    /// Builds the buffer to send: a fresh self-descriptor followed by
    /// `ℓ - 1` entries of a shuffled view with the `H` oldest moved to the
    /// end (so old descriptors are the least likely to propagate).
    pub fn build_buffer(
        &mut self,
        own: NodeId,
        policy: &PeerSamplingPolicy,
        rng: &mut StdRng,
    ) -> Vec<ViewEntry> {
        self.entries.shuffle(rng);
        // Move only the H oldest descriptors to the back of the view so
        // they are least likely to propagate; the rest stays in shuffled
        // (uniform) order — sorting everything would systematically
        // over-propagate young descriptors and skew in-degrees.
        let len = self.entries.len();
        let h = policy.healing.min(len);
        for k in 0..h {
            let back = len - 1 - k;
            let oldest = self.entries[..=back]
                .iter()
                .enumerate()
                .max_by_key(|(_, e)| e.age)
                .map(|(i, _)| i)
                .expect("non-empty prefix");
            self.entries.swap(oldest, back);
        }
        let mut buffer = Vec::with_capacity(policy.exchange_len);
        buffer.push(ViewEntry { id: own, age: 0 });
        for e in self
            .entries
            .iter()
            .take(policy.exchange_len.saturating_sub(1))
        {
            buffer.push(*e);
        }
        buffer
    }

    /// Installs a received buffer: append, deduplicate (keeping the
    /// youngest copy of each descriptor and dropping self-references),
    /// then shrink back to `c` by healing (`H` oldest), swapping (`S`
    /// just-sent entries) and finally random eviction.
    pub fn select(
        &mut self,
        own: NodeId,
        received: &[ViewEntry],
        sent: &[ViewEntry],
        policy: &PeerSamplingPolicy,
        rng: &mut StdRng,
    ) {
        self.entries.extend(received.iter().copied());
        self.entries.retain(|e| e.id != own);
        // Deduplicate keeping the youngest age per descriptor.
        self.entries
            .sort_by(|a, b| a.id.cmp(&b.id).then(a.age.cmp(&b.age)));
        self.entries.dedup_by_key(|e| e.id);

        // Healing: drop the H oldest while above the target size.
        let over = |len: usize| len.saturating_sub(policy.view_size);
        let h = policy.healing.min(over(self.entries.len()));
        if h > 0 {
            self.entries.sort_by_key(|e| e.age);
            self.entries.truncate(self.entries.len() - h);
        }
        // Swapping: drop up to S of the entries we just sent.
        let mut s = policy.swap.min(over(self.entries.len()));
        if s > 0 {
            self.entries.retain(|e| {
                if s > 0 && sent.iter().any(|x| x.id == e.id) {
                    s -= 1;
                    false
                } else {
                    true
                }
            });
        }
        // Random eviction down to the view size.
        while self.entries.len() > policy.view_size {
            let victim = rng.random_range(0..self.entries.len());
            self.entries.swap_remove(victim);
        }
    }
}

/// One full push–pull peer-sampling exchange between nodes `a` and `b`
/// (both views mutated).
pub fn ps_exchange(
    a_id: NodeId,
    a: &mut PsView,
    b_id: NodeId,
    b: &mut PsView,
    policy: &PeerSamplingPolicy,
    rng: &mut StdRng,
) {
    let buffer_a = a.build_buffer(a_id, policy, rng);
    let buffer_b = b.build_buffer(b_id, policy, rng);
    b.select(b_id, &buffer_a, &buffer_b, policy, rng);
    a.select(a_id, &buffer_b, &buffer_a, policy, rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn ids(n: usize) -> (NodeSlab<u32>, Vec<NodeId>) {
        let mut slab = NodeSlab::new();
        let ids = (0..n as u32).map(|i| slab.insert(i)).collect();
        (slab, ids)
    }

    fn policy() -> PeerSamplingPolicy {
        PeerSamplingPolicy::balanced(8)
    }

    #[test]
    fn balanced_policy_is_valid() {
        for c in [2, 4, 8, 20, 50] {
            assert!(PeerSamplingPolicy::balanced(c).is_valid(), "c = {c}");
        }
        let bad = PeerSamplingPolicy {
            view_size: 4,
            exchange_len: 8,
            healing: 0,
            swap: 0,
            selection: PeerSelection::Random,
        };
        assert!(!bad.is_valid());
    }

    #[test]
    fn insert_is_idempotent_and_ages_grow() {
        let (_, nodes) = ids(3);
        let mut view = PsView::new();
        view.insert(nodes[1], 0);
        view.insert(nodes[1], 5);
        assert_eq!(view.len(), 1);
        view.increase_ages();
        view.increase_ages();
        assert_eq!(view.entries()[0].age, 2);
    }

    #[test]
    fn tail_selection_picks_the_oldest() {
        let (_, nodes) = ids(4);
        let mut view = PsView::new();
        view.insert(nodes[1], 3);
        view.insert(nodes[2], 9);
        view.insert(nodes[3], 1);
        let mut rng = seeded_rng(1);
        assert_eq!(
            view.select_peer(PeerSelection::Tail, &mut rng),
            Some(nodes[2])
        );
        assert_eq!(
            PsView::new().select_peer(PeerSelection::Tail, &mut rng),
            None
        );
    }

    #[test]
    fn buffer_leads_with_fresh_self_descriptor() {
        let (_, nodes) = ids(10);
        let mut view = PsView::new();
        for n in &nodes[1..] {
            view.insert(*n, 4);
        }
        let mut rng = seeded_rng(2);
        let p = policy();
        let buffer = view.build_buffer(nodes[0], &p, &mut rng);
        assert_eq!(buffer.len(), p.exchange_len);
        assert_eq!(
            buffer[0],
            ViewEntry {
                id: nodes[0],
                age: 0
            }
        );
    }

    #[test]
    fn select_deduplicates_keeping_the_youngest() {
        let (_, nodes) = ids(4);
        let mut view = PsView::new();
        view.insert(nodes[1], 7);
        let received = [
            ViewEntry {
                id: nodes[1],
                age: 2,
            },
            ViewEntry {
                id: nodes[2],
                age: 0,
            },
        ];
        let mut rng = seeded_rng(3);
        view.select(nodes[0], &received, &[], &policy(), &mut rng);
        let e1 = view
            .entries()
            .iter()
            .find(|e| e.id == nodes[1])
            .expect("kept");
        assert_eq!(e1.age, 2, "youngest copy wins");
        assert!(view.ids().any(|i| i == nodes[2]));
    }

    #[test]
    fn select_never_keeps_self_and_respects_view_size() {
        let (_, nodes) = ids(30);
        let p = policy();
        let mut view = PsView::new();
        for n in &nodes[1..20] {
            view.insert(*n, 1);
        }
        let received: Vec<ViewEntry> = nodes[20..]
            .iter()
            .map(|n| ViewEntry { id: *n, age: 0 })
            .chain(std::iter::once(ViewEntry {
                id: nodes[0],
                age: 0,
            }))
            .collect();
        let mut rng = seeded_rng(4);
        view.select(nodes[0], &received, &[], &p, &mut rng);
        assert!(view.len() <= p.view_size);
        assert!(
            !view.ids().any(|i| i == nodes[0]),
            "self reference survived"
        );
    }

    #[test]
    fn healing_preferentially_drops_old_entries() {
        let (_, nodes) = ids(20);
        let p = PeerSamplingPolicy {
            view_size: 8,
            exchange_len: 4,
            healing: 4,
            swap: 0,
            selection: PeerSelection::Tail,
        };
        let mut view = PsView::new();
        // Fill with 8 very old entries, receive 4 fresh ones.
        for n in &nodes[1..9] {
            view.insert(*n, 50);
        }
        let received: Vec<ViewEntry> = nodes[9..13]
            .iter()
            .map(|n| ViewEntry { id: *n, age: 0 })
            .collect();
        let mut rng = seeded_rng(5);
        view.select(nodes[0], &received, &[], &p, &mut rng);
        // All four fresh descriptors must survive; the healing dropped old
        // ones to make room.
        for n in &nodes[9..13] {
            assert!(view.ids().any(|i| i == *n), "fresh descriptor evicted");
        }
    }

    #[test]
    fn exchange_spreads_descriptors_both_ways() {
        let (_, nodes) = ids(12);
        let p = policy();
        let mut a = PsView::new();
        let mut b = PsView::new();
        for n in &nodes[2..7] {
            a.insert(*n, 3);
        }
        for n in &nodes[7..12] {
            b.insert(*n, 3);
        }
        let mut rng = seeded_rng(6);
        ps_exchange(nodes[0], &mut a, nodes[1], &mut b, &p, &mut rng);
        // Each side now knows the other.
        assert!(a.ids().any(|i| i == nodes[1]), "a must learn b");
        assert!(b.ids().any(|i| i == nodes[0]), "b must learn a");
        // And some cross-pollination of third parties happened.
        let a_from_b = a.ids().filter(|i| nodes[7..12].contains(i)).count();
        let b_from_a = b.ids().filter(|i| nodes[2..7].contains(i)).count();
        assert!(a_from_b + b_from_a > 0, "no descriptors crossed");
    }

    #[test]
    fn repeated_exchanges_converge_to_connected_overlay() {
        // A line bootstrap: node i only knows node i-1. After enough
        // exchanges every view is full and references live nodes.
        let n = 64;
        let (slab, nodes) = ids(n);
        let p = PeerSamplingPolicy::balanced(8);
        let mut views: Vec<PsView> = (0..n)
            .map(|i| {
                let mut v = PsView::new();
                v.insert(nodes[(i + n - 1) % n], 0);
                v
            })
            .collect();
        let mut rng = seeded_rng(7);
        for _ in 0..50 {
            for i in 0..n {
                views[i].increase_ages();
                let Some(peer) = views[i].select_peer(p.selection, &mut rng) else {
                    continue;
                };
                let j = peer.slot();
                if i == j {
                    continue;
                }
                let (x, y) = if i < j {
                    let (l, r) = views.split_at_mut(j);
                    (&mut l[i], &mut r[0])
                } else {
                    let (l, r) = views.split_at_mut(i);
                    (&mut r[0], &mut l[j])
                };
                ps_exchange(nodes[i], x, nodes[j], y, &p, &mut rng);
            }
        }
        for (i, v) in views.iter_mut().enumerate() {
            assert_eq!(v.len(), p.view_size, "view {i} not full");
            v.prune_dead(&slab);
            assert_eq!(v.len(), p.view_size, "view {i} held dead entries");
        }
        // Descriptor ages stay low: views keep refreshing.
        let max_age = views
            .iter()
            .flat_map(|v| v.entries().iter().map(|e| e.age))
            .max()
            .unwrap();
        assert!(max_age < 30, "stale descriptors survived: {max_age}");
    }
}
