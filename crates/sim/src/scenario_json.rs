//! JSON round-trip for [`FaultScenario`] via the offline `serde` stub's
//! document model ([`serde::json`]).
//!
//! The explorer's regression corpus (`adam2-explore`) persists found
//! scenarios as plain JSON so a human can read, edit, and commit them.
//! Encoding is deterministic (fixed key order, shortest-round-trip
//! floats, `u64` seeds as integer literals) so a decode→encode cycle is
//! byte-identical; decoding is strict — unknown fields, missing fields,
//! wrong types, and semantically invalid scenarios (via
//! [`FaultScenario::validate`]) are all rejected with an error rather
//! than a panic, which the fuzz tests below exercise.
//!
//! Wire shape:
//!
//! ```json
//! {"seed":42,"events":[
//!   {"kind":"burst_loss","from_round":5,"to_round":15,"loss_rate":0.2},
//!   {"kind":"partition","from_round":10,"to_round":20,"shape":"islands","groups":4},
//!   {"kind":"crash_recover","at_round":8,"recover_round":16,"fraction":0.1},
//!   {"kind":"delay","from_round":0,"to_round":9,"extra_ticks":40},
//!   {"kind":"duplicate","from_round":0,"to_round":9,"rate":0.3},
//!   {"kind":"adversary","from_round":0,"to_round":38,"fraction":0.1,
//!    "model":{"kind":"value_poisoning","magnitude":5.0}}
//! ]}
//! ```

use serde::json::{self, Value};

use crate::engine::SimConfigError;
use crate::faults::{AdversaryModel, DriftModel, FaultEvent, FaultScenario, PartitionKind};

fn err(message: impl Into<String>) -> SimConfigError {
    SimConfigError::new(message)
}

/// Extracts a required `u64` field.
fn field_u64(obj: &Value, key: &str) -> Result<u64, SimConfigError> {
    obj.get(key).and_then(Value::as_u64).ok_or_else(|| {
        err(format!(
            "scenario json: missing or non-integer field `{key}`"
        ))
    })
}

/// Extracts a required finite-or-not numeric field (validate() does the
/// range checking; decode only cares about the type).
fn field_f64(obj: &Value, key: &str) -> Result<f64, SimConfigError> {
    obj.get(key).and_then(Value::as_f64).ok_or_else(|| {
        err(format!(
            "scenario json: missing or non-number field `{key}`"
        ))
    })
}

fn field_str<'a>(obj: &'a Value, key: &str) -> Result<&'a str, SimConfigError> {
    obj.get(key).and_then(Value::as_str).ok_or_else(|| {
        err(format!(
            "scenario json: missing or non-string field `{key}`"
        ))
    })
}

/// Rejects any key outside `allowed` — corpus files are committed
/// artifacts, and a typo'd field silently ignored would make a scenario
/// replay something other than what the file says.
fn check_keys(obj: &Value, allowed: &[&str]) -> Result<(), SimConfigError> {
    let pairs = obj
        .as_object()
        .ok_or_else(|| err("scenario json: expected an object"))?;
    for (key, _) in pairs {
        if !allowed.contains(&key.as_str()) {
            return Err(err(format!("scenario json: unknown field `{key}`")));
        }
    }
    Ok(())
}

fn model_to_value(model: &AdversaryModel) -> Value {
    let (kind, param, value) = match *model {
        AdversaryModel::ValuePoisoning { magnitude } => ("value_poisoning", "magnitude", magnitude),
        AdversaryModel::WeightInflation { factor } => ("weight_inflation", "factor", factor),
        AdversaryModel::TargetedPartner { magnitude } => {
            ("targeted_partner", "magnitude", magnitude)
        }
        AdversaryModel::Equivocation { magnitude } => ("equivocation", "magnitude", magnitude),
    };
    Value::Object(vec![
        ("kind".to_string(), Value::String(kind.to_string())),
        (param.to_string(), Value::Number(value)),
    ])
}

fn drift_to_value(model: &DriftModel) -> Value {
    let (kind, param, value) = match *model {
        DriftModel::LinearRamp { per_round } => ("linear_ramp", "per_round", per_round),
        DriftModel::Step { shift } => ("step", "shift", shift),
        DriftModel::Jitter { sigma } => ("jitter", "sigma", sigma),
        DriftModel::Replacement { rate } => ("replacement", "rate", rate),
    };
    Value::Object(vec![
        ("kind".to_string(), Value::String(kind.to_string())),
        (param.to_string(), Value::Number(value)),
    ])
}

fn drift_from_value(value: &Value) -> Result<DriftModel, SimConfigError> {
    let kind = field_str(value, "kind")?;
    let model = match kind {
        "linear_ramp" => {
            check_keys(value, &["kind", "per_round"])?;
            DriftModel::LinearRamp {
                per_round: field_f64(value, "per_round")?,
            }
        }
        "step" => {
            check_keys(value, &["kind", "shift"])?;
            DriftModel::Step {
                shift: field_f64(value, "shift")?,
            }
        }
        "jitter" => {
            check_keys(value, &["kind", "sigma"])?;
            DriftModel::Jitter {
                sigma: field_f64(value, "sigma")?,
            }
        }
        "replacement" => {
            check_keys(value, &["kind", "rate"])?;
            DriftModel::Replacement {
                rate: field_f64(value, "rate")?,
            }
        }
        other => return Err(err(format!("scenario json: unknown drift model `{other}`"))),
    };
    Ok(model)
}

fn model_from_value(value: &Value) -> Result<AdversaryModel, SimConfigError> {
    let kind = field_str(value, "kind")?;
    let model = match kind {
        "value_poisoning" => {
            check_keys(value, &["kind", "magnitude"])?;
            AdversaryModel::ValuePoisoning {
                magnitude: field_f64(value, "magnitude")?,
            }
        }
        "weight_inflation" => {
            check_keys(value, &["kind", "factor"])?;
            AdversaryModel::WeightInflation {
                factor: field_f64(value, "factor")?,
            }
        }
        "targeted_partner" => {
            check_keys(value, &["kind", "magnitude"])?;
            AdversaryModel::TargetedPartner {
                magnitude: field_f64(value, "magnitude")?,
            }
        }
        "equivocation" => {
            check_keys(value, &["kind", "magnitude"])?;
            AdversaryModel::Equivocation {
                magnitude: field_f64(value, "magnitude")?,
            }
        }
        other => {
            return Err(err(format!(
                "scenario json: unknown adversary model `{other}`"
            )))
        }
    };
    Ok(model)
}

fn event_to_value(event: &FaultEvent) -> Value {
    let kind = |s: &str| ("kind".to_string(), Value::String(s.to_string()));
    match *event {
        FaultEvent::BurstLoss {
            from_round,
            to_round,
            loss_rate,
        } => Value::Object(vec![
            kind("burst_loss"),
            ("from_round".to_string(), Value::Uint(from_round)),
            ("to_round".to_string(), Value::Uint(to_round)),
            ("loss_rate".to_string(), Value::Number(loss_rate)),
        ]),
        FaultEvent::Partition {
            from_round,
            to_round,
            kind: cut,
        } => {
            let mut pairs = vec![
                kind("partition"),
                ("from_round".to_string(), Value::Uint(from_round)),
                ("to_round".to_string(), Value::Uint(to_round)),
            ];
            match cut {
                PartitionKind::Bisect => {
                    pairs.push(("shape".to_string(), Value::String("bisect".to_string())));
                }
                PartitionKind::Islands(k) => {
                    pairs.push(("shape".to_string(), Value::String("islands".to_string())));
                    pairs.push(("groups".to_string(), Value::Uint(u64::from(k))));
                }
            }
            Value::Object(pairs)
        }
        FaultEvent::CrashRecover {
            at_round,
            recover_round,
            fraction,
        } => Value::Object(vec![
            kind("crash_recover"),
            ("at_round".to_string(), Value::Uint(at_round)),
            ("recover_round".to_string(), Value::Uint(recover_round)),
            ("fraction".to_string(), Value::Number(fraction)),
        ]),
        FaultEvent::Delay {
            from_round,
            to_round,
            extra_ticks,
        } => Value::Object(vec![
            kind("delay"),
            ("from_round".to_string(), Value::Uint(from_round)),
            ("to_round".to_string(), Value::Uint(to_round)),
            ("extra_ticks".to_string(), Value::Uint(extra_ticks)),
        ]),
        FaultEvent::Duplicate {
            from_round,
            to_round,
            rate,
        } => Value::Object(vec![
            kind("duplicate"),
            ("from_round".to_string(), Value::Uint(from_round)),
            ("to_round".to_string(), Value::Uint(to_round)),
            ("rate".to_string(), Value::Number(rate)),
        ]),
        FaultEvent::Adversary {
            from_round,
            to_round,
            fraction,
            ref model,
        } => Value::Object(vec![
            kind("adversary"),
            ("from_round".to_string(), Value::Uint(from_round)),
            ("to_round".to_string(), Value::Uint(to_round)),
            ("fraction".to_string(), Value::Number(fraction)),
            ("model".to_string(), model_to_value(model)),
        ]),
        FaultEvent::Drift {
            from_round,
            to_round,
            ref model,
        } => Value::Object(vec![
            kind("drift"),
            ("from_round".to_string(), Value::Uint(from_round)),
            ("to_round".to_string(), Value::Uint(to_round)),
            ("model".to_string(), drift_to_value(model)),
        ]),
    }
}

fn event_from_value(value: &Value) -> Result<FaultEvent, SimConfigError> {
    let kind = field_str(value, "kind")?;
    let event = match kind {
        "burst_loss" => {
            check_keys(value, &["kind", "from_round", "to_round", "loss_rate"])?;
            FaultEvent::BurstLoss {
                from_round: field_u64(value, "from_round")?,
                to_round: field_u64(value, "to_round")?,
                loss_rate: field_f64(value, "loss_rate")?,
            }
        }
        "partition" => {
            check_keys(
                value,
                &["kind", "from_round", "to_round", "shape", "groups"],
            )?;
            let cut = match field_str(value, "shape")? {
                "bisect" => {
                    if value.get("groups").is_some() {
                        return Err(err("scenario json: `groups` is only valid for islands"));
                    }
                    PartitionKind::Bisect
                }
                "islands" => {
                    let groups = field_u64(value, "groups")?;
                    let groups = u32::try_from(groups)
                        .map_err(|_| err("scenario json: `groups` out of range"))?;
                    PartitionKind::Islands(groups)
                }
                other => {
                    return Err(err(format!(
                        "scenario json: unknown partition shape `{other}`"
                    )))
                }
            };
            FaultEvent::Partition {
                from_round: field_u64(value, "from_round")?,
                to_round: field_u64(value, "to_round")?,
                kind: cut,
            }
        }
        "crash_recover" => {
            check_keys(value, &["kind", "at_round", "recover_round", "fraction"])?;
            FaultEvent::CrashRecover {
                at_round: field_u64(value, "at_round")?,
                recover_round: field_u64(value, "recover_round")?,
                fraction: field_f64(value, "fraction")?,
            }
        }
        "delay" => {
            check_keys(value, &["kind", "from_round", "to_round", "extra_ticks"])?;
            FaultEvent::Delay {
                from_round: field_u64(value, "from_round")?,
                to_round: field_u64(value, "to_round")?,
                extra_ticks: field_u64(value, "extra_ticks")?,
            }
        }
        "duplicate" => {
            check_keys(value, &["kind", "from_round", "to_round", "rate"])?;
            FaultEvent::Duplicate {
                from_round: field_u64(value, "from_round")?,
                to_round: field_u64(value, "to_round")?,
                rate: field_f64(value, "rate")?,
            }
        }
        "adversary" => {
            check_keys(
                value,
                &["kind", "from_round", "to_round", "fraction", "model"],
            )?;
            let model = value
                .get("model")
                .ok_or_else(|| err("scenario json: missing field `model`"))?;
            FaultEvent::Adversary {
                from_round: field_u64(value, "from_round")?,
                to_round: field_u64(value, "to_round")?,
                fraction: field_f64(value, "fraction")?,
                model: model_from_value(model)?,
            }
        }
        "drift" => {
            check_keys(value, &["kind", "from_round", "to_round", "model"])?;
            let model = value
                .get("model")
                .ok_or_else(|| err("scenario json: missing field `model`"))?;
            FaultEvent::Drift {
                from_round: field_u64(value, "from_round")?,
                to_round: field_u64(value, "to_round")?,
                model: drift_from_value(model)?,
            }
        }
        other => return Err(err(format!("scenario json: unknown event kind `{other}`"))),
    };
    Ok(event)
}

impl FaultScenario {
    /// Encodes the scenario as a [`Value`] tree (see the module docs for
    /// the wire shape).
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("seed".to_string(), Value::Uint(self.seed)),
            (
                "events".to_string(),
                Value::Array(self.events.iter().map(event_to_value).collect()),
            ),
        ])
    }

    /// Encodes the scenario as compact JSON text.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Decodes a scenario from a [`Value`] tree. Strict: unknown fields
    /// are rejected, and the decoded scenario must pass
    /// [`FaultScenario::validate`].
    pub fn from_json_value(value: &Value) -> Result<Self, SimConfigError> {
        check_keys(value, &["seed", "events"])?;
        let seed = field_u64(value, "seed")?;
        let events = value
            .get("events")
            .and_then(Value::as_array)
            .ok_or_else(|| err("scenario json: missing or non-array field `events`"))?;
        let events = events
            .iter()
            .map(event_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let scenario = FaultScenario { seed, events };
        scenario.validate()?;
        Ok(scenario)
    }

    /// Decodes a scenario from JSON text produced by
    /// [`FaultScenario::to_json`] (or written by hand). Malformed syntax,
    /// unknown fields, and invalid scenarios all return `Err`; this never
    /// panics.
    pub fn from_json(text: &str) -> Result<Self, SimConfigError> {
        let value = json::parse(text).map_err(|e| err(format!("scenario json: {e}")))?;
        Self::from_json_value(&value)
    }
}

// The derive-ready marker impls: with the real `serde` these would be
// `#[derive(Serialize, Deserialize)]`; the hand-rolled codec above is the
// actual implementation either way.
impl serde::Serialize for FaultScenario {}
impl serde::Deserialize for FaultScenario {}
impl serde::Serialize for AdversaryModel {}
impl serde::Deserialize for AdversaryModel {}
impl serde::Serialize for DriftModel {}
impl serde::Deserialize for DriftModel {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use rand::RngExt as _;

    /// One scenario touching every event kind and every adversary model
    /// field shape.
    fn kitchen_sink() -> FaultScenario {
        FaultScenario::new(0xDEAD_BEEF_CAFE_F00D)
            .with_burst_loss(5, 15, 0.2)
            .with_partition(10, 20, PartitionKind::Bisect)
            .with_partition(12, 18, PartitionKind::Islands(4))
            .with_crash_recover(8, 16, 0.1)
            .with_delay(0, 9, 40)
            .with_duplication(3, 7, 0.25)
            .with_adversary(
                0,
                38,
                0.1,
                AdversaryModel::ValuePoisoning { magnitude: 5.0 },
            )
            .with_drift(4, 24, DriftModel::LinearRamp { per_round: 1.5 })
    }

    #[test]
    fn round_trip_preserves_scenario() {
        let scenario = kitchen_sink();
        let text = scenario.to_json();
        let back = FaultScenario::from_json(&text).expect("round trip decodes");
        assert_eq!(back, scenario);
        // Encoding is deterministic: decode → encode is byte-identical.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn round_trip_every_adversary_model() {
        for model in [
            AdversaryModel::ValuePoisoning { magnitude: 5.0 },
            AdversaryModel::WeightInflation { factor: 8.0 },
            AdversaryModel::TargetedPartner { magnitude: 3.5 },
            AdversaryModel::Equivocation { magnitude: 2.0 },
        ] {
            let scenario = FaultScenario::new(7).with_adversary(1, 9, 0.05, model);
            let back = FaultScenario::from_json(&scenario.to_json()).unwrap();
            assert_eq!(back, scenario);
        }
    }

    #[test]
    fn round_trip_every_drift_model() {
        for model in [
            DriftModel::LinearRamp { per_round: -0.25 },
            DriftModel::Step { shift: 120.0 },
            DriftModel::Jitter { sigma: 3.0 },
            DriftModel::Replacement { rate: 0.05 },
        ] {
            let scenario = FaultScenario::new(13).with_drift(2, 28, model);
            let back = FaultScenario::from_json(&scenario.to_json()).unwrap();
            assert_eq!(back, scenario);
        }
    }

    #[test]
    fn invalid_drift_rejected_on_decode() {
        for text in [
            // rate out of range
            r#"{"seed":1,"events":[{"kind":"drift","from_round":0,"to_round":9,"model":{"kind":"replacement","rate":1.5}}]}"#,
            // negative sigma
            r#"{"seed":1,"events":[{"kind":"drift","from_round":0,"to_round":9,"model":{"kind":"jitter","sigma":-1.0}}]}"#,
            // unknown drift model
            r#"{"seed":1,"events":[{"kind":"drift","from_round":0,"to_round":9,"model":{"kind":"warp","rate":0.1}}]}"#,
            // stray field
            r#"{"seed":1,"events":[{"kind":"drift","from_round":0,"to_round":9,"model":{"kind":"step","shift":1.0,"x":2}}]}"#,
        ] {
            assert!(FaultScenario::from_json(text).is_err(), "accepted {text}");
        }
    }

    #[test]
    fn full_range_seed_survives() {
        let scenario = FaultScenario::new(u64::MAX).with_burst_loss(0, 1, 0.5);
        let back = FaultScenario::from_json(&scenario.to_json()).unwrap();
        assert_eq!(back.seed, u64::MAX);
    }

    #[test]
    fn bisect_and_islands_stay_distinct() {
        let bisect = FaultScenario::new(1).with_partition(0, 5, PartitionKind::Bisect);
        let islands = FaultScenario::new(1).with_partition(0, 5, PartitionKind::Islands(2));
        assert_ne!(bisect.to_json(), islands.to_json());
        assert_eq!(FaultScenario::from_json(&bisect.to_json()).unwrap(), bisect);
        assert_eq!(
            FaultScenario::from_json(&islands.to_json()).unwrap(),
            islands
        );
    }

    #[test]
    fn unknown_fields_rejected() {
        for text in [
            r#"{"seed":1,"events":[],"extra":0}"#,
            r#"{"seed":1,"events":[{"kind":"burst_loss","from_round":0,"to_round":1,"loss_rate":0.1,"x":0}]}"#,
            r#"{"seed":1,"events":[{"kind":"partition","from_round":0,"to_round":1,"shape":"bisect","groups":2}]}"#,
            r#"{"seed":1,"events":[{"kind":"adversary","from_round":0,"to_round":1,"fraction":0.1,"model":{"kind":"value_poisoning","magnitude":2.0,"y":1}}]}"#,
        ] {
            assert!(FaultScenario::from_json(text).is_err(), "accepted {text}");
        }
    }

    #[test]
    fn invalid_scenarios_rejected_on_decode() {
        for text in [
            // loss_rate out of range
            r#"{"seed":1,"events":[{"kind":"burst_loss","from_round":0,"to_round":1,"loss_rate":1.5}]}"#,
            // inverted window
            r#"{"seed":1,"events":[{"kind":"burst_loss","from_round":5,"to_round":2,"loss_rate":0.1}]}"#,
            // recover before crash
            r#"{"seed":1,"events":[{"kind":"crash_recover","at_round":5,"recover_round":5,"fraction":0.1}]}"#,
            // single-island partition
            r#"{"seed":1,"events":[{"kind":"partition","from_round":0,"to_round":1,"shape":"islands","groups":1}]}"#,
        ] {
            assert!(FaultScenario::from_json(text).is_err(), "accepted {text}");
        }
    }

    #[test]
    fn type_confusion_rejected() {
        for text in [
            r#"{"seed":"one","events":[]}"#,
            r#"{"seed":1,"events":{}}"#,
            r#"{"seed":1.5,"events":[]}"#,
            r#"{"seed":1,"events":[null]}"#,
            r#"{"seed":1,"events":[{"kind":7}]}"#,
            r#"[]"#,
            r#"null"#,
        ] {
            assert!(FaultScenario::from_json(text).is_err(), "accepted {text}");
        }
    }

    /// Seeded byte-mutation fuzz: corrupting a valid corpus document must
    /// produce `Err` or a valid scenario — never a panic, and never an
    /// invalid scenario slipping through `validate()`.
    #[test]
    fn fuzz_mutated_documents_never_panic() {
        let base = kitchen_sink().to_json().into_bytes();
        let mut rng = seeded_rng(0x5EED_F00D);
        for _ in 0..2000 {
            let mut bytes = base.clone();
            for _ in 0..rng.random_range(1..4usize) {
                match rng.random_range(0..3u32) {
                    0 if !bytes.is_empty() => {
                        let i = rng.random_range(0..bytes.len());
                        bytes[i] = rng.random_range(0..=255u8);
                    }
                    1 if !bytes.is_empty() => {
                        let i = rng.random_range(0..bytes.len());
                        bytes.remove(i);
                    }
                    _ => {
                        let i = rng.random_range(0..=bytes.len());
                        bytes.insert(i, rng.random_range(0..=255u8));
                    }
                }
            }
            let Ok(text) = String::from_utf8(bytes) else {
                continue;
            };
            if let Ok(decoded) = FaultScenario::from_json(&text) {
                decoded.validate().expect("decoded scenarios are valid");
            }
        }
    }

    /// Truncations of a valid document never panic either.
    #[test]
    fn fuzz_truncations_never_panic() {
        let text = kitchen_sink().to_json();
        for len in 0..text.len() {
            if text.is_char_boundary(len) {
                let _ = FaultScenario::from_json(&text[..len]);
            }
        }
    }
}
