//! Generational node storage, laid out struct-of-arrays.
//!
//! Under churn the simulator constantly removes and inserts nodes. A plain
//! `Vec` would either leak slots or let a stale [`NodeId`] silently address
//! a *different* node after slot reuse. [`NodeSlab`] therefore pairs each
//! slot with a generation counter; a `NodeId` is only valid while its
//! generation matches.
//!
//! The slab stores slot *metadata* (generation, live-list back pointer,
//! occupancy) and node *payload* in separate parallel columns indexed by
//! slot. Membership operations — `contains`, id iteration, random peer
//! selection, live-list bookkeeping — walk only the 12-byte metadata
//! column, so at 10⁶ nodes they stay in cache instead of striding over
//! multi-kilobyte protocol states. The generational-id API is unchanged,
//! so callers are oblivious to the layout.

use rand::rngs::StdRng;
use rand::RngExt as _;

/// Identifier of a node in a [`NodeSlab`].
///
/// Ids are cheap `Copy` handles. An id becomes *stale* once its node is
/// removed; stale ids are safely rejected by all slab accessors (overlay
/// views hold stale ids routinely under churn).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    slot: u32,
    generation: u32,
}

impl NodeId {
    /// The slot index, useful for dense per-node side tables (traffic
    /// counters, etc.). Slots are reused across generations.
    pub fn slot(&self) -> usize {
        self.slot as usize
    }

    /// The generation of this id.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Builds an id from raw parts, for unit tests that need ids without a
    /// slab.
    #[cfg(test)]
    pub(crate) fn for_tests(slot: u32, generation: u32) -> Self {
        Self { slot, generation }
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}g{}", self.slot, self.generation)
    }
}

/// Per-slot metadata column entry: everything membership queries need,
/// without touching the payload column.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotMeta {
    pub(crate) generation: u32,
    /// Index of this slot in `live`, valid only while occupied.
    live_pos: u32,
    /// Mirrors `payload[slot].is_some()`.
    pub(crate) occupied: bool,
}

/// Generational slab of live nodes with O(1) insert, remove, lookup and
/// uniform random selection.
///
/// # Examples
///
/// ```
/// let mut slab = adam2_sim::NodeSlab::new();
/// let a = slab.insert("alpha");
/// let b = slab.insert("beta");
/// assert_eq!(slab.len(), 2);
/// assert_eq!(slab.remove(a), Some("alpha"));
/// assert!(slab.get(a).is_none());
/// assert_eq!(slab.get(b), Some(&"beta"));
/// ```
#[derive(Debug)]
pub struct NodeSlab<N> {
    meta: Vec<SlotMeta>,
    payload: Vec<Option<N>>,
    free: Vec<u32>,
    live: Vec<u32>,
}

impl<N> Default for NodeSlab<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N> NodeSlab<N> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self {
            meta: Vec::new(),
            payload: Vec::new(),
            free: Vec::new(),
            live: Vec::new(),
        }
    }

    /// Creates an empty slab with capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            meta: Vec::with_capacity(n),
            payload: Vec::with_capacity(n),
            free: Vec::new(),
            live: Vec::with_capacity(n),
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no nodes are live.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Total number of slots ever allocated (live + free). Useful for
    /// sizing dense side tables indexed by [`NodeId::slot`].
    pub fn slot_count(&self) -> usize {
        self.meta.len()
    }

    /// Inserts a node and returns its id.
    pub fn insert(&mut self, node: N) -> NodeId {
        let slot = match self.free.pop() {
            Some(slot) => {
                let m = &mut self.meta[slot as usize];
                m.generation = m.generation.wrapping_add(1);
                m.live_pos = self.live.len() as u32;
                m.occupied = true;
                self.payload[slot as usize] = Some(node);
                slot
            }
            None => {
                let slot = self.meta.len() as u32;
                self.meta.push(SlotMeta {
                    generation: 0,
                    live_pos: self.live.len() as u32,
                    occupied: true,
                });
                self.payload.push(Some(node));
                slot
            }
        };
        self.live.push(slot);
        NodeId {
            slot,
            generation: self.meta[slot as usize].generation,
        }
    }

    /// Removes a node, returning its state, or `None` if `id` is stale.
    pub fn remove(&mut self, id: NodeId) -> Option<N> {
        if !self.contains(id) {
            return None;
        }
        let slot = id.slot as usize;
        let node = self.payload[slot].take();
        self.meta[slot].occupied = false;
        let pos = self.meta[slot].live_pos as usize;
        // Swap-remove from the live list, fixing the moved entry's back
        // pointer.
        let last = *self.live.last().expect("live list non-empty");
        self.live.swap_remove(pos);
        if pos < self.live.len() {
            self.meta[last as usize].live_pos = pos as u32;
        }
        self.free.push(id.slot);
        node
    }

    /// Whether `id` addresses a live node.
    pub fn contains(&self, id: NodeId) -> bool {
        self.meta
            .get(id.slot as usize)
            .map(|m| m.generation == id.generation && m.occupied)
            .unwrap_or(false)
    }

    /// Shared access to a node.
    pub fn get(&self, id: NodeId) -> Option<&N> {
        let m = self.meta.get(id.slot as usize)?;
        if m.generation != id.generation {
            return None;
        }
        self.payload[id.slot as usize].as_ref()
    }

    /// Exclusive access to a node.
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut N> {
        let m = self.meta.get(id.slot as usize)?;
        if m.generation != id.generation {
            return None;
        }
        self.payload[id.slot as usize].as_mut()
    }

    /// Exclusive access to two *distinct* nodes at once, as needed for an
    /// atomic push–pull gossip exchange.
    ///
    /// Returns `None` if the ids are equal, either is stale, or either is
    /// dead.
    pub fn pair_mut(&mut self, a: NodeId, b: NodeId) -> Option<(&mut N, &mut N)> {
        if a.slot == b.slot || !self.contains(a) || !self.contains(b) {
            return None;
        }
        let (lo, hi) = if a.slot < b.slot { (a, b) } else { (b, a) };
        let (head, tail) = self.payload.split_at_mut(hi.slot as usize);
        let lo_ref = head[lo.slot as usize].as_mut()?;
        let hi_ref = tail[0].as_mut()?;
        if a.slot < b.slot {
            Some((lo_ref, hi_ref))
        } else {
            Some((hi_ref, lo_ref))
        }
    }

    /// The id of the live node in `slot`, if any.
    pub fn id_at_slot(&self, slot: usize) -> Option<NodeId> {
        let m = self.meta.get(slot)?;
        if !m.occupied {
            return None;
        }
        Some(NodeId {
            slot: slot as u32,
            generation: m.generation,
        })
    }

    /// A uniformly random live node id, or `None` if the slab is empty.
    pub fn random_id(&self, rng: &mut StdRng) -> Option<NodeId> {
        if self.live.is_empty() {
            return None;
        }
        let slot = self.live[rng.random_range(0..self.live.len())];
        self.id_at_slot(slot as usize)
    }

    /// A uniformly random live node id different from `not`, or `None` if
    /// no such node exists.
    pub fn random_other(&self, not: NodeId, rng: &mut StdRng) -> Option<NodeId> {
        if self.live.len() < 2 {
            let only = self.ids().next()?;
            return (only != not).then_some(only);
        }
        // Rejection sampling terminates quickly because len >= 2.
        loop {
            let candidate = self.random_id(rng)?;
            if candidate != not {
                return Some(candidate);
            }
        }
    }

    /// The live slots in live-list order (the order [`random_id`] samples
    /// from). Stable between membership changes.
    ///
    /// [`random_id`]: NodeSlab::random_id
    pub fn live_slots(&self) -> &[u32] {
        &self.live
    }

    /// Iterates over live `(id, &node)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.meta
            .iter()
            .zip(&self.payload)
            .enumerate()
            .filter_map(|(slot, (m, n))| {
                n.as_ref().map(|n| {
                    (
                        NodeId {
                            slot: slot as u32,
                            generation: m.generation,
                        },
                        n,
                    )
                })
            })
    }

    /// Iterates over live `(id, &mut node)` pairs in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (NodeId, &mut N)> {
        self.meta
            .iter()
            .zip(self.payload.iter_mut())
            .enumerate()
            .filter_map(|(slot, (m, n))| {
                let generation = m.generation;
                n.as_mut().map(move |n| {
                    (
                        NodeId {
                            slot: slot as u32,
                            generation,
                        },
                        n,
                    )
                })
            })
    }

    /// Iterates over live node ids in slot order (a pure metadata-column
    /// scan — the payload is never touched).
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.meta.iter().enumerate().filter_map(|(slot, m)| {
            m.occupied.then_some(NodeId {
                slot: slot as u32,
                generation: m.generation,
            })
        })
    }

    /// Collects the live ids into a vector (handy for iteration orders that
    /// must survive concurrent mutation of the slab). Hot loops should
    /// prefer [`collect_ids`](NodeSlab::collect_ids) into a reused buffer.
    pub fn id_vec(&self) -> Vec<NodeId> {
        self.ids().collect()
    }

    /// Collects the live ids (slot order) into `buf`, reusing its
    /// allocation. The per-round replacement for [`id_vec`]
    /// (`NodeSlab::id_vec`) in hot loops.
    ///
    /// [`id_vec`]: NodeSlab::id_vec
    pub fn collect_ids(&self, buf: &mut Vec<NodeId>) {
        buf.clear();
        buf.extend(self.ids());
    }

    /// Visits every live node with exclusive access, splitting the slot
    /// space into contiguous chunks processed by up to `threads` scoped
    /// threads, and stores each node's result at `out[id.slot()]`.
    ///
    /// The chunks partition the slot array, so each node is owned by exactly
    /// one thread — no synchronisation is needed. Entries of `out` at free
    /// slots are left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.slot_count()`.
    pub(crate) fn par_for_each_live_mut<R, F>(
        &mut self,
        threads: usize,
        out: &mut [Option<R>],
        f: F,
    ) where
        N: Send,
        R: Send,
        F: Fn(NodeId, &mut N) -> R + Sync,
    {
        let meta = &self.meta;
        crate::executor::par_zip(&mut self.payload, out, threads, |base, nodes, outs| {
            for (i, (n, out)) in nodes.iter_mut().zip(outs.iter_mut()).enumerate() {
                if let Some(node) = n.as_mut() {
                    let id = NodeId {
                        slot: (base + i) as u32,
                        generation: meta[base + i].generation,
                    };
                    *out = Some(f(id, node));
                }
            }
        });
    }

    /// An unsynchronised shared handle over the payload column, for the
    /// parallel apply phase where the *caller* guarantees disjointness
    /// (each slot touched by at most one thread at a time).
    pub(crate) fn raw_slots(&mut self) -> RawSlots<'_, N> {
        RawSlots {
            meta: &self.meta,
            ptr: self.payload.as_mut_ptr(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Splits the slab into a read-only membership view and a raw payload
    /// handle, so parallel batch phases can sample peers (metadata column)
    /// while mutating slot-disjoint node states (payload column).
    pub(crate) fn batch_split(&mut self) -> (PeerView<'_>, RawSlots<'_, N>) {
        let view = PeerView {
            meta: &self.meta,
            live: &self.live,
        };
        let raw = RawSlots {
            meta: &self.meta,
            ptr: self.payload.as_mut_ptr(),
            _marker: std::marker::PhantomData,
        };
        (view, raw)
    }
}

/// Read-only membership view over the metadata column: id validation and
/// random peer selection without touching (or borrowing) the payload.
/// Mirrors the corresponding [`NodeSlab`] methods bit-exactly.
#[derive(Clone, Copy)]
pub(crate) struct PeerView<'a> {
    meta: &'a [SlotMeta],
    live: &'a [u32],
}

impl PeerView<'_> {
    pub(crate) fn len(&self) -> usize {
        self.live.len()
    }

    pub(crate) fn contains(&self, id: NodeId) -> bool {
        self.meta
            .get(id.slot as usize)
            .map(|m| m.generation == id.generation && m.occupied)
            .unwrap_or(false)
    }

    pub(crate) fn id_at_slot(&self, slot: usize) -> Option<NodeId> {
        let m = self.meta.get(slot)?;
        if !m.occupied {
            return None;
        }
        Some(NodeId {
            slot: slot as u32,
            generation: m.generation,
        })
    }

    pub(crate) fn random_id(&self, rng: &mut StdRng) -> Option<NodeId> {
        if self.live.is_empty() {
            return None;
        }
        let slot = self.live[rng.random_range(0..self.live.len())];
        self.id_at_slot(slot as usize)
    }

    /// The live node with the lowest slot other than `not` (the
    /// deterministic victim of a targeted-partner attack).
    pub(crate) fn lowest_other(&self, not: NodeId) -> Option<NodeId> {
        let mut best: Option<u32> = None;
        for &slot in self.live {
            if slot == not.slot {
                continue;
            }
            best = Some(best.map_or(slot, |b| b.min(slot)));
        }
        best.and_then(|slot| self.id_at_slot(slot as usize))
    }

    pub(crate) fn random_other(&self, not: NodeId, rng: &mut StdRng) -> Option<NodeId> {
        if self.live.len() < 2 {
            let only = self
                .meta
                .iter()
                .position(|m| m.occupied)
                .and_then(|slot| self.id_at_slot(slot))?;
            return (only != not).then_some(only);
        }
        loop {
            let candidate = self.random_id(rng)?;
            if candidate != not {
                return Some(candidate);
            }
        }
    }
}

/// Shared handle that hands out `&mut N` by raw pointer for slot-disjoint
/// parallel mutation (see [`NodeSlab::raw_slots`]). Generation checks go
/// through the (read-only) metadata column.
pub(crate) struct RawSlots<'a, N> {
    meta: &'a [SlotMeta],
    ptr: *mut Option<N>,
    _marker: std::marker::PhantomData<&'a mut N>,
}

// One RawSlots is shared across the scoped worker threads of a single apply
// batch; the engine guarantees the payload slots they dereference are
// disjoint. The metadata side is a plain shared slice.
unsafe impl<N: Send> Sync for RawSlots<'_, N> {}
unsafe impl<N: Send> Send for RawSlots<'_, N> {}

impl<'a, N> RawSlots<'a, N> {
    /// Exclusive access to the node addressed by `id`, or `None` if the id
    /// is stale or out of range.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that no other reference to the same slot
    /// (through this handle or otherwise) is alive for the duration of the
    /// returned borrow.
    pub(crate) unsafe fn get_mut(&self, id: NodeId) -> Option<&'a mut N> {
        let m = self.meta.get(id.slot())?;
        if m.generation != id.generation {
            return None;
        }
        (*self.ptr.add(id.slot())).as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn insert_get_remove() {
        let mut slab = NodeSlab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&10));
        assert_eq!(slab.get(b), Some(&20));
        assert_eq!(slab.remove(a), Some(10));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.remove(a), None);
    }

    #[test]
    fn stale_ids_are_rejected_after_reuse() {
        let mut slab = NodeSlab::new();
        let a = slab.insert(1);
        slab.remove(a);
        let b = slab.insert(2);
        // Slot is reused but generation differs.
        assert_eq!(a.slot(), b.slot());
        assert_ne!(a, b);
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.get(b), Some(&2));
        assert!(!slab.contains(a));
        assert!(slab.contains(b));
    }

    #[test]
    fn pair_mut_gives_both_nodes_in_argument_order() {
        let mut slab = NodeSlab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        {
            let (x, y) = slab.pair_mut(a, b).unwrap();
            assert_eq!((*x, *y), (1, 2));
            *x = 100;
        }
        let (y, x) = slab.pair_mut(b, a).unwrap();
        assert_eq!((*y, *x), (2, 100));
    }

    #[test]
    fn pair_mut_rejects_same_or_stale() {
        let mut slab = NodeSlab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        assert!(slab.pair_mut(a, a).is_none());
        slab.remove(b);
        assert!(slab.pair_mut(a, b).is_none());
    }

    #[test]
    fn random_other_never_returns_self() {
        let mut slab = NodeSlab::new();
        let ids: Vec<_> = (0..10).map(|i| slab.insert(i)).collect();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let other = slab.random_other(ids[0], &mut rng).unwrap();
            assert_ne!(other, ids[0]);
        }
    }

    #[test]
    fn random_other_in_singleton_slab_is_none() {
        let mut slab = NodeSlab::new();
        let a = slab.insert(1);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(slab.random_other(a, &mut rng), None);
    }

    #[test]
    fn live_list_stays_consistent_under_churn() {
        let mut slab = NodeSlab::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut ids: Vec<NodeId> = (0..100).map(|i| slab.insert(i)).collect();
        for round in 0..1000 {
            if !ids.is_empty() && round % 3 != 0 {
                let pick = rng.random_range(0..ids.len());
                let id = ids.swap_remove(pick);
                assert!(slab.remove(id).is_some());
            } else {
                ids.push(slab.insert(round));
            }
            assert_eq!(slab.len(), ids.len());
        }
        // All remembered ids are still addressable.
        for id in &ids {
            assert!(slab.contains(*id));
        }
        assert_eq!(slab.ids().count(), ids.len());
    }

    #[test]
    fn iter_mut_visits_every_live_node() {
        let mut slab = NodeSlab::new();
        let a = slab.insert(1);
        let _b = slab.insert(2);
        slab.remove(a);
        let visited: Vec<i32> = slab.iter_mut().map(|(_, n)| *n).collect();
        assert_eq!(visited, vec![2]);
    }

    #[test]
    fn par_for_each_live_mut_visits_exactly_the_live_nodes() {
        for threads in [1, 2, 4] {
            let mut slab = NodeSlab::new();
            let ids: Vec<NodeId> = (0..50).map(|i| slab.insert(i)).collect();
            for id in ids.iter().step_by(3) {
                slab.remove(*id);
            }
            let mut out: Vec<Option<i32>> = vec![None; slab.slot_count()];
            slab.par_for_each_live_mut(threads, &mut out, |id, n| {
                *n += 1;
                assert_eq!(id.slot(), *n as usize - 1);
                *n
            });
            for (slot, o) in out.iter().enumerate() {
                match slab.id_at_slot(slot) {
                    Some(_) => assert_eq!(*o, Some(slot as i32 + 1)),
                    None => assert_eq!(*o, None),
                }
            }
        }
    }

    #[test]
    fn raw_slots_checks_generation_and_bounds() {
        let mut slab = NodeSlab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        slab.remove(a);
        let c = slab.insert(3); // reuses a's slot with a newer generation
        let raw = slab.raw_slots();
        unsafe {
            assert_eq!(raw.get_mut(a), None, "stale id rejected");
            assert_eq!(raw.get_mut(b).map(|n| *n), Some(2));
            assert_eq!(raw.get_mut(c).map(|n| *n), Some(3));
        }
    }

    #[test]
    fn peer_view_mirrors_slab_sampling_bit_exactly() {
        let mut slab = NodeSlab::new();
        let ids: Vec<NodeId> = (0..40).map(|i| slab.insert(i)).collect();
        for id in ids.iter().step_by(4) {
            slab.remove(*id);
        }
        // Same seed, same membership history -> identical draws.
        let mut a = StdRng::seed_from_u64(9);
        let reference: Vec<Option<NodeId>> = (0..100)
            .map(|_| slab.random_other(ids[1], &mut a))
            .collect();
        let mut b = StdRng::seed_from_u64(9);
        let (view, _raw) = slab.batch_split();
        let sampled: Vec<Option<NodeId>> = (0..100)
            .map(|_| view.random_other(ids[1], &mut b))
            .collect();
        assert_eq!(reference, sampled);
        assert_eq!(view.len(), 30);
        assert!(view.contains(ids[1]));
        assert!(!view.contains(ids[0]));
    }

    #[test]
    fn collect_ids_reuses_the_buffer() {
        let mut slab = NodeSlab::new();
        let ids: Vec<NodeId> = (0..10).map(|i| slab.insert(i)).collect();
        slab.remove(ids[3]);
        let mut buf = Vec::new();
        slab.collect_ids(&mut buf);
        assert_eq!(buf, slab.id_vec());
        let cap = buf.capacity();
        slab.collect_ids(&mut buf);
        assert_eq!(buf.capacity(), cap, "second collect must not reallocate");
    }

    /// Reference slab: the naive AoS implementation the SoA layout must
    /// match operation-for-operation.
    struct RefSlab<N> {
        slots: Vec<(u32, Option<N>)>,
        free: Vec<u32>,
        live: Vec<u32>,
        live_pos: Vec<u32>,
    }

    impl<N: Clone + PartialEq + std::fmt::Debug> RefSlab<N> {
        fn new() -> Self {
            Self {
                slots: Vec::new(),
                free: Vec::new(),
                live: Vec::new(),
                live_pos: Vec::new(),
            }
        }

        fn insert(&mut self, node: N) -> NodeId {
            let slot = match self.free.pop() {
                Some(slot) => {
                    let s = &mut self.slots[slot as usize];
                    s.0 = s.0.wrapping_add(1);
                    s.1 = Some(node);
                    self.live_pos[slot as usize] = self.live.len() as u32;
                    slot
                }
                None => {
                    let slot = self.slots.len() as u32;
                    self.slots.push((0, Some(node)));
                    self.live_pos.push(self.live.len() as u32);
                    slot
                }
            };
            self.live.push(slot);
            NodeId::for_tests(slot, self.slots[slot as usize].0)
        }

        fn remove(&mut self, id: NodeId) -> Option<N> {
            let s = self.slots.get_mut(id.slot())?;
            if s.0 != id.generation() {
                return None;
            }
            let node = s.1.take()?;
            let pos = self.live_pos[id.slot()] as usize;
            let last = *self.live.last().unwrap();
            self.live.swap_remove(pos);
            if pos < self.live.len() {
                self.live_pos[last as usize] = pos as u32;
            }
            self.free.push(id.slot() as u32);
            Some(node)
        }

        fn get(&self, id: NodeId) -> Option<&N> {
            let s = self.slots.get(id.slot())?;
            if s.0 != id.generation() {
                return None;
            }
            s.1.as_ref()
        }
    }

    #[test]
    fn soa_slab_round_trips_against_reference_under_churn() {
        // Property test: a long randomized insert/remove/lookup schedule
        // must produce identical ids, payloads, live sets, and live-list
        // orders in both layouts (the live order feeds random peer
        // selection, so it must match exactly, not just as a set).
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let mut soa: NodeSlab<u64> = NodeSlab::new();
        let mut reference: RefSlab<u64> = RefSlab::new();
        let mut ids: Vec<NodeId> = Vec::new();
        let mut retired: Vec<NodeId> = Vec::new();
        for step in 0..5000u64 {
            match rng.random_range(0..10) {
                // Weighted towards inserts early, removals once populated.
                0..=4 => {
                    let a = soa.insert(step);
                    let b = reference.insert(step);
                    assert_eq!(a, b, "ids diverged at step {step}");
                    ids.push(a);
                }
                5..=8 if !ids.is_empty() => {
                    let pick = rng.random_range(0..ids.len());
                    let id = ids.swap_remove(pick);
                    assert_eq!(soa.remove(id), reference.remove(id));
                    retired.push(id);
                }
                _ => {
                    // Lookups: live, stale, and out-of-range ids.
                    if let Some(id) = ids.last() {
                        assert_eq!(soa.get(*id), reference.get(*id));
                    }
                    if let Some(id) = retired.last() {
                        assert_eq!(soa.get(*id), reference.get(*id));
                        assert!(!soa.contains(*id));
                    }
                }
            }
            assert_eq!(soa.len(), reference.live.len());
            assert_eq!(soa.live_slots(), &reference.live[..], "live order diverged");
        }
        // Full sweeps agree at the end.
        for id in &ids {
            assert_eq!(soa.get(*id), reference.get(*id));
        }
        for id in &retired {
            if !ids.contains(id) {
                assert!(soa.get(*id).is_none() || soa.contains(*id));
            }
        }
        assert_eq!(soa.ids().count(), ids.len());
    }
}
