//! Generational node storage.
//!
//! Under churn the simulator constantly removes and inserts nodes. A plain
//! `Vec` would either leak slots or let a stale [`NodeId`] silently address
//! a *different* node after slot reuse. [`NodeSlab`] therefore pairs each
//! slot with a generation counter; a `NodeId` is only valid while its
//! generation matches.

use rand::rngs::StdRng;
use rand::RngExt as _;

/// Identifier of a node in a [`NodeSlab`].
///
/// Ids are cheap `Copy` handles. An id becomes *stale* once its node is
/// removed; stale ids are safely rejected by all slab accessors (overlay
/// views hold stale ids routinely under churn).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    slot: u32,
    generation: u32,
}

impl NodeId {
    /// The slot index, useful for dense per-node side tables (traffic
    /// counters, etc.). Slots are reused across generations.
    pub fn slot(&self) -> usize {
        self.slot as usize
    }

    /// The generation of this id.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Builds an id from raw parts, for unit tests that need ids without a
    /// slab.
    #[cfg(test)]
    pub(crate) fn for_tests(slot: u32, generation: u32) -> Self {
        Self { slot, generation }
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}g{}", self.slot, self.generation)
    }
}

#[derive(Debug)]
struct Slot<N> {
    generation: u32,
    /// Index of this slot in `live`, valid only while occupied.
    live_pos: u32,
    node: Option<N>,
}

/// Generational slab of live nodes with O(1) insert, remove, lookup and
/// uniform random selection.
///
/// # Examples
///
/// ```
/// let mut slab = adam2_sim::NodeSlab::new();
/// let a = slab.insert("alpha");
/// let b = slab.insert("beta");
/// assert_eq!(slab.len(), 2);
/// assert_eq!(slab.remove(a), Some("alpha"));
/// assert!(slab.get(a).is_none());
/// assert_eq!(slab.get(b), Some(&"beta"));
/// ```
#[derive(Debug)]
pub struct NodeSlab<N> {
    slots: Vec<Slot<N>>,
    free: Vec<u32>,
    live: Vec<u32>,
}

impl<N> Default for NodeSlab<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N> NodeSlab<N> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            live: Vec::new(),
        }
    }

    /// Creates an empty slab with capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            slots: Vec::with_capacity(n),
            free: Vec::new(),
            live: Vec::with_capacity(n),
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no nodes are live.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Total number of slots ever allocated (live + free). Useful for
    /// sizing dense side tables indexed by [`NodeId::slot`].
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Inserts a node and returns its id.
    pub fn insert(&mut self, node: N) -> NodeId {
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.generation = s.generation.wrapping_add(1);
                s.live_pos = self.live.len() as u32;
                s.node = Some(node);
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Slot {
                    generation: 0,
                    live_pos: self.live.len() as u32,
                    node: Some(node),
                });
                slot
            }
        };
        self.live.push(slot);
        NodeId {
            slot,
            generation: self.slots[slot as usize].generation,
        }
    }

    /// Removes a node, returning its state, or `None` if `id` is stale.
    pub fn remove(&mut self, id: NodeId) -> Option<N> {
        if !self.contains(id) {
            return None;
        }
        let slot = id.slot as usize;
        let node = self.slots[slot].node.take();
        let pos = self.slots[slot].live_pos as usize;
        // Swap-remove from the live list, fixing the moved entry's back
        // pointer.
        let last = *self.live.last().expect("live list non-empty");
        self.live.swap_remove(pos);
        if pos < self.live.len() {
            self.slots[last as usize].live_pos = pos as u32;
        }
        self.free.push(id.slot);
        node
    }

    /// Whether `id` addresses a live node.
    pub fn contains(&self, id: NodeId) -> bool {
        self.slots
            .get(id.slot as usize)
            .map(|s| s.generation == id.generation && s.node.is_some())
            .unwrap_or(false)
    }

    /// Shared access to a node.
    pub fn get(&self, id: NodeId) -> Option<&N> {
        let s = self.slots.get(id.slot as usize)?;
        if s.generation != id.generation {
            return None;
        }
        s.node.as_ref()
    }

    /// Exclusive access to a node.
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut N> {
        let s = self.slots.get_mut(id.slot as usize)?;
        if s.generation != id.generation {
            return None;
        }
        s.node.as_mut()
    }

    /// Exclusive access to two *distinct* nodes at once, as needed for an
    /// atomic push–pull gossip exchange.
    ///
    /// Returns `None` if the ids are equal, either is stale, or either is
    /// dead.
    pub fn pair_mut(&mut self, a: NodeId, b: NodeId) -> Option<(&mut N, &mut N)> {
        if a.slot == b.slot || !self.contains(a) || !self.contains(b) {
            return None;
        }
        let (lo, hi) = if a.slot < b.slot { (a, b) } else { (b, a) };
        let (head, tail) = self.slots.split_at_mut(hi.slot as usize);
        let lo_ref = head[lo.slot as usize].node.as_mut()?;
        let hi_ref = tail[0].node.as_mut()?;
        if a.slot < b.slot {
            Some((lo_ref, hi_ref))
        } else {
            Some((hi_ref, lo_ref))
        }
    }

    /// The id of the live node in `slot`, if any.
    pub fn id_at_slot(&self, slot: usize) -> Option<NodeId> {
        let s = self.slots.get(slot)?;
        s.node.as_ref()?;
        Some(NodeId {
            slot: slot as u32,
            generation: s.generation,
        })
    }

    /// A uniformly random live node id, or `None` if the slab is empty.
    pub fn random_id(&self, rng: &mut StdRng) -> Option<NodeId> {
        if self.live.is_empty() {
            return None;
        }
        let slot = self.live[rng.random_range(0..self.live.len())];
        self.id_at_slot(slot as usize)
    }

    /// A uniformly random live node id different from `not`, or `None` if
    /// no such node exists.
    pub fn random_other(&self, not: NodeId, rng: &mut StdRng) -> Option<NodeId> {
        if self.live.len() < 2 {
            let only = self.ids().next()?;
            return (only != not).then_some(only);
        }
        // Rejection sampling terminates quickly because len >= 2.
        loop {
            let candidate = self.random_id(rng)?;
            if candidate != not {
                return Some(candidate);
            }
        }
    }

    /// Iterates over live `(id, &node)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.slots.iter().enumerate().filter_map(|(slot, s)| {
            s.node.as_ref().map(|n| {
                (
                    NodeId {
                        slot: slot as u32,
                        generation: s.generation,
                    },
                    n,
                )
            })
        })
    }

    /// Iterates over live `(id, &mut node)` pairs in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (NodeId, &mut N)> {
        self.slots.iter_mut().enumerate().filter_map(|(slot, s)| {
            let generation = s.generation;
            s.node.as_mut().map(move |n| {
                (
                    NodeId {
                        slot: slot as u32,
                        generation,
                    },
                    n,
                )
            })
        })
    }

    /// Iterates over live node ids in slot order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.slots.iter().enumerate().filter_map(|(slot, s)| {
            s.node.as_ref().map(|_| NodeId {
                slot: slot as u32,
                generation: s.generation,
            })
        })
    }

    /// Collects the live ids into a vector (handy for iteration orders that
    /// must survive concurrent mutation of the slab).
    pub fn id_vec(&self) -> Vec<NodeId> {
        self.ids().collect()
    }

    /// Visits every live node with exclusive access, splitting the slot
    /// space into contiguous chunks processed by up to `threads` scoped
    /// threads, and stores each node's result at `out[id.slot()]`.
    ///
    /// The chunks partition the slot array, so each node is owned by exactly
    /// one thread — no synchronisation is needed. Entries of `out` at free
    /// slots are left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.slot_count()`.
    pub(crate) fn par_for_each_live_mut<R, F>(
        &mut self,
        threads: usize,
        out: &mut [Option<R>],
        f: F,
    ) where
        N: Send,
        R: Send,
        F: Fn(NodeId, &mut N) -> R + Sync,
    {
        crate::executor::par_zip(&mut self.slots, out, threads, |base, slots, outs| {
            for (i, (s, out)) in slots.iter_mut().zip(outs.iter_mut()).enumerate() {
                let generation = s.generation;
                if let Some(node) = s.node.as_mut() {
                    let id = NodeId {
                        slot: (base + i) as u32,
                        generation,
                    };
                    *out = Some(f(id, node));
                }
            }
        });
    }

    /// An unsynchronised shared handle over the slots, for the parallel
    /// apply phase where the *caller* guarantees disjointness (each slot
    /// touched by at most one thread at a time).
    pub(crate) fn raw_slots(&mut self) -> RawSlots<'_, N> {
        RawSlots {
            ptr: self.slots.as_mut_ptr(),
            len: self.slots.len(),
            _marker: std::marker::PhantomData,
        }
    }
}

/// Shared handle that hands out `&mut N` by raw pointer for slot-disjoint
/// parallel mutation (see [`NodeSlab::raw_slots`]).
pub(crate) struct RawSlots<'a, N> {
    ptr: *mut Slot<N>,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut Slot<N>>,
}

// One RawSlots is shared across the scoped worker threads of a single apply
// batch; the engine guarantees the slots they dereference are disjoint.
unsafe impl<N: Send> Sync for RawSlots<'_, N> {}
unsafe impl<N: Send> Send for RawSlots<'_, N> {}

impl<'a, N> RawSlots<'a, N> {
    /// Exclusive access to the node addressed by `id`, or `None` if the id
    /// is stale or out of range.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that no other reference to the same slot
    /// (through this handle or otherwise) is alive for the duration of the
    /// returned borrow.
    pub(crate) unsafe fn get_mut(&self, id: NodeId) -> Option<&'a mut N> {
        if id.slot() >= self.len {
            return None;
        }
        let s = &mut *self.ptr.add(id.slot());
        if s.generation != id.generation {
            return None;
        }
        s.node.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn insert_get_remove() {
        let mut slab = NodeSlab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&10));
        assert_eq!(slab.get(b), Some(&20));
        assert_eq!(slab.remove(a), Some(10));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.remove(a), None);
    }

    #[test]
    fn stale_ids_are_rejected_after_reuse() {
        let mut slab = NodeSlab::new();
        let a = slab.insert(1);
        slab.remove(a);
        let b = slab.insert(2);
        // Slot is reused but generation differs.
        assert_eq!(a.slot(), b.slot());
        assert_ne!(a, b);
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.get(b), Some(&2));
        assert!(!slab.contains(a));
        assert!(slab.contains(b));
    }

    #[test]
    fn pair_mut_gives_both_nodes_in_argument_order() {
        let mut slab = NodeSlab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        {
            let (x, y) = slab.pair_mut(a, b).unwrap();
            assert_eq!((*x, *y), (1, 2));
            *x = 100;
        }
        let (y, x) = slab.pair_mut(b, a).unwrap();
        assert_eq!((*y, *x), (2, 100));
    }

    #[test]
    fn pair_mut_rejects_same_or_stale() {
        let mut slab = NodeSlab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        assert!(slab.pair_mut(a, a).is_none());
        slab.remove(b);
        assert!(slab.pair_mut(a, b).is_none());
    }

    #[test]
    fn random_other_never_returns_self() {
        let mut slab = NodeSlab::new();
        let ids: Vec<_> = (0..10).map(|i| slab.insert(i)).collect();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let other = slab.random_other(ids[0], &mut rng).unwrap();
            assert_ne!(other, ids[0]);
        }
    }

    #[test]
    fn random_other_in_singleton_slab_is_none() {
        let mut slab = NodeSlab::new();
        let a = slab.insert(1);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(slab.random_other(a, &mut rng), None);
    }

    #[test]
    fn live_list_stays_consistent_under_churn() {
        let mut slab = NodeSlab::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut ids: Vec<NodeId> = (0..100).map(|i| slab.insert(i)).collect();
        for round in 0..1000 {
            if !ids.is_empty() && round % 3 != 0 {
                let pick = rng.random_range(0..ids.len());
                let id = ids.swap_remove(pick);
                assert!(slab.remove(id).is_some());
            } else {
                ids.push(slab.insert(round));
            }
            assert_eq!(slab.len(), ids.len());
        }
        // All remembered ids are still addressable.
        for id in &ids {
            assert!(slab.contains(*id));
        }
        assert_eq!(slab.ids().count(), ids.len());
    }

    #[test]
    fn iter_mut_visits_every_live_node() {
        let mut slab = NodeSlab::new();
        let a = slab.insert(1);
        let _b = slab.insert(2);
        slab.remove(a);
        let visited: Vec<i32> = slab.iter_mut().map(|(_, n)| *n).collect();
        assert_eq!(visited, vec![2]);
    }

    #[test]
    fn par_for_each_live_mut_visits_exactly_the_live_nodes() {
        for threads in [1, 2, 4] {
            let mut slab = NodeSlab::new();
            let ids: Vec<NodeId> = (0..50).map(|i| slab.insert(i)).collect();
            for id in ids.iter().step_by(3) {
                slab.remove(*id);
            }
            let mut out: Vec<Option<i32>> = vec![None; slab.slot_count()];
            slab.par_for_each_live_mut(threads, &mut out, |id, n| {
                *n += 1;
                assert_eq!(id.slot(), *n as usize - 1);
                *n
            });
            for (slot, o) in out.iter().enumerate() {
                match slab.id_at_slot(slot) {
                    Some(_) => assert_eq!(*o, Some(slot as i32 + 1)),
                    None => assert_eq!(*o, None),
                }
            }
        }
    }

    #[test]
    fn raw_slots_checks_generation_and_bounds() {
        let mut slab = NodeSlab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        slab.remove(a);
        let c = slab.insert(3); // reuses a's slot with a newer generation
        let raw = slab.raw_slots();
        unsafe {
            assert_eq!(raw.get_mut(a), None, "stale id rejected");
            assert_eq!(raw.get_mut(b).map(|n| *n), Some(2));
            assert_eq!(raw.get_mut(c).map(|n| *n), Some(3));
        }
    }
}
