//! Membership churn models.
//!
//! Section VII-G of the paper models churn by "randomly removing a fixed
//! fraction of nodes in the overlay with new nodes at each simulation
//! round" — e.g. 0.1 %/round for a 15-minute mean session at 1 s gossip
//! periodicity, swept up to 1 %/round in Fig. 13. [`ChurnModel::Uniform`]
//! reproduces exactly that. [`ChurnModel::Sessions`] additionally offers
//! exponential session lengths (Stutzbach & Rejaie, IMC 2006) as a more
//! realistic extension; both keep the population size constant.

use rand::rngs::StdRng;
use rand::RngExt as _;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::node::NodeId;

/// How membership changes between rounds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ChurnModel {
    /// Static membership (no churn).
    #[default]
    None,
    /// Every round, a fraction `rate` of nodes leaves and is replaced by
    /// fresh nodes (the paper's model). `rate` is clamped to `[0, 1]`.
    Uniform {
        /// Fraction of nodes replaced per round (e.g. `0.001` = 0.1 %).
        rate: f64,
    },
    /// Each node lives for an exponentially distributed number of rounds
    /// with the given mean, then is replaced by a fresh node.
    Sessions {
        /// Mean session length in rounds.
        mean_rounds: f64,
    },
}

impl ChurnModel {
    /// Per-round uniform replacement churn.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn uniform(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        ChurnModel::Uniform { rate }
    }

    /// Exponential session-length churn.
    ///
    /// # Panics
    ///
    /// Panics if `mean_rounds` is not strictly positive.
    pub fn sessions(mean_rounds: f64) -> Self {
        assert!(mean_rounds > 0.0, "mean_rounds must be positive");
        ChurnModel::Sessions { mean_rounds }
    }

    /// Whether this model ever replaces nodes.
    pub fn is_active(&self) -> bool {
        !matches!(self, ChurnModel::None | ChurnModel::Uniform { rate: 0.0 })
    }
}

/// Mutable bookkeeping for a churn model (owned by the engine).
#[derive(Debug, Default)]
pub(crate) struct ChurnState {
    /// Fractional-node carry for `Uniform` so that, e.g., a 0.05 %/round
    /// rate on 1000 nodes still replaces one node every other round.
    carry: f64,
    /// Scheduled departures for `Sessions`: (death_round, node).
    deaths: BinaryHeap<Reverse<(u64, NodeId)>>,
}

impl ChurnState {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Registers a node's session when it joins (only used by `Sessions`).
    pub(crate) fn on_insert(&mut self, model: &ChurnModel, id: NodeId, now: u64, rng: &mut StdRng) {
        if let ChurnModel::Sessions { mean_rounds } = model {
            let u: f64 = 1.0 - rng.random::<f64>();
            let life = (-u.ln() * mean_rounds).ceil().max(1.0) as u64;
            self.deaths.push(Reverse((now + life, id)));
        }
    }

    /// Computes how many uniform-churn replacements to perform this round.
    pub(crate) fn uniform_replacements(&mut self, rate: f64, live: usize) -> usize {
        let want = rate.clamp(0.0, 1.0) * live as f64 + self.carry;
        let k = want.floor();
        self.carry = want - k;
        (k as usize).min(live)
    }

    /// Pops the nodes whose sessions end at or before `now`.
    pub(crate) fn due_deaths(&mut self, now: u64) -> Vec<NodeId> {
        let mut out = Vec::new();
        while let Some(Reverse((when, _))) = self.deaths.peek() {
            if *when > now {
                break;
            }
            let Reverse((_, id)) = self.deaths.pop().expect("peeked entry");
            out.push(id);
        }
        out
    }

    pub(crate) fn clear(&mut self) {
        self.carry = 0.0;
        self.deaths.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSlab;
    use crate::rng::seeded_rng;

    #[test]
    fn uniform_carry_accumulates_fractions() {
        let mut state = ChurnState::new();
        // 0.05% of 1000 = 0.5 nodes/round -> 1 node every 2 rounds.
        let counts: Vec<usize> = (0..10)
            .map(|_| state.uniform_replacements(0.0005, 1000))
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 5);
        assert!(counts.iter().all(|c| *c <= 1));
    }

    #[test]
    fn uniform_zero_rate_replaces_nobody() {
        let mut state = ChurnState::new();
        for _ in 0..100 {
            assert_eq!(state.uniform_replacements(0.0, 1000), 0);
        }
    }

    #[test]
    fn uniform_full_rate_replaces_everyone() {
        let mut state = ChurnState::new();
        assert_eq!(state.uniform_replacements(1.0, 500), 500);
    }

    #[test]
    fn sessions_schedule_and_fire() {
        let mut state = ChurnState::new();
        let mut slab = NodeSlab::new();
        let mut rng = seeded_rng(9);
        let model = ChurnModel::sessions(5.0);
        let ids: Vec<NodeId> = (0..100).map(|i| slab.insert(i)).collect();
        for id in &ids {
            state.on_insert(&model, *id, 0, &mut rng);
        }
        let mut died = 0;
        for round in 1..=200 {
            died += state.due_deaths(round).len();
        }
        assert_eq!(died, 100, "all sessions eventually end");
        assert!(state.due_deaths(10_000).is_empty());
    }

    #[test]
    fn session_lengths_average_near_mean() {
        let mut state = ChurnState::new();
        let mut slab = NodeSlab::new();
        let mut rng = seeded_rng(10);
        let model = ChurnModel::sessions(20.0);
        for i in 0..5000 {
            let id = slab.insert(i);
            state.on_insert(&model, id, 0, &mut rng);
        }
        let mut total_rounds = 0u64;
        let mut n = 0u64;
        for round in 1..=10_000 {
            for _ in state.due_deaths(round) {
                total_rounds += round;
                n += 1;
            }
        }
        assert_eq!(n, 5000);
        let mean = total_rounds as f64 / n as f64;
        assert!((mean - 20.0).abs() < 1.5, "mean session {mean} not near 20");
    }

    #[test]
    #[should_panic(expected = "rate must be in [0, 1]")]
    fn uniform_rejects_bad_rate() {
        ChurnModel::uniform(1.5);
    }

    #[test]
    fn activity_flags() {
        assert!(!ChurnModel::None.is_active());
        assert!(!ChurnModel::uniform(0.0).is_active());
        assert!(ChurnModel::uniform(0.01).is_active());
        assert!(ChurnModel::sessions(10.0).is_active());
    }
}
