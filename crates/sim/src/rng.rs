//! Deterministic RNG helpers.
//!
//! Every stochastic component of the simulator is seeded explicitly so that
//! experiments are reproducible run-to-run. When one seed must drive several
//! independent streams (population generation, engine execution, evaluation
//! sampling, ...), [`derive_seed`] decorrelates them.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic [`StdRng`] from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use rand::RngExt as _;
/// let mut a = adam2_sim::seeded_rng(7);
/// let mut b = adam2_sim::seeded_rng(7);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent stream seed from a base seed and a stream index
/// using the SplitMix64 finalizer.
///
/// Adjacent `(seed, stream)` pairs produce well-decorrelated outputs, so
/// `seeded_rng(derive_seed(s, 0))` and `seeded_rng(derive_seed(s, 1))` can
/// be used as independent generators.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Counter-based per-node RNG stream for the parallel engine.
///
/// Builds a generator unique to `(base, round, slot, phase)` by chaining
/// [`derive_seed`]. Because the stream identity depends only on those four
/// counters — never on thread assignment or execution order — the parallel
/// round path draws identical random sequences regardless of how many
/// worker threads process the nodes, which is what makes
/// `Engine::run_round_parallel` bit-deterministic across thread counts.
pub fn par_stream_rng(base: u64, round: u64, slot: u64, phase: u64) -> StdRng {
    seeded_rng(derive_seed(
        derive_seed(derive_seed(base, round), slot),
        phase,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt as _;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(123);
        let mut b = seeded_rng(123);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn derived_streams_differ() {
        let s0 = derive_seed(42, 0);
        let s1 = derive_seed(42, 1);
        assert_ne!(s0, s1);
        let mut a = seeded_rng(s0);
        let mut b = seeded_rng(s1);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
    }

    #[test]
    fn par_streams_are_deterministic_and_decorrelated() {
        let mut a = par_stream_rng(9, 4, 17, 0);
        let mut b = par_stream_rng(9, 4, 17, 0);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
        // Any counter change yields a different stream.
        for (round, slot, phase) in [(5, 17, 0), (4, 18, 0), (4, 17, 1)] {
            let mut c = par_stream_rng(9, round, slot, phase);
            let mut d = par_stream_rng(9, 4, 17, 0);
            assert_ne!(c.random::<u64>(), d.random::<u64>());
        }
    }
}
