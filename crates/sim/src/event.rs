//! Event-driven simulation: asynchronous messages with latency.
//!
//! The cycle-driven [`Engine`](crate::Engine) models PeerSim's synchronous
//! rounds where a push–pull exchange is *atomic*. Real networks are not
//! synchronous: a request and its response are separate messages with
//! latency, gossip timers drift, and concurrent exchanges interleave. This
//! module provides PeerSim's *other* execution model — an event queue with
//! per-message latencies — so protocols can be validated against the
//! asynchrony the cycle model hides (e.g. the mass-conservation variance
//! of non-atomic push–pull averaging, Jelasity et al. 2005, §4).
//!
//! Time is measured in abstract *ticks* (1 tick ≈ 1 ms at the paper's 1 s
//! gossip period with `gossip_period = 1000`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::RngExt as _;

use crate::engine::SimConfigError;
use crate::faults::FaultScenario;
use crate::node::{NodeId, NodeSlab};
use crate::rng::seeded_rng;
use crate::stats::NetStats;
use crate::telemetry::SimTelemetry;

/// Message latency model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this many ticks.
    Fixed(u64),
    /// Uniform latency in `[min, max]` ticks.
    Uniform {
        /// Minimum latency.
        min: u64,
        /// Maximum latency.
        max: u64,
    },
}

impl LatencyModel {
    fn sample(&self, rng: &mut StdRng) -> u64 {
        match self {
            LatencyModel::Fixed(t) => *t,
            LatencyModel::Uniform { min, max } => {
                if min >= max {
                    *min
                } else {
                    rng.random_range(*min..=*max)
                }
            }
        }
    }
}

/// Configuration of the event-driven engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventConfig {
    /// Initial number of nodes.
    pub n: usize,
    /// Master seed.
    pub seed: u64,
    /// Gossip timer period in ticks (each node fires once per period, with
    /// a random initial phase).
    pub gossip_period: u64,
    /// Message latency model.
    pub latency: LatencyModel,
    /// Probability that any individual message is lost in transit.
    pub loss_rate: f64,
}

impl EventConfig {
    /// A configuration with 1000-tick periods and 10–150-tick uniform
    /// latency (a wide-area network at a 1 s gossip period).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "n must be positive");
        Self {
            n,
            seed,
            gossip_period: 1000,
            latency: LatencyModel::Uniform { min: 10, max: 150 },
            loss_rate: 0.0,
        }
    }

    /// Replaces the gossip period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_gossip_period(mut self, period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        self.gossip_period = period;
        self
    }

    /// Replaces the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the message loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss_rate` is outside `[0, 1]`.
    pub fn with_loss_rate(mut self, loss_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_rate),
            "loss_rate must be in [0, 1]"
        );
        self.loss_rate = loss_rate;
        self
    }
}

/// An asynchronous protocol driven by the [`EventEngine`].
pub trait AsyncProtocol {
    /// Per-node protocol state.
    type Node;
    /// Message type exchanged between nodes. `Clone` lets the engine's
    /// fault injector deliver duplicates.
    type Message: Clone;

    /// Creates the state of a fresh node.
    fn make_node(&mut self, rng: &mut StdRng) -> Self::Node;

    /// The node's gossip timer fired.
    fn on_timer(&mut self, id: NodeId, ctx: &mut EventCtx<'_, Self::Node, Self::Message>);

    /// A message arrived.
    fn on_message(
        &mut self,
        id: NodeId,
        from: NodeId,
        message: Self::Message,
        ctx: &mut EventCtx<'_, Self::Node, Self::Message>,
    );
}

/// Execution context for [`AsyncProtocol`] callbacks.
pub struct EventCtx<'a, N, M> {
    /// Current simulation time in ticks.
    pub now: u64,
    /// All live nodes.
    pub nodes: &'a mut NodeSlab<N>,
    /// Engine RNG.
    pub rng: &'a mut StdRng,
    /// Network accounting (messages are charged when sent, even if later
    /// lost).
    pub net: &'a mut NetStats,
    outbox: &'a mut Vec<(NodeId, NodeId, M, usize)>,
}

impl<N, M> EventCtx<'_, N, M> {
    /// Sends `message` of `bytes` from `from` to `to` (delivered after the
    /// configured latency unless lost).
    pub fn send(&mut self, from: NodeId, to: NodeId, message: M, bytes: usize) {
        self.net.charge_message(from, to, bytes);
        self.outbox.push((from, to, message, bytes));
    }

    /// Draws a uniformly random live node other than `of` (the idealised
    /// peer-sampling service).
    pub fn random_neighbour(&mut self, of: NodeId) -> Option<NodeId> {
        self.nodes.random_other(of, self.rng)
    }
}

#[derive(Debug)]
enum Event<M> {
    Timer(NodeId),
    Deliver {
        from: NodeId,
        to: NodeId,
        message: M,
    },
}

/// The event-driven engine: a time-ordered event queue over the same node
/// slab and accounting as the cycle-driven engine.
pub struct EventEngine<P: AsyncProtocol> {
    protocol: P,
    nodes: NodeSlab<P::Node>,
    config: EventConfig,
    rng: StdRng,
    now: u64,
    queue: BinaryHeap<Reverse<(u64, u64, usize)>>,
    /// Event payloads, indexed by the sequence number carried in the queue
    /// (keeps the heap entries `Ord` without requiring `M: Ord`).
    events: Vec<Option<Event<P::Message>>>,
    /// Recycled `events` slots (the queue never empties while timers are
    /// scheduled, so without reuse the store would grow for ever).
    free_slots: Vec<usize>,
    seq: u64,
    net: NetStats,
    delivered: u64,
    lost: u64,
    duplicated: u64,
    faults: Option<FaultScenario>,
    telemetry: Option<Box<SimTelemetry>>,
}

impl<P: AsyncProtocol> EventEngine<P> {
    /// Builds the engine, creating `config.n` nodes and scheduling their
    /// first gossip timers at random phases within one period.
    pub fn new(config: EventConfig, mut protocol: P) -> Self {
        let mut rng = seeded_rng(config.seed);
        let mut nodes = NodeSlab::with_capacity(config.n);
        for _ in 0..config.n {
            let state = protocol.make_node(&mut rng);
            nodes.insert(state);
        }
        let mut engine = Self {
            protocol,
            nodes,
            config,
            rng,
            now: 0,
            queue: BinaryHeap::new(),
            events: Vec::new(),
            free_slots: Vec::new(),
            seq: 0,
            net: NetStats::new(),
            delivered: 0,
            lost: 0,
            duplicated: 0,
            faults: None,
            telemetry: None,
        };
        for id in engine.nodes.id_vec() {
            let phase = engine.rng.random_range(0..engine.config.gossip_period);
            engine.schedule(phase, Event::Timer(id));
        }
        engine
    }

    fn schedule(&mut self, at: u64, event: Event<P::Message>) {
        let idx = match self.free_slots.pop() {
            Some(idx) => {
                self.events[idx] = Some(event);
                idx
            }
            None => {
                self.events.push(Some(event));
                self.events.len() - 1
            }
        };
        self.seq += 1;
        self.queue.push(Reverse((at, self.seq, idx)));
    }

    /// Runs until simulation time reaches `until` ticks.
    pub fn run_until(&mut self, until: u64) {
        while let Some(Reverse((at, _, idx))) = self.queue.peek().copied() {
            if at > until {
                break;
            }
            self.queue.pop();
            self.now = at;
            let Some(event) = self.events[idx].take() else {
                continue;
            };
            self.free_slots.push(idx);
            match event {
                Event::Timer(id) => {
                    if self.nodes.contains(id) {
                        self.dispatch_timer(id);
                        let next = self.now + self.config.gossip_period;
                        self.schedule(next, Event::Timer(id));
                    }
                }
                Event::Deliver { from, to, message } => {
                    if self.nodes.contains(to) {
                        self.dispatch_message(to, from, message);
                    }
                }
            }
            // Compact the event store opportunistically.
            if self.queue.is_empty() {
                self.events.clear();
                self.free_slots.clear();
            }
        }
        self.now = self.now.max(until);
    }

    fn dispatch_timer(&mut self, id: NodeId) {
        let mut outbox = Vec::new();
        let mut ctx = EventCtx {
            now: self.now,
            nodes: &mut self.nodes,
            rng: &mut self.rng,
            net: &mut self.net,
            outbox: &mut outbox,
        };
        self.protocol.on_timer(id, &mut ctx);
        self.flush(outbox);
    }

    fn dispatch_message(&mut self, to: NodeId, from: NodeId, message: P::Message) {
        self.delivered += 1;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.record_async_delivery();
        }
        let mut outbox = Vec::new();
        let mut ctx = EventCtx {
            now: self.now,
            nodes: &mut self.nodes,
            rng: &mut self.rng,
            net: &mut self.net,
            outbox: &mut outbox,
        };
        self.protocol.on_message(to, from, message, &mut ctx);
        self.flush(outbox);
    }

    /// Attaches a [`FaultScenario`] (validated first): burst-loss windows
    /// override the configured loss rate, delay windows add delivery
    /// latency, and duplication windows deliver extra message copies.
    /// Fault round windows are mapped to ticks via the gossip period.
    pub fn set_fault_scenario(&mut self, scenario: FaultScenario) -> Result<(), SimConfigError> {
        scenario.validate()?;
        self.faults = Some(scenario);
        Ok(())
    }

    /// Messages duplicated by the fault injector so far.
    pub fn duplicated_count(&self) -> u64 {
        self.duplicated
    }

    /// Attaches a telemetry store. The event-driven engine records
    /// delivery/loss/duplication counters into it; recording is purely
    /// observational and never consumes engine RNG, so attaching telemetry
    /// leaves the simulation bit-identical.
    pub fn attach_telemetry(&mut self, telemetry: SimTelemetry) {
        self.telemetry = Some(Box::new(telemetry));
    }

    /// Detaches and returns the telemetry store, if any.
    pub fn detach_telemetry(&mut self) -> Option<SimTelemetry> {
        self.telemetry.take().map(|b| *b)
    }

    /// The attached telemetry store, if any.
    pub fn telemetry(&self) -> Option<&SimTelemetry> {
        self.telemetry.as_deref()
    }

    /// Mutable access to the attached telemetry store, if any.
    pub fn telemetry_mut(&mut self) -> Option<&mut SimTelemetry> {
        self.telemetry.as_deref_mut()
    }

    /// Emits a [`RoundSnapshot`](adam2_telemetry::RoundSnapshot) for the
    /// current gossip period (`now / gossip_period`) carrying the live-node
    /// count and cumulative traffic totals. A no-op without telemetry.
    /// Event-driven drivers call this at period boundaries; the cycle
    /// engine snapshots automatically instead.
    pub fn snapshot_telemetry(&mut self) {
        let round = self.now / self.config.gossip_period;
        let live = self.nodes.len() as u64;
        let (bytes, msgs) = (self.net.total_bytes(), self.net.total_msgs());
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.end_round(round, live, bytes, msgs);
        }
    }

    fn flush(&mut self, outbox: Vec<(NodeId, NodeId, P::Message, usize)>) {
        let round = self.now / self.config.gossip_period;
        let (loss_rate, extra_delay, dup_rate) = match &self.faults {
            Some(s) => (
                s.loss_rate_at(round).unwrap_or(self.config.loss_rate),
                s.extra_delay_at(round),
                s.duplication_rate_at(round),
            ),
            None => (self.config.loss_rate, 0, 0.0),
        };
        for (from, to, message, _bytes) in outbox {
            if loss_rate > 0.0 && self.rng.random::<f64>() < loss_rate {
                self.lost += 1;
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.record_async_loss();
                }
                continue;
            }
            let latency = self.config.latency.sample(&mut self.rng).max(1) + extra_delay;
            let at = self.now + latency;
            if dup_rate > 0.0 && self.rng.random::<f64>() < dup_rate {
                self.duplicated += 1;
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.record_async_duplicate();
                }
                let dup_latency = self.config.latency.sample(&mut self.rng).max(1) + extra_delay;
                self.schedule(
                    self.now + dup_latency,
                    Event::Deliver {
                        from,
                        to,
                        message: message.clone(),
                    },
                );
            }
            self.schedule(at, Event::Deliver { from, to, message });
        }
    }

    /// Current simulation time in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The live nodes.
    pub fn nodes(&self) -> &NodeSlab<P::Node> {
        &self.nodes
    }

    /// Mutable node access.
    pub fn nodes_mut(&mut self) -> &mut NodeSlab<P::Node> {
        &mut self.nodes
    }

    /// The protocol instance.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Mutable protocol access.
    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.protocol
    }

    /// Network statistics.
    pub fn net(&self) -> &NetStats {
        &self.net
    }

    /// Engine RNG.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Messages lost in transit so far.
    pub fn lost_count(&self) -> u64 {
        self.lost
    }

    /// Invokes `f` with an execution context outside an event (used by
    /// drivers to trigger protocol actions deterministically).
    pub fn with_ctx<R>(
        &mut self,
        f: impl FnOnce(&mut P, &mut EventCtx<'_, P::Node, P::Message>) -> R,
    ) -> R {
        let mut outbox = Vec::new();
        let mut ctx = EventCtx {
            now: self.now,
            nodes: &mut self.nodes,
            rng: &mut self.rng,
            net: &mut self.net,
            outbox: &mut outbox,
        };
        let result = f(&mut self.protocol, &mut ctx);
        self.flush(outbox);
        result
    }
}

impl<P: AsyncProtocol> std::fmt::Debug for EventEngine<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventEngine")
            .field("now", &self.now)
            .field("live_nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Asynchronous push–pull averaging: the classic non-atomic variant.
    struct AsyncAveraging {
        next: f64,
    }

    #[derive(Clone)]
    enum Msg {
        Request(f64),
        Response(f64),
    }

    impl AsyncProtocol for AsyncAveraging {
        type Node = f64;
        type Message = Msg;

        fn make_node(&mut self, _rng: &mut StdRng) -> f64 {
            self.next += 1.0;
            self.next
        }

        fn on_timer(&mut self, id: NodeId, ctx: &mut EventCtx<'_, f64, Msg>) {
            let Some(partner) = ctx.random_neighbour(id) else {
                return;
            };
            let Some(v) = ctx.nodes.get(id).copied() else {
                return;
            };
            ctx.send(id, partner, Msg::Request(v), 8);
        }

        fn on_message(
            &mut self,
            id: NodeId,
            from: NodeId,
            message: Msg,
            ctx: &mut EventCtx<'_, f64, Msg>,
        ) {
            match message {
                Msg::Request(theirs) => {
                    let Some(mine) = ctx.nodes.get(id).copied() else {
                        return;
                    };
                    ctx.send(id, from, Msg::Response(mine), 8);
                    if let Some(v) = ctx.nodes.get_mut(id) {
                        *v = (mine + theirs) / 2.0;
                    }
                }
                Msg::Response(theirs) => {
                    if let Some(v) = ctx.nodes.get_mut(id) {
                        *v = (*v + theirs) / 2.0;
                    }
                }
            }
        }
    }

    #[test]
    fn async_averaging_converges_near_the_mean() {
        let config = EventConfig::new(128, 5)
            .with_gossip_period(100)
            .with_latency(LatencyModel::Uniform { min: 5, max: 30 });
        let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
        engine.run_until(100 * 60);
        let expected = 129.0 / 2.0;
        // Non-atomic push-pull does not conserve mass exactly, but with
        // short latencies relative to the period the drift is small.
        let mean: f64 =
            engine.nodes().iter().map(|(_, v)| *v).sum::<f64>() / engine.nodes().len() as f64;
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} vs {expected}"
        );
        for (_, v) in engine.nodes().iter() {
            assert!((v - mean).abs() < 1.0, "value {v} not converged to {mean}");
        }
    }

    #[test]
    fn timers_fire_once_per_period() {
        struct TimerCounter {
            fires: u64,
        }
        impl AsyncProtocol for TimerCounter {
            type Node = ();
            type Message = ();
            fn make_node(&mut self, _rng: &mut StdRng) {}
            fn on_timer(&mut self, _id: NodeId, _ctx: &mut EventCtx<'_, (), ()>) {
                self.fires += 1;
            }
            fn on_message(&mut self, _: NodeId, _: NodeId, _: (), _: &mut EventCtx<'_, (), ()>) {}
        }
        let config = EventConfig::new(10, 6).with_gossip_period(100);
        let mut engine = EventEngine::new(config, TimerCounter { fires: 0 });
        engine.run_until(1000);
        // 10 nodes x ~10 periods (random phases make it 90..110).
        let fires = engine.protocol().fires;
        assert!((90..=110).contains(&fires), "fires = {fires}");
    }

    #[test]
    fn message_loss_is_applied_and_counted() {
        let config = EventConfig::new(64, 7)
            .with_gossip_period(50)
            .with_loss_rate(0.5);
        let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
        engine.run_until(50 * 40);
        let lost = engine.lost_count();
        let delivered = engine.delivered_count();
        let total = lost + delivered;
        let loss_frac = lost as f64 / total as f64;
        assert!((loss_frac - 0.5).abs() < 0.05, "loss fraction {loss_frac}");
        // Averaging still roughly works under 50% loss.
        let expected = 65.0 / 2.0;
        let mean: f64 =
            engine.nodes().iter().map(|(_, v)| *v).sum::<f64>() / engine.nodes().len() as f64;
        assert!((mean - expected).abs() / expected < 0.25, "mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let config = EventConfig::new(32, seed).with_gossip_period(80);
            let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
            engine.run_until(2000);
            engine.nodes().iter().map(|(_, v)| *v).collect::<Vec<f64>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn fixed_latency_model() {
        let mut rng = seeded_rng(1);
        assert_eq!(LatencyModel::Fixed(42).sample(&mut rng), 42);
        let l = LatencyModel::Uniform { min: 5, max: 5 }.sample(&mut rng);
        assert_eq!(l, 5);
        for _ in 0..100 {
            let l = LatencyModel::Uniform { min: 3, max: 9 }.sample(&mut rng);
            assert!((3..=9).contains(&l));
        }
    }

    #[test]
    fn fault_burst_loss_applies_only_inside_the_window() {
        // Lossless base config; a full-loss burst over rounds [2, 4) (ticks
        // 100..200 at a 50-tick period... gossip_period 50 -> rounds are
        // 50-tick windows).
        let config = EventConfig::new(32, 13).with_gossip_period(50);
        let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
        engine
            .set_fault_scenario(crate::faults::FaultScenario::new(1).with_burst_loss(2, 4, 1.0))
            .unwrap();
        engine.run_until(50 * 2 - 1);
        assert_eq!(engine.lost_count(), 0, "no loss before the burst");
        engine.run_until(50 * 4);
        let lost_in_burst = engine.lost_count();
        assert!(lost_in_burst > 0, "burst drops everything sent inside it");
        engine.run_until(50 * 8);
        let sent_after = engine.delivered_count();
        assert!(sent_after > 0, "loss stops when the burst ends");
    }

    #[test]
    fn fault_duplication_delivers_extra_copies() {
        let config = EventConfig::new(32, 14).with_gossip_period(50);
        let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
        engine
            .set_fault_scenario(crate::faults::FaultScenario::new(2).with_duplication(0, 100, 1.0))
            .unwrap();
        engine.run_until(50 * 10);
        assert!(engine.duplicated_count() > 0);
        // Every sent message got a twin, so deliveries far exceed charged
        // sends / 2... just check the twin count matches extra deliveries.
        assert!(
            engine.delivered_count() >= engine.duplicated_count(),
            "duplicates are delivered too"
        );
    }

    #[test]
    fn fault_delay_postpones_delivery() {
        // Fixed 5-tick latency, +200-tick delay window over the whole run:
        // nothing sent in round 0 can arrive before tick 205.
        let config = EventConfig::new(16, 15)
            .with_gossip_period(100)
            .with_latency(LatencyModel::Fixed(5));
        let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
        engine
            .set_fault_scenario(crate::faults::FaultScenario::new(3).with_delay(0, 1, 200))
            .unwrap();
        engine.run_until(100);
        assert_eq!(engine.delivered_count(), 0, "deliveries pushed past t=205");
        engine.run_until(400);
        assert!(engine.delivered_count() > 0);
    }

    #[test]
    fn telemetry_counts_async_deliveries_and_losses() {
        let run = |attach: bool| {
            let config = EventConfig::new(32, 17)
                .with_gossip_period(50)
                .with_loss_rate(0.3);
            let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
            if attach {
                engine.attach_telemetry(SimTelemetry::new());
            }
            engine.run_until(50 * 20);
            engine.snapshot_telemetry();
            engine
        };
        let mut engine = run(true);
        let t = engine.detach_telemetry().expect("telemetry attached");
        let counter = |name| {
            let (_, v) = t
                .telemetry()
                .metrics
                .counters()
                .find(|(n, _)| *n == name)
                .unwrap();
            v
        };
        assert_eq!(counter("async_delivered"), engine.delivered_count());
        assert_eq!(counter("async_lost"), engine.lost_count());
        let snaps = t.telemetry().snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].round, 20);
        assert_eq!(snaps[0].live_nodes, 32);
        assert_eq!(snaps[0].round_bytes, engine.net().total_bytes());

        // Attaching telemetry must not perturb the simulation.
        let bare = run(false);
        let values = |e: &EventEngine<AsyncAveraging>| {
            e.nodes()
                .iter()
                .map(|(_, v)| v.to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(values(&engine), values(&bare));
        assert_eq!(engine.delivered_count(), bare.delivered_count());
    }

    #[test]
    fn network_bytes_are_charged_even_for_lost_messages() {
        let config = EventConfig::new(16, 11)
            .with_gossip_period(50)
            .with_loss_rate(1.0);
        let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
        engine.run_until(500);
        assert!(
            engine.net().total_bytes() > 0,
            "senders still pay for lost messages"
        );
        assert_eq!(engine.delivered_count(), 0);
    }
}

#[cfg(test)]
mod store_tests {
    use super::*;

    struct Ping;
    impl AsyncProtocol for Ping {
        type Node = ();
        type Message = u64;
        fn make_node(&mut self, _rng: &mut StdRng) {}
        fn on_timer(&mut self, id: NodeId, ctx: &mut EventCtx<'_, (), u64>) {
            if let Some(p) = ctx.random_neighbour(id) {
                ctx.send(id, p, ctx.now, 8);
            }
        }
        fn on_message(&mut self, _: NodeId, _: NodeId, _: u64, _: &mut EventCtx<'_, (), u64>) {}
    }

    #[test]
    fn event_store_is_bounded_by_pending_events() {
        let config = EventConfig::new(64, 21).with_gossip_period(10);
        let mut engine = EventEngine::new(config, Ping);
        // Long run: thousands of events scheduled and consumed.
        engine.run_until(10 * 2_000);
        // The store must stay near the number of *pending* events (one
        // timer per node plus in-flight messages), not the total ever
        // scheduled (~192k here).
        let capacity = engine.events.len();
        assert!(
            capacity < 64 * 20,
            "event store grew unboundedly: {capacity} slots"
        );
    }
}
