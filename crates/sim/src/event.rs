//! Event-driven simulation: asynchronous messages with latency.
//!
//! The cycle-driven [`Engine`](crate::Engine) models PeerSim's synchronous
//! rounds where a push–pull exchange is *atomic*. Real networks are not
//! synchronous: a request and its response are separate messages with
//! latency, gossip timers drift, and concurrent exchanges interleave. This
//! module provides PeerSim's *other* execution model — an event queue with
//! per-message latencies — so protocols can be validated against the
//! asynchrony the cycle model hides (e.g. the mass-conservation variance
//! of non-atomic push–pull averaging, Jelasity et al. 2005, §4).
//!
//! Time is measured in abstract *ticks* (1 tick ≈ 1 ms at the paper's 1 s
//! gossip period with `gossip_period = 1000`).
//!
//! # Execution modes
//!
//! Future events live in a sharded [`TimerWheel`] (O(1) push/pop, buckets
//! per tick, shards by destination slot range). Two drivers drain it:
//!
//! * [`EventEngine::run_until`] — the sequential reference: events are
//!   handled one at a time in `(tick, seq)` order, exactly as the old
//!   `BinaryHeap` queue did.
//! * [`EventEngine::run_until_parallel`] — the batch mode for
//!   [`BatchAsyncProtocol`] implementations. Each tick is processed as one
//!   batch in three phases mirroring `Engine::run_round_parallel`:
//!   a sequential pre-pass (drop events for dead nodes, engine-level
//!   duplicate suppression, canonical delivery accounting), a parallel
//!   compute phase over the slot-disjoint wheel shards (per-event RNG
//!   streams derived from `(seed, tick, slot, seq)` counters, never from
//!   the thread), and a sequential merge that applies sends, faults, and
//!   timer reschedules in canonical `(shard, seq)` order. Every mutation
//!   order is thread-count-invariant, so results are bit-identical for any
//!   `threads` setting (asserted by tests below).

use std::collections::{HashSet, VecDeque};

use rand::rngs::StdRng;
use rand::RngExt as _;

use rand::seq::SliceRandom as _;

use crate::engine::SimConfigError;
use crate::faults::{
    ActiveAdversary, DriftModel, DriftOp, FaultRuntime, FaultScenario, FaultTrace, RoundFaults,
};
use crate::node::{NodeId, NodeSlab, PeerView};
use crate::rng::{derive_seed, par_stream_rng, seeded_rng};
use crate::stats::NetStats;
use crate::telemetry::SimTelemetry;
use crate::wheel::TimerWheel;

/// Destination-slot shards in the timer wheel; also the unit of parallel
/// work in [`EventEngine::run_until_parallel`].
const EVENT_SHARDS: usize = 8;

/// Seed stream separating batch-mode per-event RNGs from the engine RNG
/// (ASCII "evnt").
const EVENT_PAR_STREAM: u64 = 0x65766e74;

/// Message latency model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this many ticks.
    Fixed(u64),
    /// Uniform latency in `[min, max]` ticks.
    Uniform {
        /// Minimum latency.
        min: u64,
        /// Maximum latency.
        max: u64,
    },
}

impl LatencyModel {
    fn sample(&self, rng: &mut StdRng) -> u64 {
        match self {
            LatencyModel::Fixed(t) => *t,
            LatencyModel::Uniform { min, max } => {
                if min == max {
                    *min
                } else {
                    rng.random_range(*min..=*max)
                }
            }
        }
    }

    /// Upper bound on a sampled latency (used to size the wheel horizon).
    fn max_ticks(&self) -> u64 {
        match self {
            LatencyModel::Fixed(t) => *t,
            LatencyModel::Uniform { max, .. } => *max,
        }
    }
}

/// Configuration of the event-driven engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventConfig {
    /// Initial number of nodes.
    pub n: usize,
    /// Master seed.
    pub seed: u64,
    /// Gossip timer period in ticks (each node fires once per period, with
    /// a random initial phase).
    pub gossip_period: u64,
    /// Message latency model.
    pub latency: LatencyModel,
    /// Probability that any individual message is lost in transit.
    pub loss_rate: f64,
    /// Worker threads for [`EventEngine::run_until_parallel`]. Results are
    /// bit-identical for every value; `<= 1` runs inline.
    pub threads: usize,
}

impl EventConfig {
    /// A configuration with 1000-tick periods and 10–150-tick uniform
    /// latency (a wide-area network at a 1 s gossip period).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "n must be positive");
        Self {
            n,
            seed,
            gossip_period: 1000,
            latency: LatencyModel::Uniform { min: 10, max: 150 },
            loss_rate: 0.0,
            threads: 1,
        }
    }

    /// Replaces the gossip period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_gossip_period(mut self, period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        self.gossip_period = period;
        self
    }

    /// Replaces the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the message loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss_rate` is outside `[0, 1]`.
    pub fn with_loss_rate(mut self, loss_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_rate),
            "loss_rate must be in [0, 1]"
        );
        self.loss_rate = loss_rate;
        self
    }

    /// Sets the worker-thread count for the parallel batch driver.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Validates the configuration. [`EventEngine::try_new`] calls this;
    /// use it directly to vet configs built by struct literal. In
    /// particular a `Uniform` latency with `min > max` is rejected here
    /// rather than silently degrading to `min` at sample time.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if self.n == 0 {
            return Err(SimConfigError::new("n must be positive"));
        }
        if self.gossip_period == 0 {
            return Err(SimConfigError::new("gossip_period must be positive"));
        }
        if !self.loss_rate.is_finite() || !(0.0..=1.0).contains(&self.loss_rate) {
            return Err(SimConfigError::new(format!(
                "loss_rate {} must be in [0, 1]",
                self.loss_rate
            )));
        }
        if let LatencyModel::Uniform { min, max } = self.latency {
            if min > max {
                return Err(SimConfigError::new(format!(
                    "uniform latency min {min} exceeds max {max}"
                )));
            }
        }
        Ok(())
    }
}

/// An asynchronous protocol driven by the [`EventEngine`].
pub trait AsyncProtocol {
    /// Per-node protocol state.
    type Node;
    /// Message type exchanged between nodes. `Clone` lets the engine's
    /// fault injector deliver duplicates.
    type Message: Clone;

    /// Creates the state of a fresh node.
    fn make_node(&mut self, rng: &mut StdRng) -> Self::Node;

    /// The node's gossip timer fired.
    fn on_timer(&mut self, id: NodeId, ctx: &mut EventCtx<'_, Self::Node, Self::Message>);

    /// A message arrived.
    fn on_message(
        &mut self,
        id: NodeId,
        from: NodeId,
        message: Self::Message,
        ctx: &mut EventCtx<'_, Self::Node, Self::Message>,
    );

    /// Applies one attribute-drift operation to a live node (fault
    /// injection under a [`crate::FaultEvent::Drift`] window), mirroring
    /// `Protocol::drift_node` on the cycle engine. `rng` is the
    /// scenario-seeded drift stream. The default ignores drift.
    fn drift_node(&mut self, id: NodeId, node: &mut Self::Node, op: DriftOp, rng: &mut StdRng) {
        let _ = (id, node, op, rng);
    }
}

/// The parallel-batch extension of [`AsyncProtocol`], driven by
/// [`EventEngine::run_until_parallel`].
///
/// Batch handlers take `&self` (they run concurrently on slot-disjoint
/// node chunks) and a `&mut` to exactly the node the event targets.
/// Whole-protocol mutations are deferred: handlers accumulate them into a
/// per-shard [`Report`](BatchAsyncProtocol::Report), which the engine
/// feeds to [`absorb_report`](BatchAsyncProtocol::absorb_report)
/// sequentially in canonical shard order after the parallel phase joins.
///
/// Implementations must derive any randomness from the per-event RNG in
/// [`BatchCtx`] (a counter-based stream keyed on `(tick, slot, seq)`),
/// never from shared state — that is what makes batch runs bit-identical
/// across thread counts.
pub trait BatchAsyncProtocol: AsyncProtocol {
    /// Per-shard accumulator for deferred whole-protocol mutations
    /// (completion counts, dedup statistics, ...).
    type Report: Default + Send;

    /// The node's gossip timer fired (batch mode).
    fn par_on_timer(
        &self,
        id: NodeId,
        node: &mut Self::Node,
        ctx: &mut BatchCtx<'_, '_, Self::Message>,
        report: &mut Self::Report,
    );

    /// A message arrived (batch mode). The engine has already suppressed
    /// fault-injected duplicate copies, so unlike the sequential path the
    /// handler never sees the same `(send)` twice.
    fn par_on_message(
        &self,
        id: NodeId,
        node: &mut Self::Node,
        from: NodeId,
        message: Self::Message,
        ctx: &mut BatchCtx<'_, '_, Self::Message>,
        report: &mut Self::Report,
    );

    /// Folds one shard's report into the protocol, in canonical shard
    /// order. Runs sequentially after the parallel phase.
    fn absorb_report(&mut self, report: Self::Report);
}

/// Execution context for [`AsyncProtocol`] callbacks.
pub struct EventCtx<'a, N, M> {
    /// Current simulation time in ticks.
    pub now: u64,
    /// The gossip-period window (fault *round*) containing `now`.
    pub round: u64,
    /// The Byzantine adversary active in this window, if the attached
    /// [`FaultScenario`] has one. Protocols use it to corrupt their own
    /// state before sending (see [`ActiveAdversary`]).
    pub adversary: Option<ActiveAdversary>,
    /// All live nodes.
    pub nodes: &'a mut NodeSlab<N>,
    /// Engine RNG.
    pub rng: &'a mut StdRng,
    /// Network accounting (messages are charged when sent, even if later
    /// lost).
    pub net: &'a mut NetStats,
    outbox: &'a mut Vec<(NodeId, NodeId, M, usize)>,
}

impl<N, M> EventCtx<'_, N, M> {
    /// Sends `message` of `bytes` from `from` to `to` (delivered after the
    /// configured latency unless lost).
    pub fn send(&mut self, from: NodeId, to: NodeId, message: M, bytes: usize) {
        self.net.charge_message(from, to, bytes);
        self.outbox.push((from, to, message, bytes));
    }

    /// Draws a uniformly random live node other than `of` (the idealised
    /// peer-sampling service).
    ///
    /// Mirrors `Ctx::random_neighbour` on the cycle engine: a Byzantine
    /// `of` under a targeted-partner adversary deterministically aims at
    /// the lowest live slot instead of sampling, consuming no engine RNG.
    pub fn random_neighbour(&mut self, of: NodeId) -> Option<NodeId> {
        if let Some(adv) = &self.adversary {
            if adv.model.targets_partner() && adv.is_byzantine(of.slot()) {
                let mut ids = self.nodes.ids();
                let first = ids.next();
                let victim = if first == Some(of) { ids.next() } else { first };
                if victim.is_some() {
                    return victim;
                }
            }
        }
        self.nodes.random_other(of, self.rng)
    }
}

/// Execution context for [`BatchAsyncProtocol`] callbacks.
///
/// Unlike [`EventCtx`] it exposes no slab access (workers own disjoint
/// node chunks through the engine, not the context) and no engine RNG:
/// randomness comes from a private per-event stream seeded by
/// `(seed, tick, slot, seq)`, and sends are buffered for the sequential
/// merge phase where network accounting and fault injection happen in
/// canonical order.
pub struct BatchCtx<'a, 'o, M> {
    now: u64,
    round: u64,
    adversary: Option<ActiveAdversary>,
    stamp: u64,
    rng: StdRng,
    peers: PeerView<'a>,
    sends: &'o mut Vec<(NodeId, NodeId, M, usize)>,
}

impl<M> BatchCtx<'_, '_, M> {
    /// Current simulation time in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The gossip-period window (fault *round*) containing `now`.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The Byzantine adversary active in this window, if any.
    pub fn adversary(&self) -> Option<ActiveAdversary> {
        self.adversary
    }

    /// The globally unique, thread-count-invariant sequence stamp of the
    /// event being handled. Protocols needing a deterministic nonce (e.g.
    /// a message sequence number) use this instead of a shared counter.
    pub fn event_stamp(&self) -> u64 {
        self.stamp
    }

    /// The per-event RNG stream.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Number of live nodes.
    pub fn live_len(&self) -> usize {
        self.peers.len()
    }

    /// Whether `id` refers to a live node.
    pub fn contains(&self, id: NodeId) -> bool {
        self.peers.contains(id)
    }

    /// Sends `message` of `bytes` from `from` to `to`. The send is applied
    /// (charged, fault-checked, scheduled) during the sequential merge.
    pub fn send(&mut self, from: NodeId, to: NodeId, message: M, bytes: usize) {
        self.sends.push((from, to, message, bytes));
    }

    /// Draws a uniformly random live node other than `of`, bit-identical
    /// to [`EventCtx::random_neighbour`] given the same RNG state —
    /// including the deterministic targeted-partner override for Byzantine
    /// initiators.
    pub fn random_neighbour(&mut self, of: NodeId) -> Option<NodeId> {
        if let Some(adv) = &self.adversary {
            if adv.model.targets_partner() && adv.is_byzantine(of.slot()) {
                if let Some(victim) = self.peers.lowest_other(of) {
                    return Some(victim);
                }
            }
        }
        self.peers.random_other(of, &mut self.rng)
    }
}

#[derive(Debug)]
enum Event<M> {
    Timer(NodeId),
    Deliver {
        from: NodeId,
        to: NodeId,
        message: M,
        /// Per-send stamp shared by fault-injected duplicate copies, so
        /// the batch pre-pass can suppress redelivery without protocol
        /// cooperation.
        send_seq: u64,
    },
}

/// A deferred effect recorded by a batch worker, applied in the merge
/// phase. Per-shard op lists preserve each event's own ordering (sends
/// first, then the timer reschedule, as in the sequential path).
enum MergeOp<M> {
    Send {
        from: NodeId,
        to: NodeId,
        message: M,
        bytes: usize,
    },
    Timer(NodeId),
}

/// One shard's batch-phase output: recorded effects in event order plus
/// the shard's accumulated protocol report.
type ShardBatch<M, R> = (Vec<MergeOp<M>>, R);

/// Capacity bound for the duplicate-suppression window. Duplicate copies
/// arrive within one latency draw of the original, so entries far older
/// than that can be evicted.
const DUP_WINDOW: usize = 1 << 14;

/// The event-driven engine: a sharded timer wheel over the same node slab
/// and accounting as the cycle-driven engine.
pub struct EventEngine<P: AsyncProtocol> {
    protocol: P,
    nodes: NodeSlab<P::Node>,
    config: EventConfig,
    rng: StdRng,
    now: u64,
    wheel: TimerWheel<Event<P::Message>>,
    /// Stamp for the next send (shared by a message and its duplicates).
    send_seq: u64,
    /// Send stamps that have a fault-injected twin in flight.
    dup_pending: HashSet<u64>,
    /// Stamps from `dup_pending` already delivered once (batch mode).
    dup_delivered: HashSet<u64>,
    /// Eviction order for the two sets above.
    dup_fifo: VecDeque<u64>,
    dup_dropped: u64,
    net: NetStats,
    delivered: u64,
    lost: u64,
    duplicated: u64,
    faults: Option<FaultRuntime>,
    /// First fault round (gossip-period window) not yet processed by
    /// `advance_faults`.
    next_fault_round: u64,
    telemetry: Option<Box<SimTelemetry>>,
    /// First window (gossip period) not yet snapshotted.
    next_window: u64,
    /// Traffic totals at the last window boundary.
    win_bytes: u64,
    win_msgs: u64,
    /// Reused per-tick drain buckets for the batch driver.
    drain_scratch: Vec<VecDeque<(u64, Event<P::Message>)>>,
}

impl<P: AsyncProtocol> EventEngine<P> {
    /// Builds the engine, creating `config.n` nodes and scheduling their
    /// first gossip timers at random phases within one period.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`EventConfig::validate`]);
    /// use [`EventEngine::try_new`] for a `Result`.
    pub fn new(config: EventConfig, protocol: P) -> Self {
        Self::try_new(config, protocol).expect("invalid event-engine config")
    }

    /// Builds the engine, validating the configuration first.
    ///
    /// # Errors
    ///
    /// Returns the [`EventConfig::validate`] error for an invalid config.
    pub fn try_new(config: EventConfig, mut protocol: P) -> Result<Self, SimConfigError> {
        config.validate()?;
        let mut rng = seeded_rng(config.seed);
        let mut nodes = NodeSlab::with_capacity(config.n);
        for _ in 0..config.n {
            let state = protocol.make_node(&mut rng);
            nodes.insert(state);
        }
        // Horizon covering one period plus the worst regular latency: only
        // fault-injected delays overflow to the wheel's slow level.
        let horizon = config.gossip_period + config.latency.max_ticks() + 2;
        let mut engine = Self {
            protocol,
            nodes,
            config,
            rng,
            now: 0,
            wheel: TimerWheel::new(horizon, EVENT_SHARDS),
            send_seq: 0,
            dup_pending: HashSet::new(),
            dup_delivered: HashSet::new(),
            dup_fifo: VecDeque::new(),
            dup_dropped: 0,
            net: NetStats::new(),
            delivered: 0,
            lost: 0,
            duplicated: 0,
            faults: None,
            next_fault_round: 0,
            telemetry: None,
            next_window: 0,
            win_bytes: 0,
            win_msgs: 0,
            drain_scratch: Vec::new(),
        };
        for id in engine.nodes.id_vec() {
            let phase = engine.rng.random_range(0..engine.config.gossip_period);
            engine.schedule_timer(phase, id);
        }
        Ok(engine)
    }

    fn schedule_timer(&mut self, at: u64, id: NodeId) {
        self.wheel.push(at, id.slot() as u32, Event::Timer(id));
    }

    /// Runs until simulation time reaches `until` ticks, handling events
    /// one at a time in `(tick, seq)` order.
    pub fn run_until(&mut self, until: u64) {
        while let Some((at, _seq, event)) = self.wheel.pop_at_or_before(until) {
            self.now = at;
            self.roll_windows();
            self.advance_faults();
            match event {
                Event::Timer(id) => {
                    if self.nodes.contains(id) {
                        self.dispatch_timer(id);
                        let next = self.now + self.config.gossip_period;
                        self.schedule_timer(next, id);
                    }
                }
                Event::Deliver {
                    from, to, message, ..
                } => {
                    if self.nodes.contains(to) {
                        self.dispatch_message(to, from, message);
                    }
                }
            }
        }
        self.now = self.now.max(until);
        self.roll_windows();
        self.advance_faults();
    }

    fn dispatch_timer(&mut self, id: NodeId) {
        let mut outbox = Vec::new();
        let mut ctx = EventCtx {
            now: self.now,
            round: self.now / self.config.gossip_period,
            adversary: self.current_adversary(),
            nodes: &mut self.nodes,
            rng: &mut self.rng,
            net: &mut self.net,
            outbox: &mut outbox,
        };
        self.protocol.on_timer(id, &mut ctx);
        self.flush(outbox);
    }

    fn dispatch_message(&mut self, to: NodeId, from: NodeId, message: P::Message) {
        self.delivered += 1;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.record_async_delivery();
        }
        let mut outbox = Vec::new();
        let mut ctx = EventCtx {
            now: self.now,
            round: self.now / self.config.gossip_period,
            adversary: self.current_adversary(),
            nodes: &mut self.nodes,
            rng: &mut self.rng,
            net: &mut self.net,
            outbox: &mut outbox,
        };
        self.protocol.on_message(to, from, message, &mut ctx);
        self.flush(outbox);
    }

    /// Attaches a [`FaultScenario`] (validated first): burst-loss windows
    /// override the configured loss rate, delay windows add delivery
    /// latency, duplication windows deliver extra message copies,
    /// partitions drop cross-group messages, crash waves remove nodes and
    /// recoveries re-insert them, and adversary windows activate Byzantine
    /// behaviour. Fault round windows are mapped to ticks via the gossip
    /// period. Replaces any previous scenario and clears its trace.
    pub fn set_fault_scenario(&mut self, scenario: FaultScenario) -> Result<(), SimConfigError> {
        scenario.validate()?;
        self.faults = Some(FaultRuntime::new(scenario));
        self.next_fault_round = self.now / self.config.gossip_period;
        Ok(())
    }

    /// The trace of injected round-windowed faults, if a scenario is
    /// attached. Identical across both drivers at any thread count.
    pub fn fault_trace(&self) -> Option<&FaultTrace> {
        self.faults.as_ref().map(|rt| &rt.trace)
    }

    /// Messages duplicated by the fault injector so far.
    pub fn duplicated_count(&self) -> u64 {
        self.duplicated
    }

    /// Duplicate copies suppressed by the batch driver so far (the
    /// sequential driver delivers duplicates and leaves suppression to the
    /// protocol).
    pub fn dup_dropped_count(&self) -> u64 {
        self.dup_dropped
    }

    /// Attaches a telemetry store. The engine records delivery/loss/
    /// duplication counters into it and emits one
    /// [`RoundSnapshot`](adam2_telemetry::RoundSnapshot) per elapsed
    /// gossip period; recording is purely observational and never consumes
    /// engine RNG, so attaching telemetry leaves the simulation
    /// bit-identical.
    pub fn attach_telemetry(&mut self, telemetry: SimTelemetry) {
        self.next_window = self.now / self.config.gossip_period;
        self.win_bytes = self.net.total_bytes();
        self.win_msgs = self.net.total_msgs();
        self.telemetry = Some(Box::new(telemetry));
    }

    /// Detaches and returns the telemetry store, if any.
    pub fn detach_telemetry(&mut self) -> Option<SimTelemetry> {
        self.telemetry.take().map(|b| *b)
    }

    /// The attached telemetry store, if any.
    pub fn telemetry(&self) -> Option<&SimTelemetry> {
        self.telemetry.as_deref()
    }

    /// Mutable access to the attached telemetry store, if any.
    pub fn telemetry_mut(&mut self) -> Option<&mut SimTelemetry> {
        self.telemetry.as_deref_mut()
    }

    /// Emits snapshots for every gossip-period window that has fully
    /// elapsed. Windows carry per-window traffic deltas; window `w` covers
    /// ticks `[w * period, (w + 1) * period)`. A no-op without telemetry.
    fn roll_windows(&mut self) {
        if self.telemetry.is_none() {
            return;
        }
        let period = self.config.gossip_period;
        while (self.next_window + 1) * period <= self.now {
            let bytes = self.net.total_bytes();
            let msgs = self.net.total_msgs();
            let live = self.nodes.len() as u64;
            let t = self.telemetry.as_deref_mut().expect("checked above");
            t.end_round(
                self.next_window,
                live,
                bytes - self.win_bytes,
                msgs - self.win_msgs,
            );
            self.win_bytes = bytes;
            self.win_msgs = msgs;
            self.next_window += 1;
        }
    }

    /// Emits a [`RoundSnapshot`](adam2_telemetry::RoundSnapshot) for the
    /// current *partial* window (full windows are emitted automatically as
    /// time advances). Useful at the end of a run to capture the tail. A
    /// no-op without telemetry.
    pub fn snapshot_telemetry(&mut self) {
        if self.telemetry.is_none() {
            return;
        }
        self.roll_windows();
        let bytes = self.net.total_bytes();
        let msgs = self.net.total_msgs();
        let live = self.nodes.len() as u64;
        let window = self.next_window;
        let t = self.telemetry.as_deref_mut().expect("checked above");
        t.end_round(window, live, bytes - self.win_bytes, msgs - self.win_msgs);
        self.win_bytes = bytes;
        self.win_msgs = msgs;
        self.next_window = window + 1;
    }

    /// Fault-adjusted (loss, extra delay, duplication) parameters for the
    /// current tick's round.
    fn fault_params(&self) -> (f64, u64, f64) {
        let round = self.now / self.config.gossip_period;
        match &self.faults {
            Some(rt) => (
                rt.scenario
                    .loss_rate_at(round)
                    .unwrap_or(self.config.loss_rate),
                rt.scenario.extra_delay_at(round),
                rt.scenario.duplication_rate_at(round),
            ),
            None => (self.config.loss_rate, 0, 0.0),
        }
    }

    /// The Byzantine adversary covering the current tick's round, if any.
    fn current_adversary(&self) -> Option<ActiveAdversary> {
        let round = self.now / self.config.gossip_period;
        self.faults
            .as_ref()
            .and_then(|rt| rt.scenario.adversary_at(round))
    }

    /// Applies the round-windowed faults (crash waves, recoveries, trace
    /// records) of every gossip-period window entered since the last call.
    /// Runs at the same sequential points in both drivers and draws only
    /// from scenario-seeded streams, so the injected faults — and the
    /// resulting [`FaultTrace`] — are identical across the sequential and
    /// batch drivers at any thread count.
    fn advance_faults(&mut self) {
        if self.faults.is_none() {
            return;
        }
        let current = self.now / self.config.gossip_period;
        while self.next_fault_round <= current {
            let round = self.next_fault_round;
            self.next_fault_round += 1;
            self.apply_fault_round(round);
        }
    }

    fn apply_fault_round(&mut self, round: u64) {
        let Some(mut rt) = self.faults.take() else {
            return;
        };
        let loss_override = rt.scenario.loss_rate_at(round);
        let loss_rate = loss_override.unwrap_or(self.config.loss_rate);
        if loss_override.is_some() {
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.record_fault_loss(round, loss_rate);
            }
        }

        // Partition bookkeeping: the cut itself is enforced per message in
        // `route`; here we track the window and compute the trace checksum
        // over the live population, exactly as the cycle engine does.
        let active = rt.scenario.active_partition(round);
        let mut partition_checksum = 0u64;
        match active {
            Some((start, kind)) => {
                let k = kind.groups();
                for id in self.nodes.id_vec() {
                    let g = rt.scenario.partition_group(start, id.slot(), k);
                    partition_checksum ^= derive_seed(id.slot() as u64, u64::from(g));
                }
                rt.partition_applied = Some(start);
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.record_fault_partition(round, partition_checksum);
                }
            }
            None => {
                rt.partition_applied.take();
            }
        }

        // Crash waves firing this round: victims come from a
        // scenario-seeded shuffle of the live population in slot order.
        // Their state is dropped; pending events for them are filtered by
        // the liveness checks in both drivers.
        let mut crashed_slots: Vec<u32> = Vec::new();
        for (recover_round, fraction) in rt.scenario.crashes_at(round) {
            let live = self.nodes.len();
            let k = ((fraction * live as f64).round() as usize).min(live.saturating_sub(1));
            if k == 0 {
                continue;
            }
            let mut ids = self.nodes.id_vec();
            let mut rng = rt.crash_rng(round);
            ids.shuffle(&mut rng);
            let mut wave = 0u32;
            for id in ids.into_iter().take(k) {
                if self.nodes.remove(id).is_some() {
                    crashed_slots.push(id.slot() as u32);
                    wave += 1;
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        t.record_crash(round, id.slot() as u32);
                    }
                }
            }
            if wave > 0 {
                rt.pending_recoveries.push((recover_round, wave));
            }
        }

        // Recoveries due this round: fresh nodes built from the scenario
        // stream rejoin and schedule their first gossip timer within one
        // period. The timer lands relative to `now`, which is the batch
        // tick in both drivers — thread-count-invariant by construction.
        let mut recovered = 0u32;
        rt.pending_recoveries.retain(|&(when, count)| {
            if when <= round {
                recovered += count;
                false
            } else {
                true
            }
        });
        if recovered > 0 {
            let mut rng = rt.recover_rng(round);
            for _ in 0..recovered {
                let state = self.protocol.make_node(&mut rng);
                let id = self.nodes.insert(state);
                self.net.reset_slot(id.slot());
                let phase = rng.random_range(0..self.config.gossip_period);
                self.schedule_timer(self.now + 1 + phase, id);
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.record_recovery(round, id.slot() as u32);
                }
            }
        }

        // Attribute drift: rewrite live nodes' values in slot order from
        // the scenario's per-round drift stream, exactly as the cycle
        // engine does at the same fault round — the traces must match.
        let drifted = self.apply_drift(&rt, round);
        if drifted > 0 {
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.record_fault_drift(round, drifted);
            }
        }

        // 5. Byzantine adversary: membership is a pure function of the
        // scenario seed, counted over the post-crash live population.
        let adversary = rt.scenario.adversary_at(round);
        let byzantine = adversary
            .as_ref()
            .map(|adv| adv.count_byzantine(self.nodes.ids().map(|id| id.slot())))
            .unwrap_or(0);

        if loss_override.is_some()
            || active.is_some()
            || !crashed_slots.is_empty()
            || recovered > 0
            || adversary.is_some()
            || drifted > 0
        {
            rt.trace.records.push(RoundFaults {
                round,
                loss_rate,
                partition_active: active.is_some(),
                partition_checksum,
                crashed: crashed_slots,
                recovered,
                byzantine,
                drifted,
            });
        }
        self.faults = Some(rt);
    }

    /// Applies the drift models active at fault round `round` to every
    /// live node in slot order (mirrors `Engine::apply_drift` exactly so
    /// cycle ↔ event fault traces stay comparable).
    fn apply_drift(&mut self, rt: &FaultRuntime, round: u64) -> u32 {
        let models = rt.scenario.drifts_at(round);
        if models.is_empty() {
            return 0;
        }
        let mut rng = rt.drift_rng(round);
        let ids = self.nodes.id_vec();
        let mut drifted = 0u32;
        for model in models {
            for &id in &ids {
                let op = match model {
                    DriftModel::LinearRamp { per_round } => Some(DriftOp::Shift(per_round)),
                    DriftModel::Step { shift } => Some(DriftOp::Shift(shift)),
                    DriftModel::Jitter { sigma } => {
                        let u = rng.random::<f64>();
                        Some(DriftOp::Shift((2.0 * u - 1.0) * sigma))
                    }
                    DriftModel::Replacement { rate } => {
                        (rng.random::<f64>() < rate).then_some(DriftOp::Replace)
                    }
                };
                let Some(op) = op else { continue };
                if let Some(node) = self.nodes.get_mut(id) {
                    self.protocol.drift_node(id, node, op, &mut rng);
                    drifted += 1;
                }
            }
        }
        drifted
    }

    /// Registers `send_seq` as having a duplicate twin in flight, evicting
    /// the oldest entry past the window bound.
    fn register_duplicate(&mut self, send_seq: u64) {
        if self.dup_fifo.len() >= DUP_WINDOW {
            if let Some(old) = self.dup_fifo.pop_front() {
                self.dup_pending.remove(&old);
                self.dup_delivered.remove(&old);
            }
        }
        self.dup_fifo.push_back(send_seq);
        self.dup_pending.insert(send_seq);
    }

    /// Decides the fate of one sent message — loss, latency, duplication —
    /// and schedules the surviving copies. Draws from the engine RNG in a
    /// fixed order (loss, latency, duplication, duplicate latency), so any
    /// caller that presents sends in canonical order gets deterministic
    /// fates.
    fn route(
        &mut self,
        from: NodeId,
        to: NodeId,
        message: P::Message,
        loss_rate: f64,
        extra_delay: u64,
        dup_rate: f64,
    ) {
        // Partition cut: cross-group sends are dropped while a window is
        // active. Group membership is a pure function of the scenario seed
        // and the check consumes no engine RNG, so downstream draws are
        // unaffected by whether a partition is configured.
        if self.partition_cut(from, to) {
            self.lost += 1;
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.record_async_loss();
            }
            return;
        }
        if loss_rate > 0.0 && self.rng.random::<f64>() < loss_rate {
            self.lost += 1;
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.record_async_loss();
            }
            return;
        }
        let latency = self.config.latency.sample(&mut self.rng).max(1) + extra_delay;
        let at = self.now + latency;
        self.send_seq += 1;
        let send_seq = self.send_seq;
        if dup_rate > 0.0 && self.rng.random::<f64>() < dup_rate {
            self.duplicated += 1;
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.record_async_duplicate();
            }
            let dup_latency = self.config.latency.sample(&mut self.rng).max(1) + extra_delay;
            self.register_duplicate(send_seq);
            self.wheel.push(
                self.now + dup_latency,
                to.slot() as u32,
                Event::Deliver {
                    from,
                    to,
                    message: message.clone(),
                    send_seq,
                },
            );
        }
        self.wheel.push(
            at,
            to.slot() as u32,
            Event::Deliver {
                from,
                to,
                message,
                send_seq,
            },
        );
    }

    /// Whether an active partition separates `from` and `to` at the
    /// current tick's round.
    fn partition_cut(&self, from: NodeId, to: NodeId) -> bool {
        let Some(rt) = &self.faults else {
            return false;
        };
        let round = self.now / self.config.gossip_period;
        let Some((start, kind)) = rt.scenario.active_partition(round) else {
            return false;
        };
        let k = kind.groups();
        rt.scenario.partition_group(start, from.slot(), k)
            != rt.scenario.partition_group(start, to.slot(), k)
    }

    fn flush(&mut self, outbox: Vec<(NodeId, NodeId, P::Message, usize)>) {
        let (loss_rate, extra_delay, dup_rate) = self.fault_params();
        for (from, to, message, _bytes) in outbox {
            self.route(from, to, message, loss_rate, extra_delay, dup_rate);
        }
    }

    /// Current simulation time in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Events pending in the timer wheel.
    pub fn pending_events(&self) -> usize {
        self.wheel.len()
    }

    /// The live nodes.
    pub fn nodes(&self) -> &NodeSlab<P::Node> {
        &self.nodes
    }

    /// Mutable node access.
    pub fn nodes_mut(&mut self) -> &mut NodeSlab<P::Node> {
        &mut self.nodes
    }

    /// The protocol instance.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Mutable protocol access.
    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.protocol
    }

    /// Network statistics.
    pub fn net(&self) -> &NetStats {
        &self.net
    }

    /// Engine RNG.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Messages lost in transit so far.
    pub fn lost_count(&self) -> u64 {
        self.lost
    }

    /// Invokes `f` with an execution context outside an event (used by
    /// drivers to trigger protocol actions deterministically).
    pub fn with_ctx<R>(
        &mut self,
        f: impl FnOnce(&mut P, &mut EventCtx<'_, P::Node, P::Message>) -> R,
    ) -> R {
        let mut outbox = Vec::new();
        let mut ctx = EventCtx {
            now: self.now,
            round: self.now / self.config.gossip_period,
            adversary: self.current_adversary(),
            nodes: &mut self.nodes,
            rng: &mut self.rng,
            net: &mut self.net,
            outbox: &mut outbox,
        };
        let result = f(&mut self.protocol, &mut ctx);
        self.flush(outbox);
        result
    }
}

impl<P> EventEngine<P>
where
    P: BatchAsyncProtocol + Sync,
    P::Node: Send,
    P::Message: Send,
{
    /// Runs until simulation time reaches `until` ticks, processing each
    /// tick as one parallel batch. See the module docs for the three-phase
    /// structure and the determinism argument. Results are bit-identical
    /// for every `config.threads` value, but batch runs are a *different*
    /// (equally valid) trajectory than [`EventEngine::run_until`] — the
    /// two drivers draw randomness differently.
    pub fn run_until_parallel(&mut self, until: u64) {
        let period = self.config.gossip_period;
        let threads = self.config.threads.max(1);
        let batch_base = derive_seed(self.config.seed, EVENT_PAR_STREAM);
        while let Some(tick) = self.wheel.next_tick() {
            if tick > until {
                break;
            }
            self.now = tick;
            self.roll_windows();
            self.advance_faults();
            let fault_round = tick / period;
            let adversary = self.current_adversary();
            let mut buckets = std::mem::take(&mut self.drain_scratch);
            self.wheel.drain_tick_into(tick, &mut buckets);

            // Phase 1 (sequential pre-pass): drop events for dead nodes,
            // suppress fault-duplicate redeliveries, and count deliveries
            // — all in canonical (shard, seq) order so counters and dedup
            // decisions are thread-count-invariant.
            {
                let nodes = &self.nodes;
                let dup_pending = &self.dup_pending;
                let dup_delivered = &mut self.dup_delivered;
                let dup_dropped = &mut self.dup_dropped;
                let delivered = &mut self.delivered;
                let telemetry = &mut self.telemetry;
                for bucket in &mut buckets {
                    bucket.retain(|(_, event)| match event {
                        Event::Timer(id) => nodes.contains(*id),
                        Event::Deliver { to, send_seq, .. } => {
                            if !nodes.contains(*to) {
                                return false;
                            }
                            if !dup_pending.is_empty()
                                && dup_pending.contains(send_seq)
                                && !dup_delivered.insert(*send_seq)
                            {
                                *dup_dropped += 1;
                                return false;
                            }
                            *delivered += 1;
                            if let Some(t) = telemetry.as_deref_mut() {
                                t.record_async_delivery();
                            }
                            true
                        }
                    });
                }
            }

            // Phase 2 (parallel): shards are slot-disjoint, so workers may
            // mutate their nodes through `RawSlots` without locks. Each
            // event gets a counter-based RNG stream; effects are recorded
            // as per-shard op lists instead of being applied.
            let shard_count = buckets.len();
            let mut results: Vec<ShardBatch<P::Message, P::Report>> = (0..shard_count)
                .map(|_| (Vec::new(), P::Report::default()))
                .collect();
            {
                let (view, raw) = self.nodes.batch_split();
                let protocol = &self.protocol;
                crate::executor::par_zip(
                    &mut buckets,
                    &mut results,
                    threads,
                    |_base, work, out| {
                        let mut sends = Vec::new();
                        for (bucket, (ops, report)) in work.iter_mut().zip(out.iter_mut()) {
                            while let Some((seq, event)) = bucket.pop_front() {
                                match event {
                                    Event::Timer(id) => {
                                        // SAFETY: this worker exclusively owns
                                        // every slot of its shards; the
                                        // pre-pass kept only live targets.
                                        if let Some(node) = unsafe { raw.get_mut(id) } {
                                            let mut ctx = BatchCtx {
                                                now: tick,
                                                round: fault_round,
                                                adversary,
                                                stamp: seq,
                                                rng: par_stream_rng(
                                                    batch_base,
                                                    tick,
                                                    id.slot() as u64,
                                                    seq,
                                                ),
                                                peers: view,
                                                sends: &mut sends,
                                            };
                                            protocol.par_on_timer(id, node, &mut ctx, report);
                                        }
                                        for (from, to, message, bytes) in sends.drain(..) {
                                            ops.push(MergeOp::Send {
                                                from,
                                                to,
                                                message,
                                                bytes,
                                            });
                                        }
                                        ops.push(MergeOp::Timer(id));
                                    }
                                    Event::Deliver {
                                        from, to, message, ..
                                    } => {
                                        // SAFETY: as above.
                                        if let Some(node) = unsafe { raw.get_mut(to) } {
                                            let mut ctx = BatchCtx {
                                                now: tick,
                                                round: fault_round,
                                                adversary,
                                                stamp: seq,
                                                rng: par_stream_rng(
                                                    batch_base,
                                                    tick,
                                                    to.slot() as u64,
                                                    seq,
                                                ),
                                                peers: view,
                                                sends: &mut sends,
                                            };
                                            protocol.par_on_message(
                                                to, node, from, message, &mut ctx, report,
                                            );
                                        }
                                        for (from, to, message, bytes) in sends.drain(..) {
                                            ops.push(MergeOp::Send {
                                                from,
                                                to,
                                                message,
                                                bytes,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    },
                );
            }

            // Phase 3 (sequential merge): apply ops in (shard, seq) order.
            // Fault fates draw from the engine RNG here, in canonical
            // order, so they are identical at any thread count.
            let (loss_rate, extra_delay, dup_rate) = self.fault_params();
            for (ops, report) in results {
                for op in ops {
                    match op {
                        MergeOp::Send {
                            from,
                            to,
                            message,
                            bytes,
                        } => {
                            self.net.charge_message(from, to, bytes);
                            self.route(from, to, message, loss_rate, extra_delay, dup_rate);
                        }
                        MergeOp::Timer(id) => {
                            self.schedule_timer(tick + period, id);
                        }
                    }
                }
                self.protocol.absorb_report(report);
            }
            self.drain_scratch = buckets;
        }
        self.now = self.now.max(until);
        self.roll_windows();
        self.advance_faults();
    }
}

impl<P: AsyncProtocol> std::fmt::Debug for EventEngine<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventEngine")
            .field("now", &self.now)
            .field("live_nodes", &self.nodes.len())
            .field("pending_events", &self.wheel.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Asynchronous push–pull averaging: the classic non-atomic variant.
    struct AsyncAveraging {
        next: f64,
    }

    #[derive(Clone)]
    enum Msg {
        Request(f64),
        Response(f64),
    }

    impl AsyncProtocol for AsyncAveraging {
        type Node = f64;
        type Message = Msg;

        fn make_node(&mut self, _rng: &mut StdRng) -> f64 {
            self.next += 1.0;
            self.next
        }

        fn on_timer(&mut self, id: NodeId, ctx: &mut EventCtx<'_, f64, Msg>) {
            let Some(partner) = ctx.random_neighbour(id) else {
                return;
            };
            let Some(v) = ctx.nodes.get(id).copied() else {
                return;
            };
            ctx.send(id, partner, Msg::Request(v), 8);
        }

        fn on_message(
            &mut self,
            id: NodeId,
            from: NodeId,
            message: Msg,
            ctx: &mut EventCtx<'_, f64, Msg>,
        ) {
            match message {
                Msg::Request(theirs) => {
                    let Some(mine) = ctx.nodes.get(id).copied() else {
                        return;
                    };
                    ctx.send(id, from, Msg::Response(mine), 8);
                    if let Some(v) = ctx.nodes.get_mut(id) {
                        *v = (mine + theirs) / 2.0;
                    }
                }
                Msg::Response(theirs) => {
                    if let Some(v) = ctx.nodes.get_mut(id) {
                        *v = (*v + theirs) / 2.0;
                    }
                }
            }
        }
    }

    impl BatchAsyncProtocol for AsyncAveraging {
        type Report = ();

        fn par_on_timer(
            &self,
            id: NodeId,
            node: &mut f64,
            ctx: &mut BatchCtx<'_, '_, Msg>,
            _report: &mut (),
        ) {
            let Some(partner) = ctx.random_neighbour(id) else {
                return;
            };
            ctx.send(id, partner, Msg::Request(*node), 8);
        }

        fn par_on_message(
            &self,
            id: NodeId,
            node: &mut f64,
            from: NodeId,
            message: Msg,
            ctx: &mut BatchCtx<'_, '_, Msg>,
            _report: &mut (),
        ) {
            match message {
                Msg::Request(theirs) => {
                    ctx.send(id, from, Msg::Response(*node), 8);
                    *node = (*node + theirs) / 2.0;
                }
                Msg::Response(theirs) => {
                    *node = (*node + theirs) / 2.0;
                }
            }
        }

        fn absorb_report(&mut self, _report: ()) {}
    }

    #[test]
    fn async_averaging_converges_near_the_mean() {
        let config = EventConfig::new(128, 5)
            .with_gossip_period(100)
            .with_latency(LatencyModel::Uniform { min: 5, max: 30 });
        let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
        engine.run_until(100 * 60);
        let expected = 129.0 / 2.0;
        // Non-atomic push-pull does not conserve mass exactly, but with
        // short latencies relative to the period the drift is small.
        let mean: f64 =
            engine.nodes().iter().map(|(_, v)| *v).sum::<f64>() / engine.nodes().len() as f64;
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} vs {expected}"
        );
        for (_, v) in engine.nodes().iter() {
            assert!((v - mean).abs() < 1.0, "value {v} not converged to {mean}");
        }
    }

    #[test]
    fn timers_fire_once_per_period() {
        struct TimerCounter {
            fires: u64,
        }
        impl AsyncProtocol for TimerCounter {
            type Node = ();
            type Message = ();
            fn make_node(&mut self, _rng: &mut StdRng) {}
            fn on_timer(&mut self, _id: NodeId, _ctx: &mut EventCtx<'_, (), ()>) {
                self.fires += 1;
            }
            fn on_message(&mut self, _: NodeId, _: NodeId, _: (), _: &mut EventCtx<'_, (), ()>) {}
        }
        let config = EventConfig::new(10, 6).with_gossip_period(100);
        let mut engine = EventEngine::new(config, TimerCounter { fires: 0 });
        engine.run_until(1000);
        // 10 nodes x ~10 periods (random phases make it 90..110).
        let fires = engine.protocol().fires;
        assert!((90..=110).contains(&fires), "fires = {fires}");
    }

    #[test]
    fn message_loss_is_applied_and_counted() {
        let config = EventConfig::new(64, 7)
            .with_gossip_period(50)
            .with_loss_rate(0.5);
        let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
        engine.run_until(50 * 40);
        let lost = engine.lost_count();
        let delivered = engine.delivered_count();
        let total = lost + delivered;
        let loss_frac = lost as f64 / total as f64;
        assert!((loss_frac - 0.5).abs() < 0.05, "loss fraction {loss_frac}");
        // Averaging still roughly works under 50% loss.
        let expected = 65.0 / 2.0;
        let mean: f64 =
            engine.nodes().iter().map(|(_, v)| *v).sum::<f64>() / engine.nodes().len() as f64;
        assert!((mean - expected).abs() / expected < 0.25, "mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let config = EventConfig::new(32, seed).with_gossip_period(80);
            let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
            engine.run_until(2000);
            engine.nodes().iter().map(|(_, v)| *v).collect::<Vec<f64>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn fixed_latency_model() {
        let mut rng = seeded_rng(1);
        assert_eq!(LatencyModel::Fixed(42).sample(&mut rng), 42);
        let l = LatencyModel::Uniform { min: 5, max: 5 }.sample(&mut rng);
        assert_eq!(l, 5);
        for _ in 0..100 {
            let l = LatencyModel::Uniform { min: 3, max: 9 }.sample(&mut rng);
            assert!((3..=9).contains(&l));
        }
    }

    #[test]
    fn uniform_latency_with_min_above_max_is_rejected() {
        let config = EventConfig::new(8, 1).with_latency(LatencyModel::Uniform { min: 9, max: 3 });
        assert!(config.validate().is_err());
        assert!(EventEngine::try_new(config, AsyncAveraging { next: 0.0 }).is_err());
        // Degenerate (min == max) stays legal.
        let config = EventConfig::new(8, 1).with_latency(LatencyModel::Uniform { min: 4, max: 4 });
        assert!(config.validate().is_ok());
    }

    #[test]
    fn fault_burst_loss_applies_only_inside_the_window() {
        // Lossless base config; a full-loss burst over rounds [2, 4) (ticks
        // 100..200 at a 50-tick period... gossip_period 50 -> rounds are
        // 50-tick windows).
        let config = EventConfig::new(32, 13).with_gossip_period(50);
        let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
        engine
            .set_fault_scenario(crate::faults::FaultScenario::new(1).with_burst_loss(2, 4, 1.0))
            .unwrap();
        engine.run_until(50 * 2 - 1);
        assert_eq!(engine.lost_count(), 0, "no loss before the burst");
        engine.run_until(50 * 4);
        let lost_in_burst = engine.lost_count();
        assert!(lost_in_burst > 0, "burst drops everything sent inside it");
        engine.run_until(50 * 8);
        let sent_after = engine.delivered_count();
        assert!(sent_after > 0, "loss stops when the burst ends");
    }

    #[test]
    fn fault_duplication_delivers_extra_copies() {
        let config = EventConfig::new(32, 14).with_gossip_period(50);
        let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
        engine
            .set_fault_scenario(crate::faults::FaultScenario::new(2).with_duplication(0, 100, 1.0))
            .unwrap();
        engine.run_until(50 * 10);
        assert!(engine.duplicated_count() > 0);
        // Every sent message got a twin, so deliveries far exceed charged
        // sends / 2... just check the twin count matches extra deliveries.
        assert!(
            engine.delivered_count() >= engine.duplicated_count(),
            "duplicates are delivered too"
        );
        // The sequential driver leaves duplicate suppression to protocols.
        assert_eq!(engine.dup_dropped_count(), 0);
    }

    #[test]
    fn fault_delay_postpones_delivery() {
        // Fixed 5-tick latency, +200-tick delay window over the whole run:
        // nothing sent in round 0 can arrive before tick 205.
        let config = EventConfig::new(16, 15)
            .with_gossip_period(100)
            .with_latency(LatencyModel::Fixed(5));
        let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
        engine
            .set_fault_scenario(crate::faults::FaultScenario::new(3).with_delay(0, 1, 200))
            .unwrap();
        engine.run_until(100);
        assert_eq!(engine.delivered_count(), 0, "deliveries pushed past t=205");
        engine.run_until(400);
        assert!(engine.delivered_count() > 0);
    }

    #[test]
    fn telemetry_counts_async_deliveries_and_losses() {
        let run = |attach: bool| {
            let config = EventConfig::new(32, 17)
                .with_gossip_period(50)
                .with_loss_rate(0.3);
            let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
            if attach {
                engine.attach_telemetry(SimTelemetry::new());
            }
            engine.run_until(50 * 20);
            engine.snapshot_telemetry();
            engine
        };
        let mut engine = run(true);
        let t = engine.detach_telemetry().expect("telemetry attached");
        let counter = |name| {
            let (_, v) = t
                .telemetry()
                .metrics
                .counters()
                .find(|(n, _)| *n == name)
                .unwrap();
            v
        };
        assert_eq!(counter("async_delivered"), engine.delivered_count());
        assert_eq!(counter("async_lost"), engine.lost_count());
        // One snapshot per elapsed gossip-period window (0..=19), plus the
        // explicit partial window 20 at the end.
        let snaps = t.telemetry().snapshots();
        assert_eq!(snaps.len(), 21);
        assert_eq!(snaps[0].round, 0);
        assert_eq!(snaps[20].round, 20);
        assert!(snaps.iter().all(|s| s.live_nodes == 32));
        // Window traffic is a per-window delta; the windows partition the
        // run, so the deltas sum back to the cumulative total.
        let windowed: u64 = snaps.iter().map(|s| s.round_bytes).sum();
        assert_eq!(windowed, engine.net().total_bytes());
        let windowed_msgs: u64 = snaps.iter().map(|s| s.round_msgs).sum();
        assert_eq!(windowed_msgs, engine.net().total_msgs());

        // Attaching telemetry must not perturb the simulation.
        let bare = run(false);
        let values = |e: &EventEngine<AsyncAveraging>| {
            e.nodes()
                .iter()
                .map(|(_, v)| v.to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(values(&engine), values(&bare));
        assert_eq!(engine.delivered_count(), bare.delivered_count());
    }

    #[test]
    fn network_bytes_are_charged_even_for_lost_messages() {
        let config = EventConfig::new(16, 11)
            .with_gossip_period(50)
            .with_loss_rate(1.0);
        let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
        engine.run_until(500);
        assert!(
            engine.net().total_bytes() > 0,
            "senders still pay for lost messages"
        );
        assert_eq!(engine.delivered_count(), 0);
    }

    #[test]
    fn parallel_batch_averaging_converges() {
        let config = EventConfig::new(128, 5)
            .with_gossip_period(100)
            .with_latency(LatencyModel::Uniform { min: 5, max: 30 })
            .with_threads(4);
        let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
        engine.run_until_parallel(100 * 60);
        let expected = 129.0 / 2.0;
        let mean: f64 =
            engine.nodes().iter().map(|(_, v)| *v).sum::<f64>() / engine.nodes().len() as f64;
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} vs {expected}"
        );
        for (_, v) in engine.nodes().iter() {
            assert!((v - mean).abs() < 1.0, "value {v} not converged to {mean}");
        }
    }

    /// The satellite-mandated bit-identity check: batch runs must agree
    /// exactly — node state, counters, and traffic — at 1, 2, and 4
    /// worker threads.
    #[test]
    fn parallel_batch_is_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            let config = EventConfig::new(96, 23)
                .with_gossip_period(60)
                .with_loss_rate(0.1)
                .with_threads(threads);
            let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
            engine.run_until_parallel(60 * 30);
            (
                engine
                    .nodes()
                    .iter()
                    .map(|(_, v)| v.to_bits())
                    .collect::<Vec<_>>(),
                engine.delivered_count(),
                engine.lost_count(),
                engine.net().total_bytes(),
                engine.net().total_msgs(),
            )
        };
        let base = run(1);
        assert_eq!(base, run(2), "threads=2 diverged from threads=1");
        assert_eq!(base, run(4), "threads=4 diverged from threads=1");
    }

    #[test]
    fn parallel_batch_suppresses_duplicate_copies_at_the_engine() {
        let config = EventConfig::new(32, 14)
            .with_gossip_period(50)
            .with_threads(2);
        let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
        engine
            .set_fault_scenario(crate::faults::FaultScenario::new(2).with_duplication(0, 100, 1.0))
            .unwrap();
        engine.run_until_parallel(50 * 10);
        assert!(engine.duplicated_count() > 0);
        assert!(
            engine.dup_dropped_count() > 0,
            "batch driver drops redundant twins"
        );
        assert!(engine.dup_dropped_count() <= engine.duplicated_count());
    }

    #[test]
    fn parallel_batch_emits_windowed_snapshots() {
        let config = EventConfig::new(32, 19)
            .with_gossip_period(50)
            .with_threads(2);
        let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
        engine.attach_telemetry(SimTelemetry::new());
        engine.run_until_parallel(50 * 10);
        let t = engine.detach_telemetry().expect("telemetry attached");
        let snaps = t.telemetry().snapshots();
        assert_eq!(snaps.len(), 10, "one snapshot per elapsed window");
        let windowed: u64 = snaps.iter().map(|s| s.round_bytes).sum();
        assert_eq!(windowed, engine.net().total_bytes());
    }

    /// The PR 2 fault matrix: burst loss, a bisecting partition, and a
    /// crash wave with delayed recovery, all overlapping.
    fn fault_matrix_scenario() -> crate::faults::FaultScenario {
        crate::faults::FaultScenario::new(99)
            .with_burst_loss(3, 8, 0.4)
            .with_partition(5, 12, crate::faults::PartitionKind::Bisect)
            .with_crash_recover(2, 9, 0.2)
    }

    fn faulted_engine(threads: usize) -> EventEngine<AsyncAveraging> {
        let config = EventConfig::new(10_000, 4242)
            .with_gossip_period(50)
            .with_latency(LatencyModel::Uniform { min: 5, max: 30 })
            .with_threads(threads);
        let mut engine = EventEngine::new(config, AsyncAveraging { next: 0.0 });
        engine.set_fault_scenario(fault_matrix_scenario()).unwrap();
        engine
    }

    fn faulted_fingerprint(engine: &EventEngine<AsyncAveraging>) -> (Vec<u64>, u64, u64, u64) {
        let mut bits: Vec<u64> = engine.nodes().iter().map(|(_, v)| v.to_bits()).collect();
        bits.push(engine.nodes().len() as u64);
        (
            bits,
            engine.delivered_count(),
            engine.lost_count(),
            engine.net().total_bytes(),
        )
    }

    /// Satellite check: replaying the fault matrix at 10^4 nodes through
    /// the batch driver produces exactly the fault trace of the sequential
    /// event path. Node trajectories legitimately differ (the drivers draw
    /// randomness differently); the injected faults must not.
    #[test]
    fn fault_trace_parity_between_sequential_and_batch_drivers() {
        let until = 50 * 16;
        let mut seq = faulted_engine(1);
        seq.run_until(until);
        let mut batch = faulted_engine(2);
        batch.run_until_parallel(until);

        let seq_trace = seq.fault_trace().expect("scenario attached").clone();
        let batch_trace = batch.fault_trace().expect("scenario attached").clone();
        assert_eq!(seq_trace, batch_trace, "fault traces diverged");
        assert!(seq_trace.total_crashed() > 0, "crash wave fired");
        assert_eq!(
            seq_trace.total_crashed(),
            seq_trace.total_recovered(),
            "every crashed node recovered"
        );
        assert!(
            seq_trace.records.iter().any(|r| r.partition_active),
            "partition window recorded"
        );
        assert!(
            seq_trace
                .records
                .iter()
                .any(|r| r.partition_active && r.partition_checksum != 0),
            "partition checksum recorded"
        );
        // Both drivers end with the full population back (crash wave fully
        // recovered), and the partition actually dropped traffic.
        assert_eq!(seq.nodes().len(), 10_000);
        assert_eq!(batch.nodes().len(), 10_000);
        assert!(seq.lost_count() > 0);
        assert!(batch.lost_count() > 0);
    }

    /// Satellite check: the batch driver under the full fault matrix is
    /// bit-identical (states, counters, trace) at 1, 2, and 4 threads.
    #[test]
    fn batch_faulted_run_is_bit_identical_across_thread_counts() {
        let until = 50 * 16;
        let run = |threads: usize| {
            let mut engine = faulted_engine(threads);
            engine.run_until_parallel(until);
            let trace = engine.fault_trace().expect("scenario attached").clone();
            (faulted_fingerprint(&engine), trace)
        };
        let base = run(1);
        assert_eq!(base, run(2), "threads=2 diverged from threads=1");
        assert_eq!(base, run(4), "threads=4 diverged from threads=1");
    }
}

#[cfg(test)]
mod store_tests {
    use super::*;

    struct Ping;
    impl AsyncProtocol for Ping {
        type Node = ();
        type Message = u64;
        fn make_node(&mut self, _rng: &mut StdRng) {}
        fn on_timer(&mut self, id: NodeId, ctx: &mut EventCtx<'_, (), u64>) {
            if let Some(p) = ctx.random_neighbour(id) {
                ctx.send(id, p, ctx.now, 8);
            }
        }
        fn on_message(&mut self, _: NodeId, _: NodeId, _: u64, _: &mut EventCtx<'_, (), u64>) {}
    }

    #[test]
    fn event_store_is_bounded_by_pending_events() {
        let config = EventConfig::new(64, 21).with_gossip_period(10);
        let mut engine = EventEngine::new(config, Ping);
        // Long run: thousands of events scheduled and consumed.
        engine.run_until(10 * 2_000);
        // The wheel must hold only the *pending* events (one timer per
        // node plus in-flight messages), not the total ever scheduled
        // (~192k here).
        let pending = engine.pending_events();
        assert!(
            pending < 64 * 20,
            "event store grew unboundedly: {pending} pending"
        );
    }
}
