//! Network-traffic accounting and streaming statistics.
//!
//! Section VII-I of the paper evaluates Adam2's communication cost: with
//! λ = 50 interpolation points a gossip message is ≈800 B, each peer sends
//! about 40 kB per 25-round instance, and three instances cost ≈120 kB per
//! node *independent of system size*. [`NetStats`] records exactly the
//! quantities needed to reproduce that table: per-node and global message
//! and byte counters, with per-round deltas.

use crate::node::NodeId;

/// Per-node traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeTraffic {
    /// Bytes sent by this node.
    pub sent_bytes: u64,
    /// Bytes received by this node.
    pub recv_bytes: u64,
    /// Messages sent by this node.
    pub sent_msgs: u64,
    /// Messages received by this node.
    pub recv_msgs: u64,
}

impl NodeTraffic {
    /// Sum of sent and received bytes.
    pub fn total_bytes(&self) -> u64 {
        self.sent_bytes + self.recv_bytes
    }

    /// Sum of sent and received messages.
    pub fn total_msgs(&self) -> u64 {
        self.sent_msgs + self.recv_msgs
    }
}

/// Global and per-node network statistics.
///
/// The engine resizes the per-slot table as nodes are inserted; counters of
/// a recycled slot are reset so they always describe the *current* occupant.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    per_slot: Vec<NodeTraffic>,
    total_bytes: u64,
    total_msgs: u64,
    round_bytes: u64,
    round_msgs: u64,
}

impl NetStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the per-slot table covers `slots` entries.
    pub(crate) fn ensure_slots(&mut self, slots: usize) {
        if self.per_slot.len() < slots {
            self.per_slot.resize(slots, NodeTraffic::default());
        }
    }

    /// Resets the counters of `slot` (called when a slot is reused by a
    /// fresh node).
    pub(crate) fn reset_slot(&mut self, slot: usize) {
        self.ensure_slots(slot + 1);
        self.per_slot[slot] = NodeTraffic::default();
    }

    /// Marks the beginning of a round, resetting the per-round deltas.
    pub(crate) fn begin_round(&mut self) {
        self.round_bytes = 0;
        self.round_msgs = 0;
    }

    /// Records one symmetric push–pull exchange: `from` sends a request of
    /// `request_bytes` to `to`, which replies with `response_bytes`.
    ///
    /// Charges two messages (one in each direction), as in the paper's cost
    /// model.
    pub fn charge_exchange(
        &mut self,
        from: NodeId,
        to: NodeId,
        request_bytes: usize,
        response_bytes: usize,
    ) {
        self.charge_message(from, to, request_bytes);
        self.charge_message(to, from, response_bytes);
    }

    /// Records a single one-way message of `bytes` from `from` to `to`.
    pub fn charge_message(&mut self, from: NodeId, to: NodeId, bytes: usize) {
        let bytes = bytes as u64;
        self.ensure_slots(from.slot().max(to.slot()) + 1);
        self.per_slot[from.slot()].sent_bytes += bytes;
        self.per_slot[from.slot()].sent_msgs += 1;
        self.per_slot[to.slot()].recv_bytes += bytes;
        self.per_slot[to.slot()].recv_msgs += 1;
        self.total_bytes += bytes;
        self.total_msgs += 1;
        self.round_bytes += bytes;
        self.round_msgs += 1;
    }

    /// Traffic counters for a node.
    pub fn node(&self, id: NodeId) -> NodeTraffic {
        self.per_slot.get(id.slot()).copied().unwrap_or_default()
    }

    /// Total bytes carried by the network so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total messages carried by the network so far.
    pub fn total_msgs(&self) -> u64 {
        self.total_msgs
    }

    /// Bytes carried during the current round so far.
    pub fn round_bytes(&self) -> u64 {
        self.round_bytes
    }

    /// Messages carried during the current round so far.
    pub fn round_msgs(&self) -> u64 {
        self.round_msgs
    }

    /// Summary (count / mean / min / max) of *sent bytes* across the given
    /// nodes — the paper's "each node sends on average 120 kB" metric.
    pub fn sent_bytes_summary<I>(&self, ids: I) -> Accumulator
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut acc = Accumulator::new();
        for id in ids {
            acc.add(self.node(id).sent_bytes as f64);
        }
        acc
    }

    /// Clears all counters (used between experiment phases).
    pub fn reset(&mut self) {
        self.per_slot
            .iter_mut()
            .for_each(|t| *t = NodeTraffic::default());
        self.total_bytes = 0;
        self.total_msgs = 0;
        self.round_bytes = 0;
        self.round_msgs = 0;
    }

    /// Folds a per-thread [`NetShard`] into these statistics, crediting its
    /// traffic to the current round.
    pub fn merge_shard(&mut self, shard: &NetShard) {
        self.ensure_slots(shard.per_slot.len());
        for (mine, theirs) in self.per_slot.iter_mut().zip(&shard.per_slot) {
            mine.sent_bytes += theirs.sent_bytes;
            mine.recv_bytes += theirs.recv_bytes;
            mine.sent_msgs += theirs.sent_msgs;
            mine.recv_msgs += theirs.recv_msgs;
        }
        self.total_bytes += shard.total_bytes;
        self.total_msgs += shard.total_msgs;
        self.round_bytes += shard.total_bytes;
        self.round_msgs += shard.total_msgs;
    }
}

/// A thread-local slice of [`NetStats`], accumulated during the parallel
/// apply phase and folded back with [`NetStats::merge_shard`] at round end.
///
/// Every field is a plain sum, so shards merge commutatively: the totals
/// are identical no matter how the work was distributed over threads — the
/// property the parallel engine's determinism guarantee rests on.
#[derive(Debug, Clone, Default)]
pub struct NetShard {
    per_slot: Vec<NodeTraffic>,
    total_bytes: u64,
    total_msgs: u64,
}

impl NetShard {
    /// Creates a shard covering `slots` node slots.
    pub fn with_slots(slots: usize) -> Self {
        Self {
            per_slot: vec![NodeTraffic::default(); slots],
            total_bytes: 0,
            total_msgs: 0,
        }
    }

    /// Records a single one-way message of `bytes` from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if either slot is outside the range this shard was sized for.
    pub fn charge_message(&mut self, from: NodeId, to: NodeId, bytes: usize) {
        let bytes = bytes as u64;
        self.per_slot[from.slot()].sent_bytes += bytes;
        self.per_slot[from.slot()].sent_msgs += 1;
        self.per_slot[to.slot()].recv_bytes += bytes;
        self.per_slot[to.slot()].recv_msgs += 1;
        self.total_bytes += bytes;
        self.total_msgs += 1;
    }

    /// Records one symmetric push–pull exchange (two messages), mirroring
    /// [`NetStats::charge_exchange`].
    pub fn charge_exchange(
        &mut self,
        from: NodeId,
        to: NodeId,
        request_bytes: usize,
        response_bytes: usize,
    ) {
        self.charge_message(from, to, request_bytes);
        self.charge_message(to, from, response_bytes);
    }
}

/// Tracks conserved quantities ("mass") across rounds and reports drift.
///
/// Push–pull averaging only converges to the correct result if the global
/// sum of estimates is conserved; an interrupted exchange (request applied,
/// response lost) silently destroys mass. The auditor captures a baseline
/// the first time each component is observed and reports the signed drift
/// of every later observation, so tests and benches can assert the
/// invariant `Σ xᵢ = const` (or the fraction-mass defect for protocols
/// with churn) to floating-point tolerance.
///
/// # Examples
///
/// ```
/// let mut auditor = adam2_sim::MassAuditor::new();
/// auditor.observe(0, 10.0); // baseline
/// auditor.observe(0, 10.0 + 1e-12);
/// assert!(auditor.max_drift() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MassAuditor {
    components: std::collections::HashMap<u64, MassComponent>,
}

#[derive(Debug, Clone, Copy)]
struct MassComponent {
    baseline: f64,
    last: f64,
    max_abs_drift: f64,
    /// Most negative signed drift ever observed (≤ 0).
    min_drift: f64,
    /// Most positive signed drift ever observed (≥ 0).
    max_drift: f64,
    observations: u64,
}

impl MassAuditor {
    /// Creates an auditor with no observed components.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes the current value of component `key`. The first
    /// observation becomes the component's baseline; later ones update the
    /// drift statistics.
    pub fn observe(&mut self, key: u64, value: f64) {
        let entry = self.components.entry(key).or_insert(MassComponent {
            baseline: value,
            last: value,
            max_abs_drift: 0.0,
            min_drift: 0.0,
            max_drift: 0.0,
            observations: 0,
        });
        entry.observations += 1;
        entry.last = value;
        let signed = value - entry.baseline;
        entry.min_drift = entry.min_drift.min(signed);
        entry.max_drift = entry.max_drift.max(signed);
        let drift = signed.abs();
        if drift > entry.max_abs_drift {
            entry.max_abs_drift = drift;
        }
    }

    /// Largest absolute drift from baseline seen on any component (0 when
    /// nothing was observed).
    pub fn max_drift(&self) -> f64 {
        self.components
            .values()
            .map(|c| c.max_abs_drift)
            .fold(0.0, f64::max)
    }

    /// Signed drift of component `key`'s latest observation from its
    /// baseline, if the component was observed.
    pub fn drift_of(&self, key: u64) -> Option<f64> {
        self.components.get(&key).map(|c| c.last - c.baseline)
    }

    /// Largest absolute drift ever seen on component `key`.
    pub fn max_drift_of(&self, key: u64) -> Option<f64> {
        self.components.get(&key).map(|c| c.max_abs_drift)
    }

    /// The *signed* drift of component `key`'s worst excursion — the
    /// observation farthest from baseline in either direction. Unlike
    /// [`drift_of`](Self::drift_of) this does not forgive a violation
    /// that later returns to baseline (e.g. an instance completing and
    /// leaving the accounting scope): the excursion already corrupted
    /// every estimate derived while it was live.
    pub fn worst_drift_of(&self, key: u64) -> Option<f64> {
        self.components.get(&key).map(|c| {
            if -c.min_drift > c.max_drift {
                c.min_drift
            } else {
                c.max_drift
            }
        })
    }

    /// Classifies component `key`'s *worst excursion* against `tolerance`
    /// — the transient-intolerant counterpart of
    /// [`violation_of`](Self::violation_of).
    pub fn worst_violation_of(&self, key: u64, tolerance: f64) -> Option<MassViolation> {
        let drift = self.worst_drift_of(key)?;
        if drift > tolerance {
            Some(MassViolation::Inflation)
        } else if drift < -tolerance {
            Some(MassViolation::Leakage)
        } else {
            None
        }
    }

    /// Number of observed components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Forgets everything (e.g. between experiment phases).
    pub fn reset(&mut self) {
        self.components.clear();
    }

    /// Classifies component `key`'s latest observation against its
    /// baseline: `None` while the signed drift stays within `tolerance`,
    /// otherwise which *direction* the conservation broke in. Weight
    /// inflation (a Byzantine node claiming aggregation weight it was
    /// never assigned) and leakage (an interrupted exchange destroying
    /// mass) are different attacks with different defenses, so they are
    /// reported as distinct kinds.
    pub fn violation_of(&self, key: u64, tolerance: f64) -> Option<MassViolation> {
        let drift = self.drift_of(key)?;
        if drift > tolerance {
            Some(MassViolation::Inflation)
        } else if drift < -tolerance {
            Some(MassViolation::Leakage)
        } else {
            None
        }
    }

    /// Every component currently in violation, as `(key, kind, signed
    /// drift)` sorted by key.
    pub fn violations(&self, tolerance: f64) -> Vec<(u64, MassViolation, f64)> {
        let mut out: Vec<(u64, MassViolation, f64)> = self
            .components
            .keys()
            .filter_map(|&key| {
                let kind = self.violation_of(key, tolerance)?;
                Some((key, kind, self.drift_of(key).expect("component observed")))
            })
            .collect();
        out.sort_by_key(|&(key, _, _)| key);
        out
    }
}

/// The direction a conservation invariant broke in, as classified by
/// [`MassAuditor::violation_of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MassViolation {
    /// The sum rose above its baseline: mass was created, e.g. a Byzantine
    /// node inflating its aggregation weight or a double-absorbed message.
    Inflation,
    /// The sum fell below its baseline: mass was destroyed, e.g. a
    /// response lost after the request side already merged.
    Leakage,
}

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// let mut acc = adam2_sim::Accumulator::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     acc.add(v);
/// }
/// assert_eq!(acc.count(), 4);
/// assert!((acc.mean() - 2.5).abs() < 1e-12);
/// assert_eq!(acc.max(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Accumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSlab;

    #[test]
    fn exchange_charges_both_directions() {
        let mut slab = NodeSlab::new();
        let a = slab.insert(());
        let b = slab.insert(());
        let mut net = NetStats::new();
        net.begin_round();
        net.charge_exchange(a, b, 100, 50);
        assert_eq!(net.total_msgs(), 2);
        assert_eq!(net.total_bytes(), 150);
        assert_eq!(net.round_bytes(), 150);
        let ta = net.node(a);
        let tb = net.node(b);
        assert_eq!(ta.sent_bytes, 100);
        assert_eq!(ta.recv_bytes, 50);
        assert_eq!(tb.sent_bytes, 50);
        assert_eq!(tb.recv_bytes, 100);
        assert_eq!(ta.total_msgs(), 2);
    }

    #[test]
    fn round_deltas_reset() {
        let mut slab = NodeSlab::new();
        let a = slab.insert(());
        let b = slab.insert(());
        let mut net = NetStats::new();
        net.begin_round();
        net.charge_message(a, b, 10);
        assert_eq!(net.round_bytes(), 10);
        net.begin_round();
        assert_eq!(net.round_bytes(), 0);
        assert_eq!(net.total_bytes(), 10);
    }

    #[test]
    fn slot_reset_clears_old_traffic() {
        let mut slab = NodeSlab::new();
        let a = slab.insert(());
        let b = slab.insert(());
        let mut net = NetStats::new();
        net.charge_message(a, b, 10);
        net.reset_slot(a.slot());
        assert_eq!(net.node(a).sent_bytes, 0);
        assert_eq!(net.total_bytes(), 10, "global counters unaffected");
    }

    #[test]
    fn shard_merge_matches_direct_charging() {
        let mut slab = NodeSlab::new();
        let a = slab.insert(());
        let b = slab.insert(());
        let c = slab.insert(());

        let mut direct = NetStats::new();
        direct.ensure_slots(slab.slot_count());
        direct.begin_round();
        direct.charge_exchange(a, b, 100, 50);
        direct.charge_message(c, a, 30);

        // Same traffic split across two shards, merged in either order.
        let mut sharded = NetStats::new();
        sharded.ensure_slots(slab.slot_count());
        sharded.begin_round();
        let mut s1 = NetShard::with_slots(slab.slot_count());
        let mut s2 = NetShard::with_slots(slab.slot_count());
        s1.charge_exchange(a, b, 100, 50);
        s2.charge_message(c, a, 30);
        sharded.merge_shard(&s2);
        sharded.merge_shard(&s1);

        assert_eq!(sharded.total_bytes(), direct.total_bytes());
        assert_eq!(sharded.total_msgs(), direct.total_msgs());
        assert_eq!(sharded.round_bytes(), direct.round_bytes());
        assert_eq!(sharded.round_msgs(), direct.round_msgs());
        for id in [a, b, c] {
            assert_eq!(sharded.node(id), direct.node(id));
        }
    }

    #[test]
    fn accumulator_mean_and_variance() {
        let mut acc = Accumulator::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            acc.add(v);
        }
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        assert!((acc.variance() - 4.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
    }

    #[test]
    fn accumulator_merge_matches_sequential() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Accumulator::new();
        values.iter().for_each(|v| all.add(*v));
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        values[..37].iter().for_each(|v| left.add(*v));
        values[37..].iter().for_each(|v| right.add(*v));
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_accumulator_is_safe() {
        let acc = Accumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
    }

    #[test]
    fn mass_auditor_empty_round_reports_zero_drift() {
        // A round in which no instance has any participant (e.g. settle
        // rounds after completion) produces no observations: the invariant
        // check `max_drift() <= tol` must hold vacuously, not panic or
        // return NaN.
        let auditor = MassAuditor::new();
        assert_eq!(auditor.max_drift(), 0.0);
        assert_eq!(auditor.component_count(), 0);
        assert_eq!(auditor.drift_of(0), None);
        assert_eq!(auditor.max_drift_of(0), None);
    }

    #[test]
    fn mass_auditor_single_node_instance_is_baseline_only() {
        // A single-node instance never gossips, so each round observes the
        // same (weight, fraction) pair: the first observation sets the
        // baseline and all drift statistics stay exactly zero.
        let mut auditor = MassAuditor::new();
        for _ in 0..5 {
            auditor.observe(42, 1.0);
        }
        assert_eq!(auditor.drift_of(42), Some(0.0));
        assert_eq!(auditor.max_drift_of(42), Some(0.0));
        assert_eq!(auditor.max_drift(), 0.0);
        assert_eq!(auditor.component_count(), 1);
    }

    #[test]
    fn mass_auditor_post_abort_rollback_round_keeps_peak_drift() {
        // An aborted exchange rolls state back before the next round, so
        // the *latest* drift returns to the baseline — but the auditor must
        // remember the mid-abort excursion in `max_drift_of` so the
        // invariant check still flags transiently destroyed mass.
        let mut auditor = MassAuditor::new();
        auditor.observe(3, 50.0); // baseline
        auditor.observe(3, 47.5); // abort destroyed mass mid-round
        auditor.observe(3, 50.0); // rollback round restored it
        assert_eq!(auditor.drift_of(3), Some(0.0), "rollback restores mass");
        assert_eq!(auditor.max_drift_of(3), Some(2.5), "excursion remembered");
        assert_eq!(auditor.max_drift(), 2.5);
    }

    #[test]
    fn mass_auditor_tracks_drift_per_component() {
        let mut auditor = MassAuditor::new();
        auditor.observe(0, 100.0);
        auditor.observe(1, 1.0);
        auditor.observe(0, 100.0);
        assert_eq!(auditor.max_drift(), 0.0);
        auditor.observe(0, 99.5);
        auditor.observe(0, 100.25);
        assert_eq!(auditor.drift_of(0), Some(0.25));
        assert_eq!(auditor.max_drift_of(0), Some(0.5));
        assert_eq!(auditor.drift_of(1), Some(0.0));
        assert_eq!(auditor.max_drift(), 0.5);
        assert_eq!(auditor.component_count(), 2);
        assert_eq!(auditor.drift_of(7), None);
        auditor.reset();
        assert_eq!(auditor.component_count(), 0);
        assert_eq!(auditor.max_drift(), 0.0);
    }

    #[test]
    fn mass_auditor_flags_weight_inflation_as_inflation() {
        // A Byzantine node claiming weight it was never assigned pushes the
        // global sum *above* baseline — distinct from leakage, which the
        // repair layer (not the robust merge) defends against.
        let mut auditor = MassAuditor::new();
        auditor.observe(0, 1.0); // Σw baseline of one instance
        auditor.observe(0, 5.0); // adversary set w = 5 somewhere
        assert_eq!(
            auditor.violation_of(0, 1e-9),
            Some(MassViolation::Inflation)
        );
        assert_eq!(auditor.drift_of(0), Some(4.0));
    }

    #[test]
    fn mass_auditor_flags_destroyed_mass_as_leakage() {
        let mut auditor = MassAuditor::new();
        auditor.observe(0, 1.0);
        auditor.observe(0, 0.75); // response lost after request applied
        assert_eq!(auditor.violation_of(0, 1e-9), Some(MassViolation::Leakage));
        assert_eq!(auditor.drift_of(0), Some(-0.25));
    }

    #[test]
    fn mass_auditor_worst_drift_remembers_transient_excursions() {
        // An instance that completes drops out of the accounting scope,
        // so the *last* observation returns to baseline — but the leak
        // while it was live corrupted every estimate derived from it.
        let mut auditor = MassAuditor::new();
        auditor.observe(0, 0.0);
        auditor.observe(0, -0.04); // leak while the instance runs
        auditor.observe(0, 0.0); // instance due: defect reads 0 again
        assert_eq!(auditor.drift_of(0), Some(0.0));
        assert_eq!(auditor.violation_of(0, 1e-9), None, "last-value forgives");
        assert_eq!(auditor.worst_drift_of(0), Some(-0.04));
        assert_eq!(
            auditor.worst_violation_of(0, 1e-9),
            Some(MassViolation::Leakage)
        );
        // The positive direction wins when it is the larger excursion.
        auditor.observe(0, 0.1);
        auditor.observe(0, 0.0);
        assert_eq!(auditor.worst_drift_of(0), Some(0.1));
        assert_eq!(
            auditor.worst_violation_of(0, 1e-9),
            Some(MassViolation::Inflation)
        );
        assert_eq!(auditor.worst_violation_of(0, 1.0), None, "tolerance");
        assert_eq!(auditor.worst_drift_of(5), None, "unknown component");
    }

    #[test]
    fn mass_auditor_violations_respect_tolerance_and_sort_by_key() {
        let mut auditor = MassAuditor::new();
        auditor.observe(2, 1.0);
        auditor.observe(2, 1.0 + 5e-13); // float noise, inside tolerance
        auditor.observe(9, 1.0);
        auditor.observe(9, 0.5);
        auditor.observe(4, 1.0);
        auditor.observe(4, 2.0);
        assert_eq!(auditor.violation_of(2, 1e-12), None);
        assert_eq!(auditor.violation_of(77, 1e-12), None, "unknown component");
        assert_eq!(
            auditor.violations(1e-12),
            vec![
                (4, MassViolation::Inflation, 1.0),
                (9, MassViolation::Leakage, -0.5),
            ]
        );
    }
}
