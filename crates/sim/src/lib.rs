//! A cycle-driven peer-to-peer simulator, substituting for PeerSim.
//!
//! The Adam2 paper evaluates its protocol in PeerSim's cycle-driven mode:
//! time advances in synchronous *rounds*; in each round every node initiates
//! one push–pull gossip exchange with a randomly chosen neighbour; exchanges
//! are atomic (request and response are delivered within the round). This
//! crate reproduces exactly that model and adds:
//!
//! * a generational node slab so membership *churn* can recycle node slots
//!   without dangling references ([`NodeSlab`], [`NodeId`]),
//! * a random overlay with either an idealised peer-sampling *oracle* or a
//!   Cyclon-style view-shuffling service ([`Overlay`]),
//! * churn models — per-round uniform replacement (the paper's model) and
//!   session-length-based replacement ([`ChurnModel`]),
//! * network accounting of every message and byte ([`NetStats`]).
//!
//! Protocols implement the [`Protocol`] trait and are driven by an
//! [`Engine`].
//!
//! # Examples
//!
//! A protocol that averages a value across all nodes (the classic gossip
//! mean):
//!
//! ```
//! use adam2_sim::{Ctx, Engine, EngineConfig, NodeId, Protocol};
//!
//! struct Averaging { next: f64 }
//!
//! impl Protocol for Averaging {
//!     type Node = f64;
//!
//!     fn make_node(&mut self, _rng: &mut rand::rngs::StdRng) -> f64 {
//!         self.next += 1.0;
//!         self.next
//!     }
//!
//!     fn on_round(&mut self, id: NodeId, ctx: &mut Ctx<'_, f64>) {
//!         let Some(partner) = ctx.random_neighbour(id) else { return };
//!         let Some((a, b)) = ctx.nodes.pair_mut(id, partner) else { return };
//!         let mean = (*a + *b) / 2.0;
//!         *a = mean;
//!         *b = mean;
//!         ctx.net.charge_exchange(id, partner, 8, 8);
//!     }
//! }
//!
//! let mut engine = Engine::new(EngineConfig::new(64, 1), Averaging { next: 0.0 });
//! engine.run_rounds(30);
//! let avg = 65.0 / 2.0; // mean of 1..=64
//! for (_, v) in engine.nodes().iter() {
//!     assert!((v - avg).abs() < 1e-6);
//! }
//! ```

mod churn;
mod engine;
mod event;
mod executor;
mod faults;
mod node;
mod overlay;
pub mod peersampling;
mod rng;
mod scenario_json;
mod stats;
mod telemetry;
mod wheel;

pub use wheel::TimerWheel;

pub use churn::ChurnModel;
pub use engine::{
    Ctx, Engine, EngineConfig, ExchangeFate, ExchangeOutcome, ExchangeRepair, ExchangeTraffic,
    ParLocal, PlannedExchange, Protocol, SimConfigError,
};
pub use event::{
    AsyncProtocol, BatchAsyncProtocol, BatchCtx, EventConfig, EventCtx, EventEngine, LatencyModel,
};
pub use faults::{
    ActiveAdversary, AdversaryModel, DriftModel, DriftOp, FaultEvent, FaultScenario, FaultTrace,
    PartitionKind, PlannedAttack, RoundFaults,
};
pub use node::{NodeId, NodeSlab};
pub use overlay::{Overlay, OverlayConfig, OverlayKind};
pub use peersampling::{PeerSamplingPolicy, PeerSelection, PsView, ViewEntry};
pub use rng::{derive_seed, par_stream_rng, seeded_rng};
pub use stats::{Accumulator, MassAuditor, MassViolation, NetShard, NetStats, NodeTraffic};
pub use telemetry::{SimTelemetry, TelemetryHandle, TelemetryShard};

// Re-exported so downstream crates (core, bench) can use telemetry types
// without their own `adam2-telemetry` dependency.
pub use adam2_telemetry::{
    fnv1a, git_revision, json_f64, Event as TelemetryEvent, EventKind as TelemetryEventKind,
    Histogram, RoundSnapshot, RunManifest, Telemetry, MANIFEST_SCHEMA_VERSION,
};
