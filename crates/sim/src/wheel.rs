//! Sharded hierarchical timer wheel for the event-driven engine.
//!
//! The event engine used to keep its future events in one global
//! `BinaryHeap`, paying O(log n) per push/pop with cache-hostile sift
//! paths once millions of events are in flight. [`TimerWheel`] replaces it
//! with the classic two-level design: a ring of per-tick buckets covering
//! a sliding `horizon` window (O(1) push/pop), backed by a `BTreeMap`
//! overflow level for events scheduled beyond the window (rare: only
//! fault-injected delays outrun a horizon sized to the gossip period plus
//! the maximum latency).
//!
//! Buckets are additionally *sharded by destination slot range*: slot `s`
//! lands in shard `(s / SHARD_RANGE) % shards`. Within one tick the shards
//! partition events into slot-disjoint groups, which is exactly the unit
//! of work the parallel batch executor hands to its workers — draining a
//! tick per shard needs no regrouping pass.
//!
//! # Ordering
//!
//! Every push is stamped with a globally monotonic sequence number, and
//! [`TimerWheel::pop_at_or_before`] merges the shard buckets of the
//! current tick by that stamp. The drain order is therefore exactly
//! `(tick, seq)` — bit-identical to the `BinaryHeap<Reverse<(at, seq)>>`
//! it replaces (asserted by the equivalence test below). Within a bucket
//! pushes arrive in increasing `seq` order because the engine only ever
//! schedules into the future while time advances monotonically, so no
//! sorting is ever needed.

use std::collections::{BTreeMap, VecDeque};

/// Number of contiguous node slots mapped to the same shard. Coarse
/// ranges keep each shard's bucket cache-local for slot-ordered state.
const SHARD_RANGE: u32 = 1024;

/// One shard: a ring of per-tick buckets plus the beyond-horizon overflow.
/// Buckets are deques so the sequential path pops the front in O(1) while
/// pushes append at the back in seq order.
#[derive(Debug)]
struct Shard<T> {
    /// `ring[tick % horizon]` holds the events of exactly one tick in the
    /// window `[cursor, cursor + horizon)`, in push (= seq) order.
    ring: Vec<VecDeque<(u64, T)>>,
    /// Events at ticks `>= cursor + horizon`, spilled into the ring as the
    /// cursor reaches them.
    overflow: BTreeMap<u64, Vec<(u64, T)>>,
}

impl<T> Shard<T> {
    fn new(horizon: u64) -> Self {
        Self {
            ring: (0..horizon).map(|_| VecDeque::new()).collect(),
            overflow: BTreeMap::new(),
        }
    }
}

/// A sharded two-level timer wheel; see the module docs.
#[derive(Debug)]
pub struct TimerWheel<T> {
    shards: Vec<Shard<T>>,
    /// Ring size in ticks (power of two).
    horizon: u64,
    /// Current tick: no event earlier than this remains.
    cursor: u64,
    /// Globally monotonic push stamp.
    seq: u64,
    /// Pending events across all shards and levels.
    len: usize,
}

impl<T> TimerWheel<T> {
    /// Creates a wheel with at least `horizon_hint` ring ticks and
    /// `shards` destination-slot shards.
    pub fn new(horizon_hint: u64, shards: usize) -> Self {
        let horizon = horizon_hint.max(16).next_power_of_two();
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Shard::new(horizon)).collect(),
            horizon,
            cursor: 0,
            seq: 0,
            len: 0,
        }
    }

    /// The shard a destination slot maps to.
    pub fn shard_of(&self, slot: u32) -> usize {
        ((slot / SHARD_RANGE) as usize) % self.shards.len()
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `item` for destination slot `slot` at tick `at`,
    /// returning its sequence stamp. Scheduling before the cursor clamps
    /// to the cursor tick (the engine never does; the clamp keeps the
    /// wheel total even under misuse).
    pub fn push(&mut self, at: u64, slot: u32, item: T) -> u64 {
        let at = at.max(self.cursor);
        self.seq += 1;
        let seq = self.seq;
        let shard_idx = self.shard_of(slot);
        let shard = &mut self.shards[shard_idx];
        if at < self.cursor + self.horizon {
            shard.ring[(at % self.horizon) as usize].push_back((seq, item));
        } else {
            shard.overflow.entry(at).or_default().push((seq, item));
        }
        self.len += 1;
        seq
    }

    /// The earliest pending tick, or `None` if the wheel is empty. Does
    /// not advance the cursor.
    pub fn next_tick(&self) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        let mut best: Option<u64> = None;
        for shard in &self.shards {
            if let Some((&t, _)) = shard.overflow.first_key_value() {
                best = Some(best.map_or(t, |b| b.min(t)));
            }
        }
        // Scan the ring window; stop early once a candidate beats the
        // remaining window.
        for t in self.cursor..self.cursor + self.horizon {
            if best.is_some_and(|b| b <= t) {
                break;
            }
            let idx = (t % self.horizon) as usize;
            if self.shards.iter().any(|s| !s.ring[idx].is_empty()) {
                return Some(t);
            }
        }
        best
    }

    /// Pops the globally next `(tick, seq, item)` if its tick is `<=
    /// until`; otherwise leaves the wheel untouched and returns `None`.
    pub fn pop_at_or_before(&mut self, until: u64) -> Option<(u64, u64, T)> {
        let tick = self.next_tick()?;
        if tick > until {
            return None;
        }
        self.advance_to(tick);
        // K-way merge of the shard buckets at `tick` by seq stamp: each
        // bucket is seq-sorted, so comparing heads suffices.
        let idx = (tick % self.horizon) as usize;
        let mut best: Option<(u64, usize)> = None;
        for (s, shard) in self.shards.iter().enumerate() {
            if let Some(&(seq, _)) = shard.ring[idx].front() {
                if best.is_none_or(|(b, _)| seq < b) {
                    best = Some((seq, s));
                }
            }
        }
        let (_, s) = best.expect("next_tick found a non-empty bucket");
        let (seq, item) = self.shards[s].ring[idx]
            .pop_front()
            .expect("head bucket non-empty");
        self.len -= 1;
        Some((tick, seq, item))
    }

    /// Advances the cursor to `tick`, spilling due overflow entries into
    /// the ring.
    ///
    /// # Panics
    ///
    /// Panics (debug) if undrained events exist before `tick`.
    pub fn advance_to(&mut self, tick: u64) {
        if tick <= self.cursor {
            return;
        }
        debug_assert!(
            self.next_tick().is_none_or(|t| t >= tick),
            "advancing past pending events"
        );
        self.cursor = tick;
        let window_end = self.cursor + self.horizon;
        for shard in &mut self.shards {
            // Spill every overflow tick now inside the window. Overflow
            // stamps predate any ring stamp for the same tick (the cursor
            // is monotone), so they splice in *front* to keep seq order.
            while let Some((&t, _)) = shard.overflow.first_key_value() {
                if t >= window_end {
                    break;
                }
                let spilled = shard.overflow.remove(&t).expect("first key exists");
                let bucket = &mut shard.ring[(t % self.horizon) as usize];
                for entry in spilled.into_iter().rev() {
                    bucket.push_front(entry);
                }
            }
        }
    }

    /// Takes every shard bucket of `tick` at once, swapping them with the
    /// (empty) vectors in `out` — the zero-allocation drain the parallel
    /// batch path uses. `out` is resized to the shard count; each taken
    /// bucket is in `(seq)` order and slot-disjoint from the others.
    ///
    /// # Panics
    ///
    /// Panics (debug) if undrained events exist before `tick` or `out`
    /// contains non-empty vectors.
    pub fn drain_tick_into(&mut self, tick: u64, out: &mut Vec<VecDeque<(u64, T)>>) {
        self.advance_to(tick);
        out.resize_with(self.shards.len(), VecDeque::new);
        let idx = (tick % self.horizon) as usize;
        for (shard, out) in self.shards.iter_mut().zip(out.iter_mut()) {
            debug_assert!(out.is_empty(), "drain scratch must be empty");
            std::mem::swap(&mut shard.ring[idx], out);
            self.len -= out.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng as _};
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn pops_in_tick_then_seq_order() {
        let mut wheel: TimerWheel<&'static str> = TimerWheel::new(8, 4);
        wheel.push(5, 0, "a");
        wheel.push(3, 4096, "b");
        wheel.push(5, 2048, "c");
        wheel.push(3, 1, "d");
        let mut order = Vec::new();
        while let Some((tick, _, item)) = wheel.pop_at_or_before(u64::MAX) {
            order.push((tick, item));
        }
        assert_eq!(order, vec![(3, "b"), (3, "d"), (5, "a"), (5, "c")]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn respects_the_until_bound() {
        let mut wheel: TimerWheel<u32> = TimerWheel::new(8, 2);
        wheel.push(10, 0, 1);
        assert_eq!(wheel.pop_at_or_before(9), None);
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.pop_at_or_before(10), Some((10, 1, 1)));
    }

    #[test]
    fn overflow_spills_keep_seq_order() {
        // Horizon 16: tick 100 starts in overflow. A later push to the
        // same tick lands in the ring once the cursor is close enough; the
        // overflow entry must still drain first (smaller seq).
        let mut wheel: TimerWheel<&'static str> = TimerWheel::new(16, 2);
        wheel.push(100, 0, "early-push");
        wheel.push(90, 0, "stepping-stone");
        assert_eq!(
            wheel.pop_at_or_before(u64::MAX).unwrap().2,
            "stepping-stone"
        );
        // Cursor now at 90, window covers 100.
        wheel.push(100, 0, "late-push");
        assert_eq!(wheel.pop_at_or_before(u64::MAX).unwrap().2, "early-push");
        assert_eq!(wheel.pop_at_or_before(u64::MAX).unwrap().2, "late-push");
    }

    #[test]
    fn drain_tick_partitions_by_slot_shard() {
        let mut wheel: TimerWheel<u32> = TimerWheel::new(8, 4);
        // Two slots in shard 0's first range, one in shard 1's.
        wheel.push(2, 0, 10);
        wheel.push(2, 1023, 11);
        wheel.push(2, 1024, 20);
        wheel.push(4, 0, 30);
        let mut buckets = Vec::new();
        wheel.drain_tick_into(2, &mut buckets);
        assert_eq!(buckets.len(), 4);
        let items: Vec<Vec<u32>> = buckets
            .iter()
            .map(|b| b.iter().map(|(_, v)| *v).collect())
            .collect();
        assert_eq!(items[0], vec![10, 11]);
        assert_eq!(items[1], vec![20]);
        assert!(items[2].is_empty() && items[3].is_empty());
        assert_eq!(wheel.len(), 1, "tick-4 event remains");
    }

    /// The satellite-mandated equivalence check: a random interleaving of
    /// pushes and pops must drain in exactly the order the old
    /// `BinaryHeap<Reverse<(at, seq)>>` queue produced.
    #[test]
    fn matches_binary_heap_order_on_random_schedules() {
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut wheel: TimerWheel<u64> = TimerWheel::new(32, 4);
            let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
            let mut heap_seq = 0u64;
            let mut now = 0u64;
            let mut wheel_order = Vec::new();
            let mut heap_order = Vec::new();
            for step in 0..2000u64 {
                if rng.random_range(0..3) < 2 {
                    // Schedule strictly in the future, as the engine does;
                    // occasionally far beyond the horizon.
                    let delay: u64 = if rng.random_range(0..10) == 0 {
                        rng.random_range(100..500)
                    } else {
                        rng.random_range(1..40)
                    };
                    let slot = rng.random_range(0..8192u32);
                    wheel.push(now + delay, slot, step);
                    heap_seq += 1;
                    heap.push(Reverse((now + delay, heap_seq, step)));
                } else {
                    if let Some((tick, _, item)) = wheel.pop_at_or_before(u64::MAX) {
                        now = tick;
                        wheel_order.push((tick, item));
                    }
                    if let Some(Reverse((at, _, item))) = heap.pop() {
                        heap_order.push((at, item));
                    }
                }
            }
            while let Some((tick, _, item)) = wheel.pop_at_or_before(u64::MAX) {
                wheel_order.push((tick, item));
            }
            while let Some(Reverse((at, _, item))) = heap.pop() {
                heap_order.push((at, item));
            }
            assert_eq!(wheel_order, heap_order, "diverged for seed {seed}");
        }
    }
}
