//! Minimal fork–join executor for the parallel engine.
//!
//! The workspace builds offline without rayon, so the parallel round path
//! uses plain `std::thread::scope` fan-out over contiguous chunks. Work
//! items are pre-partitioned (no work stealing): every phase of a round
//! splits its input into at most `threads` chunks, processes them on
//! scoped threads, and joins before the next phase. For `threads <= 1` all
//! helpers degrade to inline calls with zero spawn overhead, so the
//! parallel engine can run on any machine.
//!
//! Determinism note: chunk boundaries depend on the thread count, but every
//! closure the engine passes here derives its randomness from the item's
//! identity (node slot), never from the chunk, and all reductions are
//! commutative sums — which is why `Engine::run_round_parallel` produces
//! bit-identical results for every thread count.

/// Chunk size that spreads `total` items over at most `threads` chunks.
pub(crate) fn chunk_len(total: usize, threads: usize) -> usize {
    total.div_ceil(threads.max(1)).max(1)
}

/// Runs `f(base_index, a_chunk, b_chunk)` over aligned contiguous chunks of
/// two equal-length slices, on up to `threads` scoped threads.
///
/// # Panics
///
/// Panics if the slices differ in length or a worker panics.
pub(crate) fn par_zip<A, B, F>(a: &mut [A], b: &mut [B], threads: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert_eq!(a.len(), b.len(), "par_zip slices must align");
    if threads <= 1 || a.len() < 2 {
        f(0, a, b);
        return;
    }
    let chunk = chunk_len(a.len(), threads);
    std::thread::scope(|scope| {
        let mut base = 0;
        let mut a_rest = a;
        let mut b_rest = b;
        while !a_rest.is_empty() {
            let take = chunk.min(a_rest.len());
            let (a_chunk, a_tail) = a_rest.split_at_mut(take);
            let (b_chunk, b_tail) = b_rest.split_at_mut(take);
            a_rest = a_tail;
            b_rest = b_tail;
            let f = &f;
            scope.spawn(move || f(base, a_chunk, b_chunk));
            base += take;
        }
    });
}

/// Maps `f` over contiguous chunks of `items` on up to `threads` scoped
/// threads, returning one result per chunk in chunk order.
///
/// # Panics
///
/// Panics if a worker panics.
pub(crate) fn par_chunks_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    if threads <= 1 || items.len() < 2 {
        return vec![f(items)];
    }
    let chunk = chunk_len(items.len(), threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|chunk| {
                let f = &f;
                scope.spawn(move || f(chunk))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_zip_visits_every_index_once() {
        for threads in [1, 2, 3, 8] {
            let mut idx: Vec<usize> = (0..100).collect();
            let mut out = vec![0usize; 100];
            par_zip(&mut idx, &mut out, threads, |base, idx, out| {
                for (i, (src, dst)) in idx.iter().zip(out.iter_mut()).enumerate() {
                    assert_eq!(*src, base + i, "chunk base misaligned");
                    *dst = src * 2;
                }
            });
            assert!(out.iter().enumerate().all(|(i, v)| *v == i * 2));
        }
    }

    #[test]
    fn par_chunks_map_covers_all_items_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 5] {
            let sums = par_chunks_map(&items, threads, |chunk| chunk.iter().sum::<u64>());
            assert!(sums.len() <= threads.max(1));
            assert_eq!(sums.iter().sum::<u64>(), 1000 * 999 / 2);
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_safe() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_chunks_map(&empty, 4, |c| c.len()).is_empty());
        let mut one = [7u32];
        let mut out = [0u32];
        par_zip(&mut one, &mut out, 4, |_, a, b| b[0] = a[0] + 1);
        assert_eq!(out[0], 8);
    }
}
