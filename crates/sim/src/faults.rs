//! Scenario-driven fault injection.
//!
//! A [`FaultScenario`] is a declarative list of [`FaultEvent`]s — correlated
//! burst loss, overlay partitions, crash–recover waves, extra delivery delay
//! and message duplication — each active over a round window. Scenarios are
//! attached to an engine ([`crate::Engine::set_fault_scenario`] for the
//! cycle-driven engine, [`crate::EventEngine::set_fault_scenario`] for the
//! async one) and replayed deterministically: every random draw the injector
//! makes comes from counter-based streams keyed by the *scenario* seed and
//! the round (never from the engine RNG), so the same scenario produces the
//! same faults under the sequential and parallel round paths at any thread
//! count.
//!
//! The engine records what it injected each round in a [`FaultTrace`] of
//! [`RoundFaults`] records, which tests compare across execution paths and
//! benches report alongside protocol error.

use crate::engine::SimConfigError;
use crate::rng::{derive_seed, seeded_rng};

/// Fault-stream tags for [`derive_seed`], disjoint from the engine's
/// parallel-phase counters (0, 1) by a wide margin.
pub(crate) const PHASE_PARTITION: u64 = 16;
pub(crate) const PHASE_CRASH: u64 = 17;
pub(crate) const PHASE_RECOVER: u64 = 18;

/// Shape of an injected network partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionKind {
    /// Split the network into two halves.
    Bisect,
    /// Split the network into `k ≥ 2` islands.
    Islands(u32),
}

impl PartitionKind {
    /// Number of partition groups this cut produces.
    pub fn groups(self) -> u32 {
        match self {
            PartitionKind::Bisect => 2,
            PartitionKind::Islands(k) => k,
        }
    }
}

/// One declarative fault, active over a round window.
///
/// Round windows are half-open: `[from_round, to_round)`. A `CrashRecover`
/// fires once at `at_round` and the crashed nodes rejoin at `recover_round`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Correlated burst loss: while active, the engine's per-message loss
    /// probability is overridden with `loss_rate` (the maximum over all
    /// active bursts wins).
    BurstLoss {
        /// First affected round (inclusive).
        from_round: u64,
        /// First unaffected round (exclusive).
        to_round: u64,
        /// Per-message loss probability in `[0, 1]`.
        loss_rate: f64,
    },
    /// Overlay-aware partition: while active, gossip partners are only
    /// drawn within a node's partition group. Group assignment is a pure
    /// function of the scenario seed, the window start and the node slot,
    /// so it is identical across execution paths and rounds.
    Partition {
        /// First affected round (inclusive).
        from_round: u64,
        /// First unaffected round (exclusive); the partition heals here.
        to_round: u64,
        /// Shape of the cut.
        kind: PartitionKind,
    },
    /// Crash a fraction of live nodes at `at_round` (state wiped, removed
    /// from the overlay) and let the same number of fresh nodes rejoin via
    /// peer sampling at `recover_round`.
    CrashRecover {
        /// Round at which the nodes crash.
        at_round: u64,
        /// Round at which replacements rejoin (`> at_round`).
        recover_round: u64,
        /// Fraction of the live population to crash, in `[0, 1]`.
        fraction: f64,
    },
    /// Extra delivery delay for the [`crate::EventEngine`]: while active,
    /// every delivered message takes `extra_ticks` additional ticks. The
    /// cycle-driven engine ignores it (its exchanges are intra-round).
    Delay {
        /// First affected round (inclusive).
        from_round: u64,
        /// First unaffected round (exclusive).
        to_round: u64,
        /// Additional delivery latency in ticks.
        extra_ticks: u64,
    },
    /// Message duplication for the [`crate::EventEngine`]: while active,
    /// each sent message is delivered twice with probability `rate`. The
    /// cycle-driven engine ignores it (exchanges are idempotent per round).
    Duplicate {
        /// First affected round (inclusive).
        from_round: u64,
        /// First unaffected round (exclusive).
        to_round: u64,
        /// Duplication probability in `[0, 1]`.
        rate: f64,
    },
}

/// A declarative, deterministically replayable fault schedule.
///
/// Build with the `with_*` methods, then attach to an engine. The scenario
/// `seed` drives all fault randomness (crash victim selection, partition
/// group assignment); it is independent of the engine seed so the same
/// scenario can be replayed against different populations.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    /// Seed for all fault randomness.
    pub seed: u64,
    /// The scheduled faults.
    pub events: Vec<FaultEvent>,
}

impl FaultScenario {
    /// Creates an empty scenario.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds a correlated burst-loss window `[from, to)`.
    pub fn with_burst_loss(mut self, from: u64, to: u64, loss_rate: f64) -> Self {
        self.events.push(FaultEvent::BurstLoss {
            from_round: from,
            to_round: to,
            loss_rate,
        });
        self
    }

    /// Adds a partition window `[from, to)`.
    pub fn with_partition(mut self, from: u64, to: u64, kind: PartitionKind) -> Self {
        self.events.push(FaultEvent::Partition {
            from_round: from,
            to_round: to,
            kind,
        });
        self
    }

    /// Adds a crash–recover wave: `fraction` of live nodes crash at `at`
    /// and replacements rejoin at `recover`.
    pub fn with_crash_recover(mut self, at: u64, recover: u64, fraction: f64) -> Self {
        self.events.push(FaultEvent::CrashRecover {
            at_round: at,
            recover_round: recover,
            fraction,
        });
        self
    }

    /// Adds an extra-delay window `[from, to)` (async engine only).
    pub fn with_delay(mut self, from: u64, to: u64, extra_ticks: u64) -> Self {
        self.events.push(FaultEvent::Delay {
            from_round: from,
            to_round: to,
            extra_ticks,
        });
        self
    }

    /// Adds a duplication window `[from, to)` (async engine only).
    pub fn with_duplication(mut self, from: u64, to: u64, rate: f64) -> Self {
        self.events.push(FaultEvent::Duplicate {
            from_round: from,
            to_round: to,
            rate,
        });
        self
    }

    /// Validates every event: probabilities must be finite and in `[0, 1]`,
    /// windows non-inverted, recovery strictly after the crash, island cuts
    /// need at least two groups.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        fn probability(name: &str, p: f64) -> Result<(), SimConfigError> {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(SimConfigError::new(format!(
                    "{name} must be finite and in [0, 1], got {p}"
                )));
            }
            Ok(())
        }
        fn window(from: u64, to: u64) -> Result<(), SimConfigError> {
            if from > to {
                return Err(SimConfigError::new(format!(
                    "fault window [{from}, {to}) is inverted"
                )));
            }
            Ok(())
        }
        for event in &self.events {
            match *event {
                FaultEvent::BurstLoss {
                    from_round,
                    to_round,
                    loss_rate,
                } => {
                    window(from_round, to_round)?;
                    probability("burst loss_rate", loss_rate)?;
                }
                FaultEvent::Partition {
                    from_round,
                    to_round,
                    kind,
                } => {
                    window(from_round, to_round)?;
                    if kind.groups() < 2 {
                        return Err(SimConfigError::new(
                            "partition needs at least 2 groups".to_string(),
                        ));
                    }
                }
                FaultEvent::CrashRecover {
                    at_round,
                    recover_round,
                    fraction,
                } => {
                    if recover_round <= at_round {
                        return Err(SimConfigError::new(format!(
                            "recover_round {recover_round} must be after at_round {at_round}"
                        )));
                    }
                    probability("crash fraction", fraction)?;
                }
                FaultEvent::Delay {
                    from_round,
                    to_round,
                    ..
                } => window(from_round, to_round)?,
                FaultEvent::Duplicate {
                    from_round,
                    to_round,
                    rate,
                } => {
                    window(from_round, to_round)?;
                    probability("duplication rate", rate)?;
                }
            }
        }
        Ok(())
    }

    /// The loss-rate override active at `round`, if any (maximum over all
    /// active bursts).
    pub fn loss_rate_at(&self, round: u64) -> Option<f64> {
        let mut max: Option<f64> = None;
        for event in &self.events {
            if let FaultEvent::BurstLoss {
                from_round,
                to_round,
                loss_rate,
            } = *event
            {
                if (from_round..to_round).contains(&round) {
                    max = Some(max.map_or(loss_rate, |m: f64| m.max(loss_rate)));
                }
            }
        }
        max
    }

    /// Extra delivery delay (ticks) active at `round` (sum over windows).
    pub fn extra_delay_at(&self, round: u64) -> u64 {
        self.events
            .iter()
            .filter_map(|event| match *event {
                FaultEvent::Delay {
                    from_round,
                    to_round,
                    extra_ticks,
                } if (from_round..to_round).contains(&round) => Some(extra_ticks),
                _ => None,
            })
            .sum()
    }

    /// Duplication probability active at `round` (maximum over windows).
    pub fn duplication_rate_at(&self, round: u64) -> f64 {
        self.events
            .iter()
            .filter_map(|event| match *event {
                FaultEvent::Duplicate {
                    from_round,
                    to_round,
                    rate,
                } if (from_round..to_round).contains(&round) => Some(rate),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// The partition active at `round`, as `(window_start, kind)`. When
    /// windows overlap, the latest-starting one wins.
    pub(crate) fn active_partition(&self, round: u64) -> Option<(u64, PartitionKind)> {
        let mut active: Option<(u64, PartitionKind)> = None;
        for event in &self.events {
            if let FaultEvent::Partition {
                from_round,
                to_round,
                kind,
            } = *event
            {
                if (from_round..to_round).contains(&round)
                    && active.is_none_or(|(start, _)| from_round >= start)
                {
                    active = Some((from_round, kind));
                }
            }
        }
        active
    }

    /// Crash waves firing exactly at `round`, as `(recover_round, fraction)`.
    pub(crate) fn crashes_at(&self, round: u64) -> Vec<(u64, f64)> {
        self.events
            .iter()
            .filter_map(|event| match *event {
                FaultEvent::CrashRecover {
                    at_round,
                    recover_round,
                    fraction,
                } if at_round == round => Some((recover_round, fraction)),
                _ => None,
            })
            .collect()
    }

    /// Whether any event references rounds at or after `round` (used to
    /// know when a scenario is fully played out).
    pub fn last_round(&self) -> u64 {
        self.events
            .iter()
            .map(|event| match *event {
                FaultEvent::BurstLoss { to_round, .. }
                | FaultEvent::Partition { to_round, .. }
                | FaultEvent::Delay { to_round, .. }
                | FaultEvent::Duplicate { to_round, .. } => to_round,
                FaultEvent::CrashRecover { recover_round, .. } => recover_round,
            })
            .max()
            .unwrap_or(0)
    }

    /// Deterministic partition group of `slot` for the partition window
    /// starting at `window_start`: a pure function of the scenario seed, so
    /// identical across execution paths, rounds, and thread counts.
    pub(crate) fn partition_group(&self, window_start: u64, slot: usize, k: u32) -> u32 {
        let h = derive_seed(
            derive_seed(derive_seed(self.seed, PHASE_PARTITION), window_start),
            slot as u64,
        );
        (h % u64::from(k.max(1))) as u32
    }
}

/// What the fault injector did in one round (for replay comparison).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundFaults {
    /// The round the faults were injected into.
    pub round: u64,
    /// Effective per-message loss rate this round.
    pub loss_rate: f64,
    /// Whether a partition was active.
    pub partition_active: bool,
    /// Checksum over the partition group assignment (0 when unpartitioned).
    pub partition_checksum: u64,
    /// Slots crashed this round, in removal order.
    pub crashed: Vec<u32>,
    /// Number of nodes that recovered (rejoined) this round.
    pub recovered: u32,
}

/// Chronological record of injected faults, one entry per round with any
/// fault activity. Two engines replaying the same scenario must produce
/// equal traces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultTrace {
    /// Per-round records (only rounds with fault activity).
    pub records: Vec<RoundFaults>,
}

impl FaultTrace {
    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no fault activity was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total nodes crashed over the run.
    pub fn total_crashed(&self) -> u64 {
        self.records.iter().map(|r| r.crashed.len() as u64).sum()
    }

    /// Total nodes recovered over the run.
    pub fn total_recovered(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.recovered)).sum()
    }
}

/// Engine-side runtime state for an attached scenario.
#[derive(Debug, Clone)]
pub(crate) struct FaultRuntime {
    /// The scenario being replayed.
    pub(crate) scenario: FaultScenario,
    /// Window start of the currently applied partition, if any.
    pub(crate) partition_applied: Option<u64>,
    /// Crashed-node batches waiting to rejoin, as `(recover_round, count)`.
    pub(crate) pending_recoveries: Vec<(u64, u32)>,
    /// Record of everything injected so far.
    pub(crate) trace: FaultTrace,
}

impl FaultRuntime {
    pub(crate) fn new(scenario: FaultScenario) -> Self {
        Self {
            scenario,
            partition_applied: None,
            pending_recoveries: Vec::new(),
            trace: FaultTrace::default(),
        }
    }

    /// Deterministic RNG for selecting crash victims at `round`.
    pub(crate) fn crash_rng(&self, round: u64) -> rand::rngs::StdRng {
        seeded_rng(derive_seed(
            derive_seed(self.scenario.seed, PHASE_CRASH),
            round,
        ))
    }

    /// Deterministic RNG for rebuilding recovered nodes at `round`.
    pub(crate) fn recover_rng(&self, round: u64) -> rand::rngs::StdRng {
        seeded_rng(derive_seed(
            derive_seed(self.scenario.seed, PHASE_RECOVER),
            round,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> FaultScenario {
        FaultScenario::new(7)
            .with_burst_loss(5, 10, 0.2)
            .with_burst_loss(8, 12, 0.5)
            .with_partition(10, 20, PartitionKind::Bisect)
            .with_crash_recover(15, 25, 0.1)
            .with_delay(0, 4, 3)
            .with_duplication(2, 6, 0.25)
    }

    #[test]
    fn validates_good_scenario() {
        assert!(scenario().validate().is_ok());
    }

    #[test]
    fn rejects_bad_rates_and_windows() {
        let bad = [
            FaultScenario::new(0).with_burst_loss(0, 5, 1.5),
            FaultScenario::new(0).with_burst_loss(0, 5, f64::NAN),
            FaultScenario::new(0).with_burst_loss(5, 0, 0.1),
            FaultScenario::new(0).with_crash_recover(5, 5, 0.1),
            FaultScenario::new(0).with_crash_recover(5, 10, -0.1),
            FaultScenario::new(0).with_duplication(0, 5, 2.0),
            FaultScenario::new(0).with_partition(0, 5, PartitionKind::Islands(1)),
        ];
        for s in bad {
            assert!(s.validate().is_err(), "{s:?} should be rejected");
        }
    }

    #[test]
    fn loss_rate_takes_burst_maximum() {
        let s = scenario();
        assert_eq!(s.loss_rate_at(4), None);
        assert_eq!(s.loss_rate_at(5), Some(0.2));
        assert_eq!(s.loss_rate_at(9), Some(0.5));
        assert_eq!(s.loss_rate_at(11), Some(0.5));
        assert_eq!(s.loss_rate_at(12), None);
    }

    #[test]
    fn delay_and_duplication_windows() {
        let s = scenario();
        assert_eq!(s.extra_delay_at(0), 3);
        assert_eq!(s.extra_delay_at(4), 0);
        assert_eq!(s.duplication_rate_at(3), 0.25);
        assert_eq!(s.duplication_rate_at(6), 0.0);
    }

    #[test]
    fn partition_window_and_groups_are_deterministic() {
        let s = scenario();
        assert_eq!(s.active_partition(9), None);
        let (start, kind) = s.active_partition(10).unwrap();
        assert_eq!((start, kind), (10, PartitionKind::Bisect));
        assert_eq!(s.active_partition(20), None);
        // Pure function of (seed, window, slot): stable and 2-valued.
        let groups: Vec<u32> = (0..64).map(|slot| s.partition_group(10, slot, 2)).collect();
        let again: Vec<u32> = (0..64).map(|slot| s.partition_group(10, slot, 2)).collect();
        assert_eq!(groups, again);
        assert!(groups.contains(&0) && groups.contains(&1));
        assert!(groups.iter().all(|&g| g < 2));
    }

    #[test]
    fn crash_schedule_fires_once() {
        let s = scenario();
        assert!(s.crashes_at(14).is_empty());
        assert_eq!(s.crashes_at(15), vec![(25, 0.1)]);
        assert!(s.crashes_at(16).is_empty());
    }

    #[test]
    fn last_round_covers_all_events() {
        assert_eq!(scenario().last_round(), 25);
        assert_eq!(FaultScenario::new(0).last_round(), 0);
    }
}
