//! Scenario-driven fault injection.
//!
//! A [`FaultScenario`] is a declarative list of [`FaultEvent`]s — correlated
//! burst loss, overlay partitions, crash–recover waves, extra delivery delay
//! and message duplication — each active over a round window. Scenarios are
//! attached to an engine ([`crate::Engine::set_fault_scenario`] for the
//! cycle-driven engine, [`crate::EventEngine::set_fault_scenario`] for the
//! async one) and replayed deterministically: every random draw the injector
//! makes comes from counter-based streams keyed by the *scenario* seed and
//! the round (never from the engine RNG), so the same scenario produces the
//! same faults under the sequential and parallel round paths at any thread
//! count.
//!
//! The engine records what it injected each round in a [`FaultTrace`] of
//! [`RoundFaults`] records, which tests compare across execution paths and
//! benches report alongside protocol error.

use crate::engine::SimConfigError;
use crate::rng::{derive_seed, seeded_rng};

/// Fault-stream tags for [`derive_seed`], disjoint from the engine's
/// parallel-phase counters (0, 1) by a wide margin.
pub(crate) const PHASE_PARTITION: u64 = 16;
pub(crate) const PHASE_CRASH: u64 = 17;
pub(crate) const PHASE_RECOVER: u64 = 18;
pub(crate) const PHASE_ADVERSARY: u64 = 19;
pub(crate) const PHASE_ADV_DRAW: u64 = 20;
pub(crate) const PHASE_DRIFT: u64 = 21;

/// Shape of an injected network partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionKind {
    /// Split the network into two halves.
    Bisect,
    /// Split the network into `k ≥ 2` islands.
    Islands(u32),
}

impl PartitionKind {
    /// Number of partition groups this cut produces.
    pub fn groups(self) -> u32 {
        match self {
            PartitionKind::Bisect => 2,
            PartitionKind::Islands(k) => k,
        }
    }
}

/// Behaviour of a Byzantine node while an adversary window is active.
///
/// All models corrupt the node's *contribution* to gossip exchanges; honest
/// nodes are untouched. Which nodes are Byzantine is a pure function of the
/// scenario seed, the window start and the node slot (see
/// [`ActiveAdversary::is_byzantine`]), so membership replays bit-identically
/// on every execution path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdversaryModel {
    /// The node reports poisoned fraction vectors: every component is
    /// replaced by a draw in `[0, magnitude)`. The lie is *consistent* —
    /// the same node tells the same lie to every partner in every round of
    /// the window.
    ValuePoisoning {
        /// Upper bound of the poisoned component values (honest fractions
        /// live in `[0, 1]`, so `magnitude > 1` drags estimates upward).
        magnitude: f64,
    },
    /// The node claims an inflated aggregation weight `factor` in every
    /// exchange (honest weights sum to 1 network-wide, so any single claim
    /// above 1 injects mass and drags `n_hat` down for everyone it meets).
    WeightInflation {
        /// The absolute weight the node claims (honest nodes claim ≤ 1).
        factor: f64,
    },
    /// Value poisoning plus *targeted partner selection*: instead of
    /// gossiping with a uniform random neighbour, every Byzantine node
    /// aims all of its exchanges at a single victim (the lowest live
    /// slot), concentrating the poison.
    TargetedPartner {
        /// Upper bound of the poisoned component values.
        magnitude: f64,
    },
    /// Equivocation: the node poisons its fractions like `ValuePoisoning`
    /// but tells a *different* lie to every partner in every round (the
    /// corruption stream is keyed by round and partner slot).
    Equivocation {
        /// Upper bound of the poisoned component values.
        magnitude: f64,
    },
}

impl AdversaryModel {
    /// The poisoning magnitude, if this model poisons values.
    pub fn magnitude(self) -> Option<f64> {
        match self {
            AdversaryModel::ValuePoisoning { magnitude }
            | AdversaryModel::TargetedPartner { magnitude }
            | AdversaryModel::Equivocation { magnitude } => Some(magnitude),
            AdversaryModel::WeightInflation { .. } => None,
        }
    }

    /// Whether Byzantine nodes override their partner selection.
    pub fn targets_partner(self) -> bool {
        matches!(self, AdversaryModel::TargetedPartner { .. })
    }

    fn validate(self) -> Result<(), SimConfigError> {
        let bad = |name: &str, v: f64| {
            Err(SimConfigError::new(format!(
                "adversary {name} must be finite and > 0, got {v}"
            )))
        };
        match self {
            AdversaryModel::ValuePoisoning { magnitude }
            | AdversaryModel::TargetedPartner { magnitude }
            | AdversaryModel::Equivocation { magnitude } => {
                if !magnitude.is_finite() || magnitude <= 0.0 {
                    return bad("magnitude", magnitude);
                }
            }
            AdversaryModel::WeightInflation { factor } => {
                if !factor.is_finite() || factor <= 0.0 {
                    return bad("inflation factor", factor);
                }
            }
        }
        Ok(())
    }
}

/// How node attribute values drift while a [`FaultEvent::Drift`] window is
/// active.
///
/// Drift rewrites the *attribute* of live nodes between rounds — the input
/// the protocol is estimating — not the protocol state itself. Estimates in
/// flight keep the indicator contributions their nodes enrolled with, so
/// they go stale exactly the way a real deployment's would; that staleness
/// is what the streaming subsystem (`adam2-stream`) exists to track.
/// Magnitudes are in absolute attribute units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftModel {
    /// Every live node's value shifts by `per_round` each round of the
    /// window (a population-wide linear ramp).
    LinearRamp {
        /// Per-round additive shift (may be negative).
        per_round: f64,
    },
    /// Every live node's value shifts by `shift` exactly once, at the
    /// window's first round (an abrupt step change — the Spectra restart
    /// trigger's target case).
    Step {
        /// One-shot additive shift (may be negative).
        shift: f64,
    },
    /// Each round, every live node's value shifts by an independent
    /// uniform draw in `[-sigma, sigma]` from the scenario-seeded drift
    /// stream (per-node jitter; the population mean stays put).
    Jitter {
        /// Half-width of the uniform jitter, `≥ 0`.
        sigma: f64,
    },
    /// Each round, each live node redraws its value from the protocol's
    /// fresh-value source with probability `rate` (population replacement:
    /// the distribution morphs toward the source's).
    Replacement {
        /// Per-node per-round replacement probability in `[0, 1]`.
        rate: f64,
    },
}

impl DriftModel {
    fn validate(self) -> Result<(), SimConfigError> {
        match self {
            DriftModel::LinearRamp { per_round } => {
                if !per_round.is_finite() {
                    return Err(SimConfigError::new(format!(
                        "drift per_round must be finite, got {per_round}"
                    )));
                }
            }
            DriftModel::Step { shift } => {
                if !shift.is_finite() {
                    return Err(SimConfigError::new(format!(
                        "drift shift must be finite, got {shift}"
                    )));
                }
            }
            DriftModel::Jitter { sigma } => {
                if !sigma.is_finite() || sigma < 0.0 {
                    return Err(SimConfigError::new(format!(
                        "drift sigma must be finite and ≥ 0, got {sigma}"
                    )));
                }
            }
            DriftModel::Replacement { rate } => {
                if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                    return Err(SimConfigError::new(format!(
                        "drift rate must be finite and in [0, 1], got {rate}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// One attribute-drift operation for a single node, resolved by the engine
/// from the active [`DriftModel`]s and handed to the protocol's
/// `drift_node` hook.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftOp {
    /// Add `delta` to the node's attribute value(s).
    Shift(f64),
    /// Redraw the node's attribute from the protocol's fresh-value source
    /// (using the scenario-seeded drift RNG, never the engine RNG).
    Replace,
}

/// One declarative fault, active over a round window.
///
/// Round windows are half-open: `[from_round, to_round)`. A `CrashRecover`
/// fires once at `at_round` and the crashed nodes rejoin at `recover_round`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Correlated burst loss: while active, the engine's per-message loss
    /// probability is overridden with `loss_rate` (the maximum over all
    /// active bursts wins).
    BurstLoss {
        /// First affected round (inclusive).
        from_round: u64,
        /// First unaffected round (exclusive).
        to_round: u64,
        /// Per-message loss probability in `[0, 1]`.
        loss_rate: f64,
    },
    /// Overlay-aware partition: while active, gossip partners are only
    /// drawn within a node's partition group. Group assignment is a pure
    /// function of the scenario seed, the window start and the node slot,
    /// so it is identical across execution paths and rounds.
    Partition {
        /// First affected round (inclusive).
        from_round: u64,
        /// First unaffected round (exclusive); the partition heals here.
        to_round: u64,
        /// Shape of the cut.
        kind: PartitionKind,
    },
    /// Crash a fraction of live nodes at `at_round` (state wiped, removed
    /// from the overlay) and let the same number of fresh nodes rejoin via
    /// peer sampling at `recover_round`.
    CrashRecover {
        /// Round at which the nodes crash.
        at_round: u64,
        /// Round at which replacements rejoin (`> at_round`).
        recover_round: u64,
        /// Fraction of the live population to crash, in `[0, 1]`.
        fraction: f64,
    },
    /// Extra delivery delay for the [`crate::EventEngine`]: while active,
    /// every delivered message takes `extra_ticks` additional ticks. The
    /// cycle-driven engine ignores it (its exchanges are intra-round).
    Delay {
        /// First affected round (inclusive).
        from_round: u64,
        /// First unaffected round (exclusive).
        to_round: u64,
        /// Additional delivery latency in ticks.
        extra_ticks: u64,
    },
    /// Message duplication for the [`crate::EventEngine`]: while active,
    /// each sent message is delivered twice with probability `rate`. The
    /// cycle-driven engine ignores it (exchanges are idempotent per round).
    Duplicate {
        /// First affected round (inclusive).
        from_round: u64,
        /// First unaffected round (exclusive).
        to_round: u64,
        /// Duplication probability in `[0, 1]`.
        rate: f64,
    },
    /// Byzantine adversary: while active, a deterministic `fraction` of
    /// live nodes behave according to `model` in every gossip exchange.
    /// When windows overlap, the latest-starting one wins (like
    /// `Partition`).
    Adversary {
        /// First affected round (inclusive).
        from_round: u64,
        /// First unaffected round (exclusive).
        to_round: u64,
        /// Fraction of nodes that are Byzantine, in `[0, 1]`.
        fraction: f64,
        /// What the Byzantine nodes do.
        model: AdversaryModel,
    },
    /// Attribute drift: while active, live nodes' attribute values are
    /// rewritten between rounds according to `model` (a [`DriftModel::Step`]
    /// fires once, at `from_round`). All randomness comes from the
    /// scenario-seeded drift stream consumed over live nodes in slot
    /// order, so replay is bit-identical on both engines at any thread
    /// count.
    Drift {
        /// First affected round (inclusive).
        from_round: u64,
        /// First unaffected round (exclusive).
        to_round: u64,
        /// How the attribute values move.
        model: DriftModel,
    },
}

/// A declarative, deterministically replayable fault schedule.
///
/// Build with the `with_*` methods, then attach to an engine. The scenario
/// `seed` drives all fault randomness (crash victim selection, partition
/// group assignment); it is independent of the engine seed so the same
/// scenario can be replayed against different populations.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    /// Seed for all fault randomness.
    pub seed: u64,
    /// The scheduled faults.
    pub events: Vec<FaultEvent>,
}

impl FaultScenario {
    /// Creates an empty scenario.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds a correlated burst-loss window `[from, to)`.
    pub fn with_burst_loss(mut self, from: u64, to: u64, loss_rate: f64) -> Self {
        self.events.push(FaultEvent::BurstLoss {
            from_round: from,
            to_round: to,
            loss_rate,
        });
        self
    }

    /// Adds a partition window `[from, to)`.
    pub fn with_partition(mut self, from: u64, to: u64, kind: PartitionKind) -> Self {
        self.events.push(FaultEvent::Partition {
            from_round: from,
            to_round: to,
            kind,
        });
        self
    }

    /// Adds a crash–recover wave: `fraction` of live nodes crash at `at`
    /// and replacements rejoin at `recover`.
    pub fn with_crash_recover(mut self, at: u64, recover: u64, fraction: f64) -> Self {
        self.events.push(FaultEvent::CrashRecover {
            at_round: at,
            recover_round: recover,
            fraction,
        });
        self
    }

    /// Adds an extra-delay window `[from, to)` (async engine only).
    pub fn with_delay(mut self, from: u64, to: u64, extra_ticks: u64) -> Self {
        self.events.push(FaultEvent::Delay {
            from_round: from,
            to_round: to,
            extra_ticks,
        });
        self
    }

    /// Adds a duplication window `[from, to)` (async engine only).
    pub fn with_duplication(mut self, from: u64, to: u64, rate: f64) -> Self {
        self.events.push(FaultEvent::Duplicate {
            from_round: from,
            to_round: to,
            rate,
        });
        self
    }

    /// Adds a Byzantine adversary window `[from, to)`: `fraction` of the
    /// nodes follow `model` in every exchange while the window is active.
    pub fn with_adversary(
        mut self,
        from: u64,
        to: u64,
        fraction: f64,
        model: AdversaryModel,
    ) -> Self {
        self.events.push(FaultEvent::Adversary {
            from_round: from,
            to_round: to,
            fraction,
            model,
        });
        self
    }

    /// Adds an attribute-drift window `[from, to)`: live nodes' values
    /// move per `model` each round the window is active (a
    /// [`DriftModel::Step`] fires once, at `from`).
    pub fn with_drift(mut self, from: u64, to: u64, model: DriftModel) -> Self {
        self.events.push(FaultEvent::Drift {
            from_round: from,
            to_round: to,
            model,
        });
        self
    }

    /// Validates every event: probabilities must be finite and in `[0, 1]`,
    /// windows non-inverted, recovery strictly after the crash, island cuts
    /// need at least two groups.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        fn probability(name: &str, p: f64) -> Result<(), SimConfigError> {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(SimConfigError::new(format!(
                    "{name} must be finite and in [0, 1], got {p}"
                )));
            }
            Ok(())
        }
        fn window(from: u64, to: u64) -> Result<(), SimConfigError> {
            if from > to {
                return Err(SimConfigError::new(format!(
                    "fault window [{from}, {to}) is inverted"
                )));
            }
            Ok(())
        }
        for event in &self.events {
            match *event {
                FaultEvent::BurstLoss {
                    from_round,
                    to_round,
                    loss_rate,
                } => {
                    window(from_round, to_round)?;
                    probability("burst loss_rate", loss_rate)?;
                }
                FaultEvent::Partition {
                    from_round,
                    to_round,
                    kind,
                } => {
                    window(from_round, to_round)?;
                    if kind.groups() < 2 {
                        return Err(SimConfigError::new(
                            "partition needs at least 2 groups".to_string(),
                        ));
                    }
                }
                FaultEvent::CrashRecover {
                    at_round,
                    recover_round,
                    fraction,
                } => {
                    if recover_round <= at_round {
                        return Err(SimConfigError::new(format!(
                            "recover_round {recover_round} must be after at_round {at_round}"
                        )));
                    }
                    probability("crash fraction", fraction)?;
                }
                FaultEvent::Delay {
                    from_round,
                    to_round,
                    ..
                } => window(from_round, to_round)?,
                FaultEvent::Duplicate {
                    from_round,
                    to_round,
                    rate,
                } => {
                    window(from_round, to_round)?;
                    probability("duplication rate", rate)?;
                }
                FaultEvent::Adversary {
                    from_round,
                    to_round,
                    fraction,
                    model,
                } => {
                    window(from_round, to_round)?;
                    probability("byzantine fraction", fraction)?;
                    model.validate()?;
                }
                FaultEvent::Drift {
                    from_round,
                    to_round,
                    model,
                } => {
                    window(from_round, to_round)?;
                    model.validate()?;
                }
            }
        }
        Ok(())
    }

    /// The drift models active at `round`, in event order. A
    /// [`DriftModel::Step`] is only active at its window's first round
    /// (it fires once); the other models apply every round of their
    /// window.
    pub fn drifts_at(&self, round: u64) -> Vec<DriftModel> {
        self.events
            .iter()
            .filter_map(|event| match *event {
                FaultEvent::Drift {
                    from_round,
                    to_round,
                    model,
                } if (from_round..to_round).contains(&round) => match model {
                    DriftModel::Step { .. } if round != from_round => None,
                    _ => Some(model),
                },
                _ => None,
            })
            .collect()
    }

    /// Whether the scenario contains any drift window.
    pub fn has_drift(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::Drift { .. }))
    }

    /// The loss-rate override active at `round`, if any (maximum over all
    /// active bursts).
    pub fn loss_rate_at(&self, round: u64) -> Option<f64> {
        let mut max: Option<f64> = None;
        for event in &self.events {
            if let FaultEvent::BurstLoss {
                from_round,
                to_round,
                loss_rate,
            } = *event
            {
                if (from_round..to_round).contains(&round) {
                    max = Some(max.map_or(loss_rate, |m: f64| m.max(loss_rate)));
                }
            }
        }
        max
    }

    /// Extra delivery delay (ticks) active at `round` (sum over windows).
    pub fn extra_delay_at(&self, round: u64) -> u64 {
        self.events
            .iter()
            .filter_map(|event| match *event {
                FaultEvent::Delay {
                    from_round,
                    to_round,
                    extra_ticks,
                } if (from_round..to_round).contains(&round) => Some(extra_ticks),
                _ => None,
            })
            .sum()
    }

    /// Duplication probability active at `round` (maximum over windows).
    pub fn duplication_rate_at(&self, round: u64) -> f64 {
        self.events
            .iter()
            .filter_map(|event| match *event {
                FaultEvent::Duplicate {
                    from_round,
                    to_round,
                    rate,
                } if (from_round..to_round).contains(&round) => Some(rate),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// The partition active at `round`, as `(window_start, kind)`. When
    /// windows overlap, the latest-starting one wins.
    pub(crate) fn active_partition(&self, round: u64) -> Option<(u64, PartitionKind)> {
        let mut active: Option<(u64, PartitionKind)> = None;
        for event in &self.events {
            if let FaultEvent::Partition {
                from_round,
                to_round,
                kind,
            } = *event
            {
                if (from_round..to_round).contains(&round)
                    && active.is_none_or(|(start, _)| from_round >= start)
                {
                    active = Some((from_round, kind));
                }
            }
        }
        active
    }

    /// The adversary window active at `round`, resolved into an
    /// [`ActiveAdversary`] handle. When windows overlap, the
    /// latest-starting one wins (like `active_partition`).
    pub fn adversary_at(&self, round: u64) -> Option<ActiveAdversary> {
        let mut active: Option<(u64, f64, AdversaryModel)> = None;
        for event in &self.events {
            if let FaultEvent::Adversary {
                from_round,
                to_round,
                fraction,
                model,
            } = *event
            {
                if (from_round..to_round).contains(&round)
                    && active.is_none_or(|(start, _, _)| from_round >= start)
                {
                    active = Some((from_round, fraction, model));
                }
            }
        }
        active.map(|(window_start, fraction, model)| ActiveAdversary {
            seed: self.seed,
            window_start,
            fraction,
            model,
        })
    }

    /// Crash waves firing exactly at `round`, as `(recover_round, fraction)`.
    pub(crate) fn crashes_at(&self, round: u64) -> Vec<(u64, f64)> {
        self.events
            .iter()
            .filter_map(|event| match *event {
                FaultEvent::CrashRecover {
                    at_round,
                    recover_round,
                    fraction,
                } if at_round == round => Some((recover_round, fraction)),
                _ => None,
            })
            .collect()
    }

    /// Whether any event references rounds at or after `round` (used to
    /// know when a scenario is fully played out).
    pub fn last_round(&self) -> u64 {
        self.events
            .iter()
            .map(|event| match *event {
                FaultEvent::BurstLoss { to_round, .. }
                | FaultEvent::Partition { to_round, .. }
                | FaultEvent::Delay { to_round, .. }
                | FaultEvent::Duplicate { to_round, .. }
                | FaultEvent::Adversary { to_round, .. }
                | FaultEvent::Drift { to_round, .. } => to_round,
                FaultEvent::CrashRecover { recover_round, .. } => recover_round,
            })
            .max()
            .unwrap_or(0)
    }

    /// Deterministic partition group of `slot` for the partition window
    /// starting at `window_start`: a pure function of the scenario seed, so
    /// identical across execution paths, rounds, and thread counts.
    pub(crate) fn partition_group(&self, window_start: u64, slot: usize, k: u32) -> u32 {
        let h = derive_seed(
            derive_seed(derive_seed(self.seed, PHASE_PARTITION), window_start),
            slot as u64,
        );
        (h % u64::from(k.max(1))) as u32
    }
}

/// A resolved adversary window: which model is active and how Byzantine
/// membership and corruption randomness are derived.
///
/// Everything here is a pure function of `(scenario seed, window start,
/// counters)` — no engine RNG is ever consumed — so the same scenario
/// produces the same attack on the cycle engine, `run_round_parallel`, and
/// the event engine's batch path, at any thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActiveAdversary {
    seed: u64,
    window_start: u64,
    fraction: f64,
    /// The behaviour model Byzantine nodes follow.
    pub model: AdversaryModel,
}

impl ActiveAdversary {
    /// Whether the node at `slot` is Byzantine in this window. Membership
    /// is fixed for the whole window: a hash of `(seed, window_start,
    /// slot)` is compared against the configured fraction.
    pub fn is_byzantine(&self, slot: usize) -> bool {
        let h = derive_seed(
            derive_seed(derive_seed(self.seed, PHASE_ADVERSARY), self.window_start),
            slot as u64,
        );
        // Top 53 bits as a uniform draw in [0, 1).
        ((h >> 11) as f64 / (1u64 << 53) as f64) < self.fraction
    }

    /// Corruption-stream seed for a Byzantine node's contribution to one
    /// exchange. `ValuePoisoning`, `TargetedPartner` and `WeightInflation`
    /// lies are consistent (keyed by slot only); `Equivocation` lies vary
    /// per round and partner.
    pub fn corruption_seed(&self, round: u64, slot: usize, partner_slot: usize) -> u64 {
        let base = derive_seed(
            derive_seed(derive_seed(self.seed, PHASE_ADV_DRAW), self.window_start),
            slot as u64,
        );
        match self.model {
            AdversaryModel::ValuePoisoning { .. }
            | AdversaryModel::TargetedPartner { .. }
            | AdversaryModel::WeightInflation { .. } => base,
            AdversaryModel::Equivocation { .. } => {
                derive_seed(derive_seed(base, round), partner_slot as u64)
            }
        }
    }

    /// Resolves one planned exchange into an attack directive, or `None`
    /// when both endpoints are honest.
    pub fn plan(
        &self,
        round: u64,
        initiator_slot: usize,
        partner_slot: usize,
    ) -> Option<PlannedAttack> {
        let initiator_seed = self
            .is_byzantine(initiator_slot)
            .then(|| self.corruption_seed(round, initiator_slot, partner_slot));
        let partner_seed = self
            .is_byzantine(partner_slot)
            .then(|| self.corruption_seed(round, partner_slot, initiator_slot));
        if initiator_seed.is_none() && partner_seed.is_none() {
            return None;
        }
        Some(PlannedAttack {
            model: self.model,
            initiator_seed,
            partner_seed,
        })
    }

    /// Number of Byzantine slots among `slots` (for trace records).
    pub fn count_byzantine<I: IntoIterator<Item = usize>>(&self, slots: I) -> u32 {
        slots.into_iter().filter(|&s| self.is_byzantine(s)).count() as u32
    }
}

/// Attack directive attached to one planned exchange: which endpoints are
/// Byzantine (a `Some` corruption seed) and what model they follow. The
/// protocol layer applies the corruption just before the merge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedAttack {
    /// The behaviour model in force.
    pub model: AdversaryModel,
    /// Corruption seed for the initiator, when the initiator is Byzantine.
    pub initiator_seed: Option<u64>,
    /// Corruption seed for the partner, when the partner is Byzantine.
    pub partner_seed: Option<u64>,
}

/// What the fault injector did in one round (for replay comparison).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundFaults {
    /// The round the faults were injected into.
    pub round: u64,
    /// Effective per-message loss rate this round.
    pub loss_rate: f64,
    /// Whether a partition was active.
    pub partition_active: bool,
    /// Checksum over the partition group assignment (0 when unpartitioned).
    pub partition_checksum: u64,
    /// Slots crashed this round, in removal order.
    pub crashed: Vec<u32>,
    /// Number of nodes that recovered (rejoined) this round.
    pub recovered: u32,
    /// Number of live Byzantine nodes this round (0 when no adversary).
    pub byzantine: u32,
    /// Number of nodes whose attribute value drifted this round (0 when
    /// no drift window is active).
    pub drifted: u32,
}

/// Chronological record of injected faults, one entry per round with any
/// fault activity. Two engines replaying the same scenario must produce
/// equal traces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultTrace {
    /// Per-round records (only rounds with fault activity).
    pub records: Vec<RoundFaults>,
}

impl FaultTrace {
    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no fault activity was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total nodes crashed over the run.
    pub fn total_crashed(&self) -> u64 {
        self.records.iter().map(|r| r.crashed.len() as u64).sum()
    }

    /// Total nodes recovered over the run.
    pub fn total_recovered(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.recovered)).sum()
    }
}

/// Engine-side runtime state for an attached scenario.
#[derive(Debug, Clone)]
pub(crate) struct FaultRuntime {
    /// The scenario being replayed.
    pub(crate) scenario: FaultScenario,
    /// Window start of the currently applied partition, if any.
    pub(crate) partition_applied: Option<u64>,
    /// Crashed-node batches waiting to rejoin, as `(recover_round, count)`.
    pub(crate) pending_recoveries: Vec<(u64, u32)>,
    /// Record of everything injected so far.
    pub(crate) trace: FaultTrace,
}

impl FaultRuntime {
    pub(crate) fn new(scenario: FaultScenario) -> Self {
        Self {
            scenario,
            partition_applied: None,
            pending_recoveries: Vec::new(),
            trace: FaultTrace::default(),
        }
    }

    /// Deterministic RNG for selecting crash victims at `round`.
    pub(crate) fn crash_rng(&self, round: u64) -> rand::rngs::StdRng {
        seeded_rng(derive_seed(
            derive_seed(self.scenario.seed, PHASE_CRASH),
            round,
        ))
    }

    /// Deterministic RNG for rebuilding recovered nodes at `round`.
    pub(crate) fn recover_rng(&self, round: u64) -> rand::rngs::StdRng {
        seeded_rng(derive_seed(
            derive_seed(self.scenario.seed, PHASE_RECOVER),
            round,
        ))
    }

    /// Deterministic RNG for the attribute-drift draws at `round`. One
    /// stream per round, consumed over live nodes in slot order — the
    /// application loop is sequential in both engines, so replay is
    /// thread-count invariant.
    pub(crate) fn drift_rng(&self, round: u64) -> rand::rngs::StdRng {
        seeded_rng(derive_seed(
            derive_seed(self.scenario.seed, PHASE_DRIFT),
            round,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> FaultScenario {
        FaultScenario::new(7)
            .with_burst_loss(5, 10, 0.2)
            .with_burst_loss(8, 12, 0.5)
            .with_partition(10, 20, PartitionKind::Bisect)
            .with_crash_recover(15, 25, 0.1)
            .with_delay(0, 4, 3)
            .with_duplication(2, 6, 0.25)
    }

    #[test]
    fn validates_good_scenario() {
        assert!(scenario().validate().is_ok());
    }

    #[test]
    fn rejects_bad_rates_and_windows() {
        let bad = [
            FaultScenario::new(0).with_burst_loss(0, 5, 1.5),
            FaultScenario::new(0).with_burst_loss(0, 5, f64::NAN),
            FaultScenario::new(0).with_burst_loss(5, 0, 0.1),
            FaultScenario::new(0).with_crash_recover(5, 5, 0.1),
            FaultScenario::new(0).with_crash_recover(5, 10, -0.1),
            FaultScenario::new(0).with_duplication(0, 5, 2.0),
            FaultScenario::new(0).with_partition(0, 5, PartitionKind::Islands(1)),
        ];
        for s in bad {
            assert!(s.validate().is_err(), "{s:?} should be rejected");
        }
    }

    #[test]
    fn loss_rate_takes_burst_maximum() {
        let s = scenario();
        assert_eq!(s.loss_rate_at(4), None);
        assert_eq!(s.loss_rate_at(5), Some(0.2));
        assert_eq!(s.loss_rate_at(9), Some(0.5));
        assert_eq!(s.loss_rate_at(11), Some(0.5));
        assert_eq!(s.loss_rate_at(12), None);
    }

    #[test]
    fn delay_and_duplication_windows() {
        let s = scenario();
        assert_eq!(s.extra_delay_at(0), 3);
        assert_eq!(s.extra_delay_at(4), 0);
        assert_eq!(s.duplication_rate_at(3), 0.25);
        assert_eq!(s.duplication_rate_at(6), 0.0);
    }

    #[test]
    fn partition_window_and_groups_are_deterministic() {
        let s = scenario();
        assert_eq!(s.active_partition(9), None);
        let (start, kind) = s.active_partition(10).unwrap();
        assert_eq!((start, kind), (10, PartitionKind::Bisect));
        assert_eq!(s.active_partition(20), None);
        // Pure function of (seed, window, slot): stable and 2-valued.
        let groups: Vec<u32> = (0..64).map(|slot| s.partition_group(10, slot, 2)).collect();
        let again: Vec<u32> = (0..64).map(|slot| s.partition_group(10, slot, 2)).collect();
        assert_eq!(groups, again);
        assert!(groups.contains(&0) && groups.contains(&1));
        assert!(groups.iter().all(|&g| g < 2));
    }

    #[test]
    fn crash_schedule_fires_once() {
        let s = scenario();
        assert!(s.crashes_at(14).is_empty());
        assert_eq!(s.crashes_at(15), vec![(25, 0.1)]);
        assert!(s.crashes_at(16).is_empty());
    }

    #[test]
    fn last_round_covers_all_events() {
        assert_eq!(scenario().last_round(), 25);
        assert_eq!(FaultScenario::new(0).last_round(), 0);
        let adv = FaultScenario::new(0).with_adversary(
            3,
            30,
            0.1,
            AdversaryModel::ValuePoisoning { magnitude: 4.0 },
        );
        assert_eq!(adv.last_round(), 30);
    }

    #[test]
    fn adversary_validation() {
        let good = FaultScenario::new(1).with_adversary(
            0,
            10,
            0.2,
            AdversaryModel::WeightInflation { factor: 8.0 },
        );
        assert!(good.validate().is_ok());
        let bad = [
            FaultScenario::new(1).with_adversary(
                0,
                10,
                1.5,
                AdversaryModel::ValuePoisoning { magnitude: 1.0 },
            ),
            FaultScenario::new(1).with_adversary(
                10,
                0,
                0.1,
                AdversaryModel::ValuePoisoning { magnitude: 1.0 },
            ),
            FaultScenario::new(1).with_adversary(
                0,
                10,
                0.1,
                AdversaryModel::ValuePoisoning {
                    magnitude: f64::NAN,
                },
            ),
            FaultScenario::new(1).with_adversary(
                0,
                10,
                0.1,
                AdversaryModel::WeightInflation { factor: 0.0 },
            ),
            FaultScenario::new(1).with_adversary(
                0,
                10,
                0.1,
                AdversaryModel::Equivocation { magnitude: -2.0 },
            ),
        ];
        for s in bad {
            assert!(s.validate().is_err(), "{s:?} should be rejected");
        }
    }

    #[test]
    fn adversary_window_latest_start_wins() {
        let s = FaultScenario::new(5)
            .with_adversary(
                0,
                20,
                0.1,
                AdversaryModel::ValuePoisoning { magnitude: 2.0 },
            )
            .with_adversary(10, 15, 0.3, AdversaryModel::WeightInflation { factor: 4.0 });
        assert!(s.adversary_at(25).is_none());
        let early = s.adversary_at(5).unwrap();
        assert_eq!(
            early.model,
            AdversaryModel::ValuePoisoning { magnitude: 2.0 }
        );
        let mid = s.adversary_at(12).unwrap();
        assert_eq!(mid.model, AdversaryModel::WeightInflation { factor: 4.0 });
        let late = s.adversary_at(16).unwrap();
        assert_eq!(
            late.model,
            AdversaryModel::ValuePoisoning { magnitude: 2.0 }
        );
    }

    #[test]
    fn byzantine_membership_is_deterministic_and_proportional() {
        let s = FaultScenario::new(11).with_adversary(
            0,
            50,
            0.2,
            AdversaryModel::ValuePoisoning { magnitude: 3.0 },
        );
        let adv = s.adversary_at(7).unwrap();
        let members: Vec<bool> = (0..5000).map(|slot| adv.is_byzantine(slot)).collect();
        let again: Vec<bool> = (0..5000).map(|slot| adv.is_byzantine(slot)).collect();
        assert_eq!(members, again);
        // Membership is constant across rounds of the same window.
        let later = s.adversary_at(40).unwrap();
        assert!((0..5000).all(|slot| later.is_byzantine(slot) == members[slot]));
        let count = members.iter().filter(|&&b| b).count();
        // ~20% of 5000 = 1000; allow generous sampling slack.
        assert!((800..1200).contains(&count), "got {count} byzantine");
        assert_eq!(adv.count_byzantine(0..5000), count as u32);
    }

    #[test]
    fn corruption_seeds_follow_model_semantics() {
        let poison = FaultScenario::new(3)
            .with_adversary(
                0,
                50,
                1.0,
                AdversaryModel::ValuePoisoning { magnitude: 2.0 },
            )
            .adversary_at(0)
            .unwrap();
        // Consistent lie: same seed regardless of round or partner.
        assert_eq!(
            poison.corruption_seed(1, 7, 9),
            poison.corruption_seed(30, 7, 2)
        );
        let equiv = FaultScenario::new(3)
            .with_adversary(0, 50, 1.0, AdversaryModel::Equivocation { magnitude: 2.0 })
            .adversary_at(0)
            .unwrap();
        // Different lie per partner and per round.
        assert_ne!(
            equiv.corruption_seed(1, 7, 9),
            equiv.corruption_seed(1, 7, 2)
        );
        assert_ne!(
            equiv.corruption_seed(1, 7, 9),
            equiv.corruption_seed(2, 7, 9)
        );
        // And deterministic.
        assert_eq!(
            equiv.corruption_seed(1, 7, 9),
            equiv.corruption_seed(1, 7, 9)
        );
    }

    #[test]
    fn drift_validation() {
        let good = [
            FaultScenario::new(1).with_drift(0, 10, DriftModel::LinearRamp { per_round: -0.5 }),
            FaultScenario::new(1).with_drift(5, 6, DriftModel::Step { shift: 100.0 }),
            FaultScenario::new(1).with_drift(0, 30, DriftModel::Jitter { sigma: 0.0 }),
            FaultScenario::new(1).with_drift(0, 30, DriftModel::Replacement { rate: 1.0 }),
        ];
        for s in good {
            assert!(s.validate().is_ok(), "{s:?} should validate");
        }
        let bad = [
            FaultScenario::new(1).with_drift(
                0,
                10,
                DriftModel::LinearRamp {
                    per_round: f64::NAN,
                },
            ),
            FaultScenario::new(1).with_drift(
                0,
                10,
                DriftModel::Step {
                    shift: f64::INFINITY,
                },
            ),
            FaultScenario::new(1).with_drift(0, 10, DriftModel::Jitter { sigma: -1.0 }),
            FaultScenario::new(1).with_drift(0, 10, DriftModel::Replacement { rate: 1.5 }),
            FaultScenario::new(1).with_drift(10, 0, DriftModel::Step { shift: 1.0 }),
        ];
        for s in bad {
            assert!(s.validate().is_err(), "{s:?} should be rejected");
        }
    }

    #[test]
    fn drift_window_semantics() {
        let s = FaultScenario::new(3)
            .with_drift(5, 15, DriftModel::LinearRamp { per_round: 2.0 })
            .with_drift(8, 20, DriftModel::Step { shift: 50.0 });
        assert!(s.has_drift());
        assert!(!FaultScenario::new(3).has_drift());
        assert!(s.drifts_at(4).is_empty());
        assert_eq!(
            s.drifts_at(5),
            vec![DriftModel::LinearRamp { per_round: 2.0 }]
        );
        // The step fires exactly once, at its window start.
        assert_eq!(
            s.drifts_at(8),
            vec![
                DriftModel::LinearRamp { per_round: 2.0 },
                DriftModel::Step { shift: 50.0 },
            ]
        );
        assert_eq!(
            s.drifts_at(9),
            vec![DriftModel::LinearRamp { per_round: 2.0 }]
        );
        assert!(s.drifts_at(15).is_empty());
        assert_eq!(s.last_round(), 20);
    }

    #[test]
    fn drift_rng_is_per_round_deterministic() {
        use rand::RngExt as _;
        let rt = FaultRuntime::new(FaultScenario::new(9).with_drift(
            0,
            10,
            DriftModel::Jitter { sigma: 1.0 },
        ));
        let a: Vec<f64> = {
            let mut rng = rt.drift_rng(3);
            (0..8).map(|_| rng.random::<f64>()).collect()
        };
        let b: Vec<f64> = {
            let mut rng = rt.drift_rng(3);
            (0..8).map(|_| rng.random::<f64>()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<f64> = {
            let mut rng = rt.drift_rng(4);
            (0..8).map(|_| rng.random::<f64>()).collect()
        };
        assert_ne!(a, c, "different rounds get different drift streams");
    }

    #[test]
    fn plan_flags_byzantine_endpoints() {
        let s = FaultScenario::new(17).with_adversary(
            0,
            10,
            0.5,
            AdversaryModel::Equivocation { magnitude: 2.0 },
        );
        let adv = s.adversary_at(0).unwrap();
        let byz = (0..100).find(|&slot| adv.is_byzantine(slot)).unwrap();
        let honest = (0..100).find(|&slot| !adv.is_byzantine(slot)).unwrap();
        assert!(adv.plan(0, honest, honest).is_none());
        let attack = adv.plan(0, byz, honest).unwrap();
        assert!(attack.initiator_seed.is_some());
        assert!(attack.partner_seed.is_none());
        let attack = adv.plan(0, honest, byz).unwrap();
        assert!(attack.initiator_seed.is_none());
        assert!(attack.partner_seed.is_some());
    }
}
