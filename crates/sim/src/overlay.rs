//! Random peer-sampling overlays.
//!
//! Adam2 assumes "each peer maintains links to a small number of randomly
//! selected nodes ... the set of neighbours of a peer changes over time, as
//! peers exchange neighbour lists" — i.e. a gossip-based peer-sampling
//! service (Jelasity et al., TOCS 2007). Two implementations are provided:
//!
//! * [`OverlayKind::Oracle`] — an idealised service where every live node is
//!   a potential neighbour. This is what PeerSim evaluations typically use
//!   and is the default.
//! * [`OverlayKind::Shuffle`] — fixed-degree partial views maintained by
//!   the full generic peer-sampling framework of
//!   [`peersampling`](crate::peersampling) (aged descriptors, tail peer
//!   selection, healing and swapping), with re-bootstrap when a view
//!   empties. Use it to check that results do not depend on the oracle
//!   idealisation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::RngExt as _;

use crate::node::{NodeId, NodeSlab};
use crate::peersampling::{ps_exchange, PeerSamplingPolicy, PsView};

/// Which peer-sampling implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverlayKind {
    /// Idealised peer sampling: any live node can be drawn as a neighbour.
    #[default]
    Oracle,
    /// Fixed-degree partial views maintained by the generic peer-sampling
    /// framework (see [`crate::peersampling`]).
    Shuffle,
}

/// Overlay configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlayConfig {
    /// Peer-sampling implementation.
    pub kind: OverlayKind,
    /// Target view size (only meaningful for [`OverlayKind::Shuffle`]; also
    /// the default sample size for neighbour-based bootstrap in the oracle).
    pub degree: usize,
    /// Number of view entries exchanged per shuffle.
    pub shuffle_len: usize,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        Self {
            kind: OverlayKind::Oracle,
            degree: 20,
            shuffle_len: 5,
        }
    }
}

impl OverlayConfig {
    /// An oracle overlay with the default degree.
    pub fn oracle() -> Self {
        Self::default()
    }

    /// A shuffling overlay with the given view size.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn shuffle(degree: usize) -> Self {
        assert!(degree > 0, "degree must be positive");
        Self {
            kind: OverlayKind::Shuffle,
            degree,
            shuffle_len: (degree / 4).max(1),
        }
    }
}

/// The overlay network: who can gossip with whom.
#[derive(Debug)]
pub struct Overlay {
    config: OverlayConfig,
    /// Per-slot partial views (only used by [`OverlayKind::Shuffle`]).
    views: Vec<PsView>,
    /// Reverse descriptor index: `holders[s]` lists the view slots whose
    /// views currently hold a descriptor for node slot `s`. Kept exact by
    /// every view mutation, it makes churn handling O(changed): removing
    /// a node scrubs its descriptor from exactly the views that hold it,
    /// instead of every view sweeping for dead entries every round.
    holders: Vec<Vec<u32>>,
    /// Optional network partition: per-slot group ids; nodes can only
    /// gossip within their group while set.
    partition: Option<Vec<u32>>,
    /// Scratch buffers reused across [`Overlay::maintain`] calls.
    ids_scratch: Vec<NodeId>,
    diff_a: Vec<NodeId>,
    diff_b: Vec<NodeId>,
}

/// Marks `holder` as holding a descriptor for `target` (idempotent).
fn idx_insert(holders: &mut [Vec<u32>], target: usize, holder: u32) {
    if let Some(list) = holders.get_mut(target) {
        if !list.contains(&holder) {
            list.push(holder);
        }
    }
}

/// Unmarks `holder` for `target`.
fn idx_remove(holders: &mut [Vec<u32>], target: usize, holder: u32) {
    if let Some(list) = holders.get_mut(target) {
        if let Some(pos) = list.iter().position(|h| *h == holder) {
            list.swap_remove(pos);
        }
    }
}

impl Overlay {
    /// Creates an empty overlay.
    pub fn new(config: OverlayConfig) -> Self {
        Self {
            config,
            views: Vec::new(),
            holders: Vec::new(),
            partition: None,
            ids_scratch: Vec::new(),
            diff_a: Vec::new(),
            diff_b: Vec::new(),
        }
    }

    /// The peer-sampling policy derived from the configured degree and
    /// shuffle length.
    pub fn sampling_policy(&self) -> PeerSamplingPolicy {
        let exchange_len = (self.config.shuffle_len + 1).clamp(1, self.config.degree.max(1));
        let healing = usize::from(exchange_len >= 2);
        let swap = (exchange_len - healing) / 2;
        PeerSamplingPolicy {
            view_size: self.config.degree.max(1),
            exchange_len,
            healing,
            swap,
            selection: crate::peersampling::PeerSelection::Tail,
        }
    }

    /// The configuration this overlay was built with.
    pub fn config(&self) -> OverlayConfig {
        self.config
    }

    /// Imposes a network partition: node in slot `i` belongs to group
    /// `groups[i]` and can only reach nodes of the same group. Slots
    /// beyond the vector default to group 0.
    pub fn set_partition(&mut self, groups: Vec<u32>) {
        self.partition = Some(groups);
    }

    /// Heals a partition.
    pub fn clear_partition(&mut self) {
        self.partition = None;
    }

    /// Whether a partition is currently in force.
    pub fn is_partitioned(&self) -> bool {
        self.partition.is_some()
    }

    /// The partition group of a node (0 when unpartitioned).
    pub fn group_of(&self, id: NodeId) -> u32 {
        self.partition
            .as_ref()
            .and_then(|g| g.get(id.slot()).copied())
            .unwrap_or(0)
    }

    fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        match &self.partition {
            None => true,
            Some(_) => self.group_of(from) == self.group_of(to),
        }
    }

    /// Registers a (possibly recycled) node: initialises its view with up
    /// to `degree` random live peers (fresh descriptors).
    pub fn register_node<N>(&mut self, id: NodeId, slab: &NodeSlab<N>, rng: &mut StdRng) {
        if self.views.len() <= id.slot() {
            self.views.resize(id.slot() + 1, PsView::new());
            self.holders.resize(id.slot() + 1, Vec::new());
        }
        let me = id.slot() as u32;
        // Unmark whatever the recycled slot's previous view held.
        for old in self.views[id.slot()].ids().collect::<Vec<_>>() {
            idx_remove(&mut self.holders, old.slot(), me);
        }
        self.views[id.slot()] = PsView::new();
        if self.config.kind == OverlayKind::Oracle {
            return;
        }
        let view = &mut self.views[id.slot()];
        for _ in 0..self.config.degree * 3 {
            if view.len() >= self.config.degree {
                break;
            }
            match slab.random_other(id, rng) {
                Some(other) => {
                    view.insert(other, 0);
                    idx_insert(&mut self.holders, other.slot(), me);
                }
                None => break,
            }
        }
    }

    /// Forgets a node: clears its own view and scrubs its descriptor from
    /// exactly the views holding it (via the reverse index), in O(changed)
    /// rather than by a global sweep.
    pub fn remove_node(&mut self, id: NodeId) {
        let me = id.slot() as u32;
        if let Some(view) = self.views.get_mut(id.slot()) {
            let targets: Vec<NodeId> = view.ids().collect();
            *view = PsView::new();
            for target in targets {
                idx_remove(&mut self.holders, target.slot(), me);
            }
        }
        if let Some(holding) = self.holders.get_mut(id.slot()) {
            for holder in std::mem::take(holding) {
                if let Some(view) = self.views.get_mut(holder as usize) {
                    view.remove_id(id);
                }
            }
        }
    }

    /// Draws a random live neighbour of `of`, or `None` if the node is
    /// alone.
    ///
    /// For the shuffle overlay, if every view entry turns out to be dead
    /// the peer-sampling service's recovery is modelled by falling back to
    /// a uniform random live node.
    pub fn random_neighbour<N>(
        &self,
        of: NodeId,
        slab: &NodeSlab<N>,
        rng: &mut StdRng,
    ) -> Option<NodeId> {
        match self.config.kind {
            OverlayKind::Oracle => {
                if self.partition.is_none() {
                    return slab.random_other(of, rng);
                }
                // Rejection-sample within the partition group.
                for _ in 0..64 {
                    let candidate = slab.random_other(of, rng)?;
                    if self.reachable(of, candidate) {
                        return Some(candidate);
                    }
                }
                None
            }
            OverlayKind::Shuffle => {
                let view = self.views.get(of.slot())?;
                if !view.is_empty() {
                    let entries = view.entries();
                    for _ in 0..entries.len().min(8) {
                        let candidate = entries[rng.random_range(0..entries.len())].id;
                        if candidate != of
                            && slab.contains(candidate)
                            && self.reachable(of, candidate)
                        {
                            return Some(candidate);
                        }
                    }
                }
                if self.partition.is_none() {
                    return slab.random_other(of, rng);
                }
                for _ in 0..64 {
                    let candidate = slab.random_other(of, rng)?;
                    if self.reachable(of, candidate) {
                        return Some(candidate);
                    }
                }
                None
            }
        }
    }

    /// Samples up to `count` distinct live neighbours of `of` (used for
    /// neighbour-based interpolation-point bootstrap).
    pub fn neighbour_sample<N>(
        &self,
        of: NodeId,
        slab: &NodeSlab<N>,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(count);
        match self.config.kind {
            OverlayKind::Oracle => {
                // The oracle view is "count random peers right now".
                let mut attempts = 0;
                while out.len() < count && attempts < count * 8 {
                    attempts += 1;
                    if let Some(other) = slab.random_other(of, rng) {
                        if self.reachable(of, other) && !out.contains(&other) {
                            out.push(other);
                        }
                    } else {
                        break;
                    }
                }
            }
            OverlayKind::Shuffle => {
                if let Some(view) = self.views.get(of.slot()) {
                    let mut shuffled: Vec<NodeId> = view
                        .ids()
                        .filter(|id| *id != of && slab.contains(*id) && self.reachable(of, *id))
                        .collect();
                    shuffled.shuffle(rng);
                    shuffled.truncate(count);
                    out = shuffled;
                }
            }
        }
        out
    }

    /// Runs one round of overlay maintenance (shuffle overlays only):
    /// ages descriptors, re-bootstraps empty views, and performs one
    /// peer-sampling exchange per node (healing + swapping per the derived
    /// [`PeerSamplingPolicy`]).
    ///
    /// Dead descriptors are *not* swept here: [`Overlay::remove_node`]
    /// scrubs them eagerly through the reverse holder index when the churn
    /// event happens, so per-round maintenance cost does not depend on
    /// past churn.
    pub fn maintain<N>(&mut self, slab: &NodeSlab<N>, rng: &mut StdRng) {
        if self.config.kind == OverlayKind::Oracle {
            return;
        }
        let policy = self.sampling_policy();
        let mut ids = std::mem::take(&mut self.ids_scratch);
        slab.collect_ids(&mut ids);
        if let Some(max_slot) = ids.iter().map(|id| id.slot()).max() {
            if self.views.len() <= max_slot {
                self.views.resize(max_slot + 1, PsView::new());
                self.holders.resize(max_slot + 1, Vec::new());
            }
        }
        {
            let views = &mut self.views;
            let holders = &mut self.holders;
            for id in &ids {
                let view = &mut views[id.slot()];
                view.increase_ages();
                // Re-bootstrap an empty view (the service's recovery path).
                let mut attempts = 0;
                while view.is_empty() && attempts < 16 {
                    attempts += 1;
                    if let Some(other) = slab.random_other(*id, rng) {
                        view.insert(other, 0);
                        idx_insert(holders, other.slot(), id.slot() as u32);
                    } else {
                        break;
                    }
                }
            }
        }
        for id in &ids {
            let id = *id;
            let partner = {
                let view = &self.views[id.slot()];
                let candidates: Vec<NodeId> = view
                    .ids()
                    .filter(|p| *p != id && slab.contains(*p) && self.reachable(id, *p))
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                match policy.selection {
                    crate::peersampling::PeerSelection::Random => {
                        candidates[rng.random_range(0..candidates.len())]
                    }
                    crate::peersampling::PeerSelection::Tail => {
                        // Oldest reachable descriptor.
                        let view = &self.views[id.slot()];
                        view.entries()
                            .iter()
                            .filter(|e| candidates.contains(&e.id))
                            .max_by_key(|e| e.age)
                            .map(|e| e.id)
                            .expect("candidates checked non-empty")
                    }
                }
            };
            if partner.slot() >= self.views.len() || partner.slot() == id.slot() {
                continue;
            }
            let a_slot = id.slot();
            let b_slot = partner.slot();
            self.diff_a.clear();
            self.diff_a.extend(self.views[a_slot].ids());
            self.diff_b.clear();
            self.diff_b.extend(self.views[b_slot].ids());
            let (a, b) = pair_views(&mut self.views, a_slot, b_slot);
            ps_exchange(id, a, partner, b, &policy, rng);
            // Update the reverse index from the exchange's view deltas
            // (O(degree) per exchange — same order as the exchange).
            for (slot, before) in [(a_slot, &self.diff_a), (b_slot, &self.diff_b)] {
                let after = &self.views[slot];
                for old in before {
                    if !after.ids().any(|x| x == *old) {
                        idx_remove(&mut self.holders, old.slot(), slot as u32);
                    }
                }
                for new in after.ids() {
                    if !before.contains(&new) {
                        idx_insert(&mut self.holders, new.slot(), slot as u32);
                    }
                }
            }
        }
        self.ids_scratch = ids;
    }

    /// The current view of `of` as descriptors (empty for oracle
    /// overlays).
    pub fn view(&self, of: NodeId) -> Vec<NodeId> {
        self.views
            .get(of.slot())
            .map(|v| v.ids().collect())
            .unwrap_or_default()
    }
}

/// Mutable access to two distinct view slots at once.
fn pair_views(views: &mut [PsView], a: usize, b: usize) -> (&mut PsView, &mut PsView) {
    debug_assert_ne!(a, b);
    if a < b {
        let (l, r) = views.split_at_mut(b);
        (&mut l[a], &mut r[0])
    } else {
        let (l, r) = views.split_at_mut(a);
        (&mut r[0], &mut l[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn slab_of(n: usize) -> (NodeSlab<u32>, Vec<NodeId>) {
        let mut slab = NodeSlab::new();
        let ids = (0..n as u32).map(|i| slab.insert(i)).collect();
        (slab, ids)
    }

    #[test]
    fn oracle_returns_random_other_nodes() {
        let (slab, ids) = slab_of(10);
        let overlay = Overlay::new(OverlayConfig::oracle());
        let mut rng = seeded_rng(1);
        for _ in 0..100 {
            let n = overlay.random_neighbour(ids[0], &slab, &mut rng).unwrap();
            assert_ne!(n, ids[0]);
            assert!(slab.contains(n));
        }
    }

    #[test]
    fn oracle_neighbour_sample_is_distinct() {
        let (slab, ids) = slab_of(50);
        let overlay = Overlay::new(OverlayConfig::oracle());
        let mut rng = seeded_rng(2);
        let sample = overlay.neighbour_sample(ids[3], &slab, 10, &mut rng);
        assert_eq!(sample.len(), 10);
        let mut dedup = sample.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert!(!sample.contains(&ids[3]));
    }

    #[test]
    fn shuffle_views_are_initialised_to_degree() {
        let (slab, _) = slab_of(100);
        let mut overlay = Overlay::new(OverlayConfig::shuffle(8));
        let mut rng = seeded_rng(3);
        for id in slab.ids() {
            overlay.register_node(id, &slab, &mut rng);
        }
        for id in slab.ids() {
            assert_eq!(overlay.view(id).len(), 8);
            assert!(!overlay.view(id).contains(&id));
        }
    }

    #[test]
    fn shuffle_maintain_keeps_views_live() {
        let (mut slab, ids) = slab_of(60);
        let mut overlay = Overlay::new(OverlayConfig::shuffle(6));
        let mut rng = seeded_rng(4);
        for id in slab.ids() {
            overlay.register_node(id, &slab, &mut rng);
        }
        // Kill a third of the network.
        for id in &ids[..20] {
            slab.remove(*id);
            overlay.remove_node(*id);
        }
        for _ in 0..5 {
            overlay.maintain(&slab, &mut rng);
        }
        for id in slab.ids() {
            let view = overlay.view(id);
            assert!(!view.is_empty());
            assert!(
                view.iter().all(|n| slab.contains(*n)),
                "dead entries survived"
            );
            assert!(!view.contains(&id), "self loop");
        }
    }

    #[test]
    fn remove_node_scrubs_descriptors_incrementally() {
        let (mut slab, ids) = slab_of(60);
        let mut overlay = Overlay::new(OverlayConfig::shuffle(6));
        let mut rng = seeded_rng(7);
        for id in slab.ids() {
            overlay.register_node(id, &slab, &mut rng);
        }
        for _ in 0..3 {
            overlay.maintain(&slab, &mut rng);
        }
        // Remove a quarter of the network: their descriptors must vanish
        // from every surviving view immediately — no maintenance sweep.
        for id in &ids[..15] {
            slab.remove(*id);
            overlay.remove_node(*id);
        }
        for id in slab.ids() {
            let view = overlay.view(id);
            assert!(
                view.iter().all(|n| slab.contains(*n)),
                "dead descriptor survived the incremental scrub"
            );
        }
        // Recycled slots re-register cleanly.
        let recycled = slab.insert(999);
        overlay.register_node(recycled, &slab, &mut rng);
        assert!(!overlay.view(recycled).is_empty());
    }

    #[test]
    fn shuffle_random_neighbour_is_live() {
        let (mut slab, ids) = slab_of(30);
        let mut overlay = Overlay::new(OverlayConfig::shuffle(5));
        let mut rng = seeded_rng(5);
        for id in slab.ids() {
            overlay.register_node(id, &slab, &mut rng);
        }
        for id in &ids[..10] {
            slab.remove(*id);
        }
        for id in slab.ids() {
            for _ in 0..20 {
                if let Some(n) = overlay.random_neighbour(id, &slab, &mut rng) {
                    assert!(slab.contains(n));
                    assert_ne!(n, id);
                }
            }
        }
    }

    #[test]
    fn views_mix_over_time() {
        let (slab, ids) = slab_of(200);
        let mut overlay = Overlay::new(OverlayConfig::shuffle(10));
        let mut rng = seeded_rng(6);
        for id in slab.ids() {
            overlay.register_node(id, &slab, &mut rng);
        }
        let before: Vec<NodeId> = overlay.view(ids[0]).to_vec();
        for _ in 0..20 {
            overlay.maintain(&slab, &mut rng);
        }
        let after = overlay.view(ids[0]);
        let overlap = after.iter().filter(|n| before.contains(n)).count();
        assert!(
            overlap < before.len(),
            "view should change over 20 shuffle rounds (overlap {overlap}/{})",
            before.len()
        );
    }
}

#[cfg(test)]
mod sampling_quality_tests {
    use super::*;
    use crate::node::NodeSlab;
    use crate::rng::seeded_rng;

    /// The shuffle overlay must approximate uniform peer sampling: over
    /// many rounds, how often each node is selected as a partner should
    /// concentrate around the mean (Jelasity et al. show shuffling views
    /// approach uniform random graphs).
    #[test]
    fn shuffle_overlay_samples_near_uniformly() {
        let n = 200;
        let mut slab = NodeSlab::new();
        let ids: Vec<NodeId> = (0..n as u32).map(|i| slab.insert(i)).collect();
        let mut overlay = Overlay::new(OverlayConfig::shuffle(12));
        let mut rng = seeded_rng(99);
        for id in &ids {
            overlay.register_node(*id, &slab, &mut rng);
        }
        let mut selected = vec![0u32; n];
        let rounds = 300;
        for _ in 0..rounds {
            overlay.maintain(&slab, &mut rng);
            for id in &ids {
                if let Some(partner) = overlay.random_neighbour(*id, &slab, &mut rng) {
                    selected[partner.slot()] += 1;
                }
            }
        }
        let mean = selected.iter().sum::<u32>() as f64 / n as f64;
        assert!(mean > 250.0, "selection volume too low: {mean}");
        // No node may be starved or wildly over-selected.
        for (slot, count) in selected.iter().enumerate() {
            let ratio = *count as f64 / mean;
            assert!(
                (0.5..2.0).contains(&ratio),
                "slot {slot} selected {count} times (mean {mean:.1})"
            );
        }
    }

    #[test]
    fn partitioned_overlay_never_crosses_groups() {
        let n = 100;
        let mut slab = NodeSlab::new();
        let ids: Vec<NodeId> = (0..n as u32).map(|i| slab.insert(i)).collect();
        let mut overlay = Overlay::new(OverlayConfig::oracle());
        let mut rng = seeded_rng(100);
        let groups: Vec<u32> = (0..n as u32).map(|i| i % 3).collect();
        overlay.set_partition(groups.clone());
        assert!(overlay.is_partitioned());
        for id in &ids {
            for _ in 0..30 {
                if let Some(p) = overlay.random_neighbour(*id, &slab, &mut rng) {
                    assert_eq!(
                        groups[p.slot()],
                        groups[id.slot()],
                        "cross-partition neighbour"
                    );
                }
            }
            let sample = overlay.neighbour_sample(*id, &slab, 10, &mut rng);
            assert!(sample.iter().all(|p| groups[p.slot()] == groups[id.slot()]));
        }
        overlay.clear_partition();
        assert!(!overlay.is_partitioned());
        assert_eq!(overlay.group_of(ids[5]), 0);
    }
}
