//! The cycle-driven simulation engine.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::RngExt as _;

use crate::churn::{ChurnModel, ChurnState};
use crate::node::{NodeId, NodeSlab};
use crate::overlay::{Overlay, OverlayConfig};
use crate::rng::seeded_rng;
use crate::stats::NetStats;

/// A gossip protocol driven by the [`Engine`].
///
/// One protocol instance is shared across all nodes (it plays the role of
/// PeerSim's protocol class); per-node state lives in [`Protocol::Node`].
pub trait Protocol {
    /// Per-node protocol state.
    type Node;

    /// Creates the state of a fresh node (initial population and churn
    /// replacements).
    fn make_node(&mut self, rng: &mut StdRng) -> Self::Node;

    /// Executes one round step for node `id`: typically one push–pull
    /// gossip exchange with a random neighbour plus local bookkeeping.
    ///
    /// The node is guaranteed to be live when called. Implementations use
    /// [`Ctx::random_neighbour`] to pick a partner and
    /// [`NodeSlab::pair_mut`] for the symmetric exchange.
    fn on_round(&mut self, id: NodeId, ctx: &mut Ctx<'_, Self::Node>);

    /// Called after a node joined a running system (churn replacement),
    /// with the node already registered in the overlay. The default does
    /// nothing; protocols can use it to bootstrap the newcomer from its
    /// neighbours.
    fn on_join(&mut self, id: NodeId, ctx: &mut Ctx<'_, Self::Node>) {
        let _ = (id, ctx);
    }

    /// Called when a node leaves (churn). The default drops the state.
    fn on_leave(&mut self, id: NodeId, node: Self::Node) {
        let _ = (id, node);
    }
}

/// What happened to the two messages of one push–pull exchange.
///
/// Sampled by [`Ctx::sample_exchange_fate`] according to the engine's
/// configured loss rate. Protocols that ignore it behave as on a lossless
/// network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeFate {
    /// Both messages delivered.
    Complete,
    /// The request never reached the partner: no state changes anywhere,
    /// but the sender paid for the request.
    RequestLost,
    /// The partner processed the request but its response was lost: only
    /// the partner's state changes (an *asymmetric* exchange).
    ResponseLost,
}

/// Per-round execution context handed to [`Protocol`] callbacks.
///
/// Fields are public so a protocol can split-borrow them (e.g. hold a
/// [`NodeSlab::pair_mut`] result while charging [`NetStats`]).
pub struct Ctx<'a, N> {
    /// Current round number (starts at 0).
    pub round: u64,
    /// All live nodes.
    pub nodes: &'a mut NodeSlab<N>,
    /// The overlay (read-only during a round).
    pub overlay: &'a Overlay,
    /// Engine RNG.
    pub rng: &'a mut StdRng,
    /// Network accounting.
    pub net: &'a mut NetStats,
    /// Per-message loss probability (0 by default).
    pub loss_rate: f64,
}

impl<N> Ctx<'_, N> {
    /// Samples the fate of one request/response exchange under the
    /// engine's loss rate: each of the two messages is lost independently
    /// with probability `loss_rate`.
    pub fn sample_exchange_fate(&mut self) -> ExchangeFate {
        if self.loss_rate <= 0.0 {
            return ExchangeFate::Complete;
        }
        if self.rng.random::<f64>() < self.loss_rate {
            ExchangeFate::RequestLost
        } else if self.rng.random::<f64>() < self.loss_rate {
            ExchangeFate::ResponseLost
        } else {
            ExchangeFate::Complete
        }
    }

    /// Draws a random live neighbour of `of`.
    pub fn random_neighbour(&mut self, of: NodeId) -> Option<NodeId> {
        self.overlay.random_neighbour(of, self.nodes, self.rng)
    }

    /// Samples up to `count` distinct live neighbours of `of`.
    pub fn neighbour_sample(&mut self, of: NodeId, count: usize) -> Vec<NodeId> {
        self.overlay
            .neighbour_sample(of, self.nodes, count, self.rng)
    }

    /// Number of live nodes (the simulator's ground truth, *not* available
    /// to a real decentralised node — protocols must estimate it).
    pub fn live_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Initial number of nodes.
    pub n: usize,
    /// Master seed; all engine randomness derives from it.
    pub seed: u64,
    /// Overlay configuration.
    pub overlay: OverlayConfig,
    /// Churn model.
    pub churn: ChurnModel,
    /// Per-message loss probability in `[0, 1]` (see
    /// [`Ctx::sample_exchange_fate`]).
    pub loss_rate: f64,
}

impl EngineConfig {
    /// Creates a configuration for `n` nodes with the default oracle
    /// overlay and no churn.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "n must be positive");
        Self {
            n,
            seed,
            overlay: OverlayConfig::default(),
            churn: ChurnModel::None,
            loss_rate: 0.0,
        }
    }

    /// Replaces the overlay configuration.
    pub fn with_overlay(mut self, overlay: OverlayConfig) -> Self {
        self.overlay = overlay;
        self
    }

    /// Replaces the churn model.
    pub fn with_churn(mut self, churn: ChurnModel) -> Self {
        self.churn = churn;
        self
    }

    /// Sets the per-message loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss_rate` is outside `[0, 1]`.
    pub fn with_loss_rate(mut self, loss_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_rate),
            "loss_rate must be in [0, 1]"
        );
        self.loss_rate = loss_rate;
        self
    }
}

/// The cycle-driven simulator.
///
/// Each [`run_round`](Engine::run_round):
///
/// 1. applies churn (replacing departed nodes with fresh ones),
/// 2. runs overlay maintenance (view shuffling, if configured),
/// 3. calls [`Protocol::on_round`] once per live node, in a fresh random
///    order.
pub struct Engine<P: Protocol> {
    protocol: P,
    nodes: NodeSlab<P::Node>,
    overlay: Overlay,
    churn: ChurnModel,
    churn_state: ChurnState,
    rng: StdRng,
    round: u64,
    net: NetStats,
    loss_rate: f64,
}

impl<P: Protocol> std::fmt::Debug for Engine<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("round", &self.round)
            .field("live_nodes", &self.nodes.len())
            .field("churn", &self.churn)
            .finish()
    }
}

impl<P: Protocol> Engine<P> {
    /// Builds an engine with `config.n` fresh nodes.
    pub fn new(config: EngineConfig, mut protocol: P) -> Self {
        assert!(config.n > 0, "n must be positive");
        let mut rng = seeded_rng(config.seed);
        let mut nodes = NodeSlab::with_capacity(config.n);
        let mut overlay = Overlay::new(config.overlay);
        let mut churn_state = ChurnState::new();
        let mut net = NetStats::new();
        for _ in 0..config.n {
            let state = protocol.make_node(&mut rng);
            let id = nodes.insert(state);
            churn_state.on_insert(&config.churn, id, 0, &mut rng);
        }
        net.ensure_slots(nodes.slot_count());
        // Register views only after the whole population exists so initial
        // views are uniform over it.
        for id in nodes.id_vec() {
            overlay.register_node(id, &nodes, &mut rng);
        }
        Self {
            protocol,
            nodes,
            overlay,
            churn: config.churn,
            churn_state,
            rng,
            round: 0,
            net,
            loss_rate: config.loss_rate,
        }
    }

    /// Runs a single round.
    pub fn run_round(&mut self) {
        self.net.begin_round();
        self.apply_churn();
        self.overlay.maintain(&self.nodes, &mut self.rng);
        let mut order = self.nodes.id_vec();
        order.shuffle(&mut self.rng);
        for id in order {
            if !self.nodes.contains(id) {
                continue;
            }
            let mut ctx = Ctx {
                round: self.round,
                nodes: &mut self.nodes,
                overlay: &self.overlay,
                rng: &mut self.rng,
                net: &mut self.net,
                loss_rate: self.loss_rate,
            };
            self.protocol.on_round(id, &mut ctx);
        }
        self.round += 1;
    }

    /// Runs `n` rounds.
    pub fn run_rounds(&mut self, n: u64) {
        for _ in 0..n {
            self.run_round();
        }
    }

    fn apply_churn(&mut self) {
        let victims: Vec<NodeId> = match self.churn {
            ChurnModel::None => return,
            ChurnModel::Uniform { rate } => {
                let k = self
                    .churn_state
                    .uniform_replacements(rate, self.nodes.len());
                let mut picked = Vec::with_capacity(k);
                for _ in 0..k {
                    if let Some(id) = self.nodes.random_id(&mut self.rng) {
                        if !picked.contains(&id) {
                            picked.push(id);
                        }
                    }
                }
                picked
            }
            ChurnModel::Sessions { .. } => self.churn_state.due_deaths(self.round),
        };
        if victims.is_empty() {
            return;
        }
        let count = victims.len();
        for id in victims {
            if let Some(state) = self.nodes.remove(id) {
                self.overlay.remove_node(id);
                self.protocol.on_leave(id, state);
            }
        }
        // Replace departures to keep the population size constant, as the
        // paper's churn model does.
        let mut joined = Vec::with_capacity(count);
        for _ in 0..count {
            let state = self.protocol.make_node(&mut self.rng);
            let id = self.nodes.insert(state);
            self.net.reset_slot(id.slot());
            self.churn_state
                .on_insert(&self.churn, id, self.round, &mut self.rng);
            self.overlay.register_node(id, &self.nodes, &mut self.rng);
            joined.push(id);
        }
        for id in joined {
            let mut ctx = Ctx {
                round: self.round,
                nodes: &mut self.nodes,
                overlay: &self.overlay,
                rng: &mut self.rng,
                net: &mut self.net,
                loss_rate: self.loss_rate,
            };
            self.protocol.on_join(id, &mut ctx);
        }
    }

    /// Current round number (number of completed rounds).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The live nodes.
    pub fn nodes(&self) -> &NodeSlab<P::Node> {
        &self.nodes
    }

    /// Mutable access to the live nodes (for test/experiment setup).
    pub fn nodes_mut(&mut self) -> &mut NodeSlab<P::Node> {
        &mut self.nodes
    }

    /// The protocol instance.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Mutable access to the protocol instance (e.g. to trigger an
    /// aggregation instance from the experiment harness).
    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.protocol
    }

    /// Network statistics.
    pub fn net(&self) -> &NetStats {
        &self.net
    }

    /// Mutable network statistics (e.g. to reset between phases).
    pub fn net_mut(&mut self) -> &mut NetStats {
        &mut self.net
    }

    /// The overlay.
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// Engine RNG (e.g. for experiment-level sampling decisions that
    /// should be reproducible with the run).
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Splits the network into `k` uniformly random partition groups from
    /// the next round on: gossip partners are only drawn within a node's
    /// group. Churn replacements land in group 0. Use
    /// [`heal_partition`](Engine::heal_partition) to reconnect.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn partition_into(&mut self, k: u32) {
        assert!(k > 0, "k must be positive");
        let mut groups = vec![0u32; self.nodes.slot_count()];
        for id in self.nodes.id_vec() {
            groups[id.slot()] = self.rng.random_range(0..k);
        }
        self.overlay.set_partition(groups);
    }

    /// Heals a network partition.
    pub fn heal_partition(&mut self) {
        self.overlay.clear_partition();
    }

    /// The partition group of a node (0 when unpartitioned).
    pub fn partition_group(&self, id: NodeId) -> u32 {
        self.overlay.group_of(id)
    }

    /// Replaces the churn model from the next round on.
    pub fn set_churn(&mut self, churn: ChurnModel) {
        self.churn = churn;
        self.churn_state.clear();
        if let ChurnModel::Sessions { .. } = churn {
            // (Re)schedule sessions for the existing population.
            for id in self.nodes.id_vec() {
                self.churn_state
                    .on_insert(&churn, id, self.round, &mut self.rng);
            }
        }
    }

    /// Invokes `f` with an execution context outside a round (used by
    /// experiment harnesses to trigger protocol actions deterministically).
    pub fn with_ctx<R>(&mut self, f: impl FnOnce(&mut P, &mut Ctx<'_, P::Node>) -> R) -> R {
        let mut ctx = Ctx {
            round: self.round,
            nodes: &mut self.nodes,
            overlay: &self.overlay,
            rng: &mut self.rng,
            net: &mut self.net,
            loss_rate: self.loss_rate,
        };
        f(&mut self.protocol, &mut ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::OverlayKind;

    /// Test protocol: push–pull averaging of a per-node value.
    struct Averaging {
        next_value: f64,
    }

    impl Protocol for Averaging {
        type Node = f64;

        fn make_node(&mut self, _rng: &mut StdRng) -> f64 {
            self.next_value += 1.0;
            self.next_value
        }

        fn on_round(&mut self, id: NodeId, ctx: &mut Ctx<'_, f64>) {
            let Some(partner) = ctx.random_neighbour(id) else {
                return;
            };
            let Some((a, b)) = ctx.nodes.pair_mut(id, partner) else {
                return;
            };
            let mean = (*a + *b) / 2.0;
            *a = mean;
            *b = mean;
            ctx.net.charge_exchange(id, partner, 8, 8);
        }
    }

    #[test]
    fn averaging_converges_to_global_mean() {
        let mut engine = Engine::new(EngineConfig::new(128, 42), Averaging { next_value: 0.0 });
        engine.run_rounds(60);
        let expected = 129.0 / 2.0;
        for (_, v) in engine.nodes().iter() {
            assert!((v - expected).abs() < 1e-9, "value {v} far from {expected}");
        }
    }

    #[test]
    fn averaging_conserves_mass_every_round() {
        let mut engine = Engine::new(EngineConfig::new(64, 7), Averaging { next_value: 0.0 });
        let initial: f64 = engine.nodes().iter().map(|(_, v)| *v).sum();
        for _ in 0..20 {
            engine.run_round();
            let sum: f64 = engine.nodes().iter().map(|(_, v)| *v).sum();
            assert!(
                (sum - initial).abs() < 1e-6,
                "mass leaked: {sum} vs {initial}"
            );
        }
    }

    #[test]
    fn averaging_converges_on_shuffle_overlay_too() {
        let config = EngineConfig::new(128, 42).with_overlay(OverlayConfig {
            kind: OverlayKind::Shuffle,
            degree: 10,
            shuffle_len: 3,
        });
        let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
        engine.run_rounds(60);
        let expected = 129.0 / 2.0;
        for (_, v) in engine.nodes().iter() {
            assert!((v - expected).abs() < 1e-6, "value {v} far from {expected}");
        }
    }

    #[test]
    fn churn_keeps_population_constant() {
        let config = EngineConfig::new(100, 1).with_churn(ChurnModel::uniform(0.05));
        let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
        for _ in 0..50 {
            engine.run_round();
            assert_eq!(engine.nodes().len(), 100);
        }
    }

    #[test]
    fn session_churn_keeps_population_constant() {
        let config = EngineConfig::new(100, 2).with_churn(ChurnModel::sessions(10.0));
        let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
        for _ in 0..100 {
            engine.run_round();
            assert_eq!(engine.nodes().len(), 100);
        }
    }

    #[test]
    fn network_traffic_is_recorded() {
        let mut engine = Engine::new(EngineConfig::new(10, 3), Averaging { next_value: 0.0 });
        engine.run_round();
        // Every node initiates one exchange of 8+8 bytes.
        assert_eq!(engine.net().total_msgs(), 20);
        assert_eq!(engine.net().total_bytes(), 160);
    }

    #[test]
    fn rounds_advance() {
        let mut engine = Engine::new(EngineConfig::new(4, 4), Averaging { next_value: 0.0 });
        assert_eq!(engine.round(), 0);
        engine.run_rounds(5);
        assert_eq!(engine.round(), 5);
    }

    #[test]
    fn partitions_prevent_cross_group_averaging() {
        let mut engine = Engine::new(EngineConfig::new(200, 8), Averaging { next_value: 0.0 });
        engine.partition_into(2);
        engine.run_rounds(40);
        // Each group converges to its own mean; the two means must differ
        // (groups hold different value subsets with probability ~1).
        let mut groups: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
        for (id, v) in engine.nodes().iter() {
            groups[engine.partition_group(id) as usize].push(*v);
        }
        assert!(!groups[0].is_empty() && !groups[1].is_empty());
        for g in &groups {
            let mean = g.iter().sum::<f64>() / g.len() as f64;
            for v in g {
                assert!((v - mean).abs() < 1e-6, "group not internally converged");
            }
        }
        let m0 = groups[0].iter().sum::<f64>() / groups[0].len() as f64;
        let m1 = groups[1].iter().sum::<f64>() / groups[1].len() as f64;
        assert!((m0 - m1).abs() > 1e-6, "groups should disagree while split");

        // Healing reconnects: everyone converges to the global mean.
        engine.heal_partition();
        engine.run_rounds(60);
        let expected = 201.0 / 2.0;
        for (_, v) in engine.nodes().iter() {
            assert!((v - expected).abs() < 1e-6, "post-heal value {v}");
        }
    }

    struct JoinTracker {
        joins: usize,
        leaves: usize,
    }

    impl Protocol for JoinTracker {
        type Node = ();

        fn make_node(&mut self, _rng: &mut StdRng) {}

        fn on_round(&mut self, _id: NodeId, _ctx: &mut Ctx<'_, ()>) {}

        fn on_join(&mut self, _id: NodeId, _ctx: &mut Ctx<'_, ()>) {
            self.joins += 1;
        }

        fn on_leave(&mut self, _id: NodeId, _node: ()) {
            self.leaves += 1;
        }
    }

    #[test]
    fn join_and_leave_hooks_fire_under_churn() {
        let config = EngineConfig::new(200, 5).with_churn(ChurnModel::uniform(0.01));
        let mut engine = Engine::new(
            config,
            JoinTracker {
                joins: 0,
                leaves: 0,
            },
        );
        engine.run_rounds(50);
        let p = engine.protocol();
        assert_eq!(p.joins, p.leaves);
        // 1%/round * 200 nodes * 50 rounds = ~100 replacements.
        assert!((80..=120).contains(&p.joins), "joins {}", p.joins);
    }
}
