//! The cycle-driven simulation engine.
//!
//! Two execution paths drive a round:
//!
//! * [`Engine::run_round`] — the sequential reference semantics: every live
//!   node runs [`Protocol::on_round`] in a fresh random order, exchanges
//!   applied immediately.
//! * [`Engine::run_round_parallel`] — a phase-split path for protocols that
//!   opt in via the `par_*` methods of [`Protocol`]: a *plan* phase where
//!   every node concurrently does its local work and picks its gossip
//!   partner using a counter-based per-node RNG stream, and an *apply*
//!   phase where the planned exchanges are bucketed into slot-disjoint
//!   batches and applied conflict-free across threads (with a sequential
//!   fallback for small, contended batches). Results are bit-identical for
//!   every thread count.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::RngExt as _;

use crate::churn::{ChurnModel, ChurnState};
use crate::executor;
use crate::faults::{
    ActiveAdversary, DriftModel, DriftOp, FaultRuntime, FaultScenario, FaultTrace, PlannedAttack,
    RoundFaults,
};
use crate::node::{NodeId, NodeSlab};
use crate::overlay::{Overlay, OverlayConfig};
use crate::rng::{derive_seed, par_stream_rng, seeded_rng};
use crate::stats::{NetShard, NetStats};
use crate::telemetry::{SimTelemetry, TelemetryHandle};

/// Error returned when a simulator configuration is invalid (see
/// [`EngineConfig::validate`] and [`FaultScenario::validate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfigError {
    message: String,
}

impl SimConfigError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid simulator configuration: {}", self.message)
    }
}

impl std::error::Error for SimConfigError {}

/// Stream tag separating the parallel path's per-node RNG streams from the
/// main engine RNG (both derive from the master seed).
const PAR_SEED_STREAM: u64 = 0x7061_7261; // "para"

/// RNG phase counters for [`par_stream_rng`]: local work vs. planning.
const PAR_PHASE_LOCAL: u64 = 0;
const PAR_PHASE_PLAN: u64 = 1;

/// Batches smaller than this are applied inline on the driving thread: the
/// contended tail of the batch schedule is typically a handful of pairs,
/// where spawn overhead would dwarf the work.
const PAR_APPLY_MIN_BATCH: usize = 64;

/// A gossip protocol driven by the [`Engine`].
///
/// One protocol instance is shared across all nodes (it plays the role of
/// PeerSim's protocol class); per-node state lives in [`Protocol::Node`].
pub trait Protocol {
    /// Per-node protocol state.
    type Node;

    /// Creates the state of a fresh node (initial population and churn
    /// replacements).
    fn make_node(&mut self, rng: &mut StdRng) -> Self::Node;

    /// Executes one round step for node `id`: typically one push–pull
    /// gossip exchange with a random neighbour plus local bookkeeping.
    ///
    /// The node is guaranteed to be live when called. Implementations use
    /// [`Ctx::random_neighbour`] to pick a partner and
    /// [`NodeSlab::pair_mut`] for the symmetric exchange.
    fn on_round(&mut self, id: NodeId, ctx: &mut Ctx<'_, Self::Node>);

    /// Called after a node joined a running system (churn replacement),
    /// with the node already registered in the overlay. The default does
    /// nothing; protocols can use it to bootstrap the newcomer from its
    /// neighbours.
    fn on_join(&mut self, id: NodeId, ctx: &mut Ctx<'_, Self::Node>) {
        let _ = (id, ctx);
    }

    /// Called when a node leaves (churn). The default drops the state.
    fn on_leave(&mut self, id: NodeId, node: Self::Node) {
        let _ = (id, node);
    }

    /// Applies one attribute-drift operation to a live node (fault
    /// injection under a [`crate::FaultEvent::Drift`] window). `rng` is the
    /// scenario-seeded drift stream — implementations must draw any
    /// randomness (e.g. a replacement value) from it, never from shared
    /// state, so replay stays bit-identical. The default ignores drift
    /// (protocols without a drifting attribute).
    fn drift_node(&mut self, id: NodeId, node: &mut Self::Node, op: DriftOp, rng: &mut StdRng) {
        let _ = (id, node, op, rng);
    }

    /// Whether this protocol implements the plan/apply parallel round API
    /// (`par_local` / `par_absorb` / `par_apply`).
    ///
    /// The default is `false`, in which case
    /// [`Engine::run_round_parallel`] transparently adapts to the
    /// sequential [`on_round`](Protocol::on_round) path.
    fn parallel_capable(&self) -> bool {
        false
    }

    /// Parallel phase 1 — purely local per-node work (e.g. finalising due
    /// aggregation instances and drawing scheduling decisions).
    ///
    /// Called concurrently for every live node with exclusive access to
    /// that node only; implementations must not touch shared protocol
    /// state (hence `&self`) — shared effects are deferred to
    /// [`par_absorb`](Protocol::par_absorb) via the returned [`ParLocal`].
    /// `rng` is a deterministic stream unique to `(seed, round, node slot)`.
    fn par_local(
        &self,
        id: NodeId,
        node: &mut Self::Node,
        round: u64,
        rng: &mut StdRng,
    ) -> ParLocal {
        let _ = (id, node, round, rng);
        ParLocal::default()
    }

    /// Parallel phase 2 — sequential absorption of one node's [`ParLocal`]
    /// report into shared protocol state, in deterministic slot order.
    ///
    /// This is where work that genuinely needs `&mut self` or the full
    /// [`Ctx`] happens (counters, starting new aggregation instances, ...).
    /// Implementations must not remove nodes — liveness is fixed for the
    /// rest of the round.
    fn par_absorb(&mut self, id: NodeId, report: &ParLocal, ctx: &mut Ctx<'_, Self::Node>) {
        let _ = (id, report, ctx);
    }

    /// Parallel phase 3 — applies one planned exchange between `initiator`
    /// and `partner`, both exclusively borrowed.
    ///
    /// Called concurrently for slot-disjoint pairs; shared state access is
    /// `&self` only. Returns the wire traffic, which the engine charges to
    /// [`NetStats`] through per-thread shards.
    fn par_apply(
        &self,
        plan: &PlannedExchange,
        round: u64,
        initiator: &mut Self::Node,
        partner: &mut Self::Node,
    ) -> ExchangeTraffic {
        let _ = (plan, round, initiator, partner);
        ExchangeTraffic::default()
    }
}

/// Result of one node's [`Protocol::par_local`] step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParLocal {
    /// Locally completed events (for Adam2: finalised instances that
    /// produced an estimate), summed into shared state by `par_absorb`.
    pub completions: u64,
    /// Locally failed events (for Adam2: instances that expired without
    /// reaching all-values mode).
    pub failures: u64,
    /// Locally restarted events (for Adam2: self-healing instances that
    /// voted to re-enter averaging instead of finalising).
    pub restarts: u64,
    /// Whether the engine must invoke [`Protocol::par_absorb`]-side
    /// sequential work beyond counter sums (for Adam2: start a new
    /// aggregation instance at this node).
    pub wants_sequential: bool,
    /// Whether this node initiates a gossip exchange this round.
    pub initiates: bool,
}

/// One gossip exchange scheduled by the parallel plan phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedExchange {
    /// The node that initiates the push–pull exchange.
    pub initiator: NodeId,
    /// Its chosen gossip partner (always a distinct live node).
    pub partner: NodeId,
    /// The sampled fate of the exchange under the engine's loss rate and
    /// repair policy.
    pub fate: ExchangeFate,
    /// Number of request transmissions (> 1 under retransmission).
    pub request_msgs: u32,
    /// Number of response transmissions (> 1 under retransmission).
    pub response_msgs: u32,
    /// Adversarial corruption planned for this exchange, when a Byzantine
    /// window of the attached [`FaultScenario`] covers this round and at
    /// least one endpoint is Byzantine. `None` on honest exchanges.
    pub attack: Option<PlannedAttack>,
}

/// Wire traffic of one applied exchange, as reported by
/// [`Protocol::par_apply`].
///
/// `request` is charged initiator → partner, `response` partner →
/// initiator; `None` means the message was never sent (e.g. the response
/// after a lost request).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeTraffic {
    /// Bytes of the request message, if sent.
    pub request: Option<usize>,
    /// Bytes of the response message, if sent.
    pub response: Option<usize>,
    /// Bitmask of estimate bootstraps this exchange performed: bit 0 = the
    /// initiator adopted its partner's completed estimate, bit 1 = the
    /// partner adopted the initiator's. Purely observational (telemetry
    /// counts the set bits); zero for protocols without bootstrap.
    pub bootstraps: u32,
    /// Partner contributions rejected outright by the robust merge path's
    /// plausibility screen (zero for vanilla protocols).
    pub robust_rejects: u32,
    /// Per-component contributions trimmed or influence-capped by the
    /// robust merge path (zero for vanilla protocols).
    pub robust_trims: u32,
}

/// What happened to the two messages of one push–pull exchange.
///
/// Sampled by [`Ctx::sample_exchange_fate`] according to the engine's
/// configured loss rate. Protocols that ignore it behave as on a lossless
/// network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeFate {
    /// Both messages delivered.
    Complete,
    /// The request never reached the partner: no state changes anywhere,
    /// but the sender paid for the request.
    RequestLost,
    /// The partner processed the request but its response was lost: only
    /// the partner's state changes (an *asymmetric* exchange). Never
    /// produced when [`ExchangeRepair`] is enabled — the retransmission
    /// path converts it into `Complete` or `Aborted`.
    ResponseLost,
    /// Repair-path outcome: retransmissions were exhausted after the
    /// partner had received at least one request, so the partner rolled
    /// back its staged half of the exchange. No state changes anywhere,
    /// but every transmission was paid for.
    Aborted,
}

/// Push–pull atomicity repair policy.
///
/// When enabled, an exchange becomes a two-phase commit: the partner
/// *stages* its half of the merge when a request arrives and resends the
/// cached response idempotently for re-requests carrying the same sequence
/// number; the initiator commits on receipt. If all `1 + max_retries`
/// attempts fail, the partner rolls the staged state back on timeout and
/// the exchange aborts with no state change anywhere — the asymmetric
/// [`ExchangeFate::ResponseLost`] mass leak cannot occur.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeRepair {
    /// Whether the two-phase repair path is active.
    pub enabled: bool,
    /// Retransmission attempts after the first (so `1 + max_retries`
    /// request transmissions in total before aborting).
    pub max_retries: u32,
}

impl Default for ExchangeRepair {
    fn default() -> Self {
        Self {
            enabled: false,
            max_retries: 2,
        }
    }
}

impl ExchangeRepair {
    /// An enabled policy with the default retry budget.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// Sampled outcome of one exchange: its fate plus how many times each of
/// the two messages was actually transmitted (for byte accounting under
/// retransmission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeOutcome {
    /// What happened to the exchange.
    pub fate: ExchangeFate,
    /// Request transmissions (initiator → partner).
    pub request_msgs: u32,
    /// Response transmissions (partner → initiator).
    pub response_msgs: u32,
}

/// Per-round execution context handed to [`Protocol`] callbacks.
///
/// Fields are public so a protocol can split-borrow them (e.g. hold a
/// [`NodeSlab::pair_mut`] result while charging [`NetStats`]).
pub struct Ctx<'a, N> {
    /// Current round number (starts at 0).
    pub round: u64,
    /// All live nodes.
    pub nodes: &'a mut NodeSlab<N>,
    /// The overlay (read-only during a round).
    pub overlay: &'a Overlay,
    /// Engine RNG.
    pub rng: &'a mut StdRng,
    /// Network accounting.
    pub net: &'a mut NetStats,
    /// Per-message loss probability (0 by default).
    pub loss_rate: f64,
    /// Exchange repair policy (disabled by default).
    pub repair: ExchangeRepair,
    /// Telemetry sink; a zero-cost no-op unless the engine has telemetry
    /// attached (see [`Engine::attach_telemetry`]).
    pub telemetry: TelemetryHandle<'a>,
    /// The Byzantine adversary active this round, if the attached
    /// [`FaultScenario`] has an adversary window covering it. Protocols use
    /// it to plan per-exchange corruption (see [`ActiveAdversary::plan`]).
    pub adversary: Option<ActiveAdversary>,
}

impl<N> Ctx<'_, N> {
    /// Samples the fate of one request/response exchange under the
    /// engine's loss rate: each of the two messages is lost independently
    /// with probability `loss_rate`.
    pub fn sample_exchange_fate(&mut self) -> ExchangeFate {
        sample_fate(self.rng, self.loss_rate)
    }

    /// Samples the full outcome of one exchange under the engine's loss
    /// rate and repair policy, including transmission counts.
    pub fn sample_exchange(&mut self) -> ExchangeOutcome {
        sample_exchange(self.rng, self.loss_rate, self.repair)
    }

    /// Draws a random live neighbour of `of`.
    ///
    /// When a targeted-partner adversary is active and `of` is Byzantine,
    /// the draw is overridden: the attacker deterministically aims at the
    /// round's victim (the lowest live slot) instead of sampling the
    /// overlay, concentrating its poison on one node. No engine RNG is
    /// consumed by the override.
    pub fn random_neighbour(&mut self, of: NodeId) -> Option<NodeId> {
        if let Some(victim) = targeted_victim(&self.adversary, self.nodes, of) {
            return Some(victim);
        }
        self.overlay.random_neighbour(of, self.nodes, self.rng)
    }

    /// Samples up to `count` distinct live neighbours of `of`.
    pub fn neighbour_sample(&mut self, of: NodeId, count: usize) -> Vec<NodeId> {
        self.overlay
            .neighbour_sample(of, self.nodes, count, self.rng)
    }

    /// Number of live nodes (the simulator's ground truth, *not* available
    /// to a real decentralised node — protocols must estimate it).
    pub fn live_count(&self) -> usize {
        self.nodes.len()
    }

    /// Charges the traffic of one applied exchange to [`NetStats`] and
    /// records it in telemetry (when attached) — the sequential-path
    /// counterpart of the engine's parallel apply accounting, using the
    /// identical arithmetic.
    pub fn charge_planned(&mut self, plan: &PlannedExchange, traffic: ExchangeTraffic) {
        charge_traffic(self.net, plan, traffic);
        self.telemetry.record_exchange(self.round, plan, &traffic);
    }
}

/// Samples the fate of one request/response exchange: each of the two
/// messages is lost independently with probability `loss_rate`. Shared by
/// the sequential [`Ctx::sample_exchange_fate`] and the parallel plan
/// phase (which draws from per-node streams).
/// Charges the traffic of one applied exchange directly to [`NetStats`]
/// (the inline/contended apply path; the threaded path goes through
/// [`NetShard`]s with identical arithmetic).
fn charge_traffic(net: &mut NetStats, plan: &PlannedExchange, traffic: ExchangeTraffic) {
    if let Some(bytes) = traffic.request {
        for _ in 0..plan.request_msgs.max(1) {
            net.charge_message(plan.initiator, plan.partner, bytes);
        }
    }
    if let Some(bytes) = traffic.response {
        for _ in 0..plan.response_msgs.max(1) {
            net.charge_message(plan.partner, plan.initiator, bytes);
        }
    }
}

/// The deterministic victim of a targeted-partner attack launched by `of`:
/// the lowest live slot other than the attacker itself. `None` when no
/// targeted adversary is active, `of` is honest, or no other node is live —
/// callers then fall through to the normal random draw.
fn targeted_victim<N>(
    adversary: &Option<ActiveAdversary>,
    nodes: &NodeSlab<N>,
    of: NodeId,
) -> Option<NodeId> {
    let adv = adversary.as_ref()?;
    if !adv.model.targets_partner() || !adv.is_byzantine(of.slot()) {
        return None;
    }
    let mut ids = nodes.ids();
    let first = ids.next()?;
    if first == of {
        ids.next()
    } else {
        Some(first)
    }
}

fn sample_fate(rng: &mut StdRng, loss_rate: f64) -> ExchangeFate {
    if loss_rate <= 0.0 {
        return ExchangeFate::Complete;
    }
    if rng.random::<f64>() < loss_rate {
        ExchangeFate::RequestLost
    } else if rng.random::<f64>() < loss_rate {
        ExchangeFate::ResponseLost
    } else {
        ExchangeFate::Complete
    }
}

/// Samples one exchange under `loss_rate` and the `repair` policy.
///
/// With repair disabled this is [`sample_fate`] plus the trivial
/// transmission counts (a lost request still costs one request message, a
/// lost response costs both). With repair enabled the exchange is retried
/// up to `1 + max_retries` times: each attempt transmits a request, and the
/// partner (once it has received any request) retransmits its staged
/// response for every request that arrives. Exhausting the budget yields
/// [`ExchangeFate::Aborted`] (partner received something, rolls back) or
/// [`ExchangeFate::RequestLost`] (partner never heard from the initiator).
fn sample_exchange(rng: &mut StdRng, loss_rate: f64, repair: ExchangeRepair) -> ExchangeOutcome {
    if loss_rate <= 0.0 {
        return ExchangeOutcome {
            fate: ExchangeFate::Complete,
            request_msgs: 1,
            response_msgs: 1,
        };
    }
    if !repair.enabled {
        let fate = sample_fate(rng, loss_rate);
        let response_msgs = match fate {
            ExchangeFate::RequestLost => 0,
            _ => 1,
        };
        return ExchangeOutcome {
            fate,
            request_msgs: 1,
            response_msgs,
        };
    }
    let mut request_msgs = 0u32;
    let mut response_msgs = 0u32;
    let mut partner_received = false;
    for _ in 0..=repair.max_retries {
        request_msgs += 1;
        if rng.random::<f64>() < loss_rate {
            continue; // request lost; initiator times out and retries
        }
        partner_received = true;
        response_msgs += 1;
        if rng.random::<f64>() < loss_rate {
            continue; // response lost; re-request resends the staged reply
        }
        return ExchangeOutcome {
            fate: ExchangeFate::Complete,
            request_msgs,
            response_msgs,
        };
    }
    ExchangeOutcome {
        fate: if partner_received {
            ExchangeFate::Aborted
        } else {
            ExchangeFate::RequestLost
        },
        request_msgs,
        response_msgs,
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Initial number of nodes.
    pub n: usize,
    /// Master seed; all engine randomness derives from it.
    pub seed: u64,
    /// Overlay configuration.
    pub overlay: OverlayConfig,
    /// Churn model.
    pub churn: ChurnModel,
    /// Per-message loss probability in `[0, 1]` (see
    /// [`Ctx::sample_exchange_fate`]).
    pub loss_rate: f64,
    /// Exchange repair policy (two-phase commit with retransmission);
    /// disabled by default.
    pub repair: ExchangeRepair,
    /// Worker threads for [`Engine::run_round_parallel`]: `0` means "use
    /// [`std::thread::available_parallelism`]", `1` runs the parallel
    /// semantics inline. Thread count never affects results.
    pub threads: usize,
}

impl EngineConfig {
    /// Creates a configuration for `n` nodes with the default oracle
    /// overlay and no churn.
    ///
    /// Invariants (checked by [`validate`](EngineConfig::validate), which
    /// [`Engine::try_new`] calls): `n > 0`; `loss_rate` finite and in
    /// `[0, 1]` (NaN rejected); churn rates finite and valid for their
    /// model.
    pub fn new(n: usize, seed: u64) -> Self {
        Self {
            n,
            seed,
            overlay: OverlayConfig::default(),
            churn: ChurnModel::None,
            loss_rate: 0.0,
            repair: ExchangeRepair::default(),
            threads: 1,
        }
    }

    /// Replaces the overlay configuration.
    pub fn with_overlay(mut self, overlay: OverlayConfig) -> Self {
        self.overlay = overlay;
        self
    }

    /// Replaces the churn model.
    pub fn with_churn(mut self, churn: ChurnModel) -> Self {
        self.churn = churn;
        self
    }

    /// Sets the per-message loss probability. Must be finite and in
    /// `[0, 1]`; violations are reported by
    /// [`validate`](EngineConfig::validate) rather than panicking here.
    pub fn with_loss_rate(mut self, loss_rate: f64) -> Self {
        self.loss_rate = loss_rate;
        self
    }

    /// Replaces the exchange repair policy.
    pub fn with_repair(mut self, repair: ExchangeRepair) -> Self {
        self.repair = repair;
        self
    }

    /// Sets the worker-thread count for [`Engine::run_round_parallel`]
    /// (`0` = auto-detect).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Validates the configuration, collecting every rate/size invariant
    /// in one place instead of scattered panics:
    ///
    /// * `n > 0`,
    /// * `loss_rate` finite and in `[0, 1]` — NaN is rejected explicitly
    ///   (NaN comparisons would silently disable loss sampling),
    /// * churn rates finite and within their model's domain.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if self.n == 0 {
            return Err(SimConfigError::new("n must be positive"));
        }
        if !self.loss_rate.is_finite() || !(0.0..=1.0).contains(&self.loss_rate) {
            return Err(SimConfigError::new(format!(
                "loss_rate must be finite and in [0, 1], got {}",
                self.loss_rate
            )));
        }
        match self.churn {
            ChurnModel::None => {}
            ChurnModel::Uniform { rate } => {
                if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                    return Err(SimConfigError::new(format!(
                        "uniform churn rate must be finite and in [0, 1], got {rate}"
                    )));
                }
            }
            ChurnModel::Sessions { mean_rounds } => {
                if !mean_rounds.is_finite() || mean_rounds <= 0.0 {
                    return Err(SimConfigError::new(format!(
                        "session churn mean_rounds must be finite and positive, got {mean_rounds}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// The cycle-driven simulator.
///
/// Each [`run_round`](Engine::run_round):
///
/// 1. applies churn (replacing departed nodes with fresh ones),
/// 2. runs overlay maintenance (view shuffling, if configured),
/// 3. calls [`Protocol::on_round`] once per live node, in a fresh random
///    order.
pub struct Engine<P: Protocol> {
    protocol: P,
    nodes: NodeSlab<P::Node>,
    overlay: Overlay,
    churn: ChurnModel,
    churn_state: ChurnState,
    rng: StdRng,
    /// Base of the counter-based per-node streams used by the parallel
    /// path; independent of `rng` so both paths share one master seed.
    par_seed: u64,
    threads: usize,
    round: u64,
    net: NetStats,
    /// Effective loss rate this round (fault bursts may override the base).
    loss_rate: f64,
    /// Configured loss rate, restored when no burst is active.
    base_loss_rate: f64,
    repair: ExchangeRepair,
    faults: Option<FaultRuntime>,
    /// Adversary window covering the round about to run (resolved by
    /// `begin_round_faults`); `None` outside Byzantine windows.
    adversary: Option<ActiveAdversary>,
    /// Reused per-round shuffle buffer (avoids one allocation per round).
    order_buf: Vec<NodeId>,
    /// Reused per-round live-id buffer for the parallel path.
    ids_buf: Vec<NodeId>,
    /// Attached telemetry store; `None` (the default) records nothing.
    telemetry: Option<Box<SimTelemetry>>,
}

impl<P: Protocol> std::fmt::Debug for Engine<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("round", &self.round)
            .field("live_nodes", &self.nodes.len())
            .field("churn", &self.churn)
            .finish()
    }
}

impl<P: Protocol> Engine<P> {
    /// Builds an engine with `config.n` fresh nodes.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`try_new`](Engine::try_new) for a fallible build.
    pub fn new(config: EngineConfig, protocol: P) -> Self {
        Self::try_new(config, protocol).expect("invalid engine configuration")
    }

    /// Builds an engine with `config.n` fresh nodes, validating the
    /// configuration first.
    pub fn try_new(config: EngineConfig, mut protocol: P) -> Result<Self, SimConfigError> {
        config.validate()?;
        let mut rng = seeded_rng(config.seed);
        let mut nodes = NodeSlab::with_capacity(config.n);
        let mut overlay = Overlay::new(config.overlay);
        let mut churn_state = ChurnState::new();
        let mut net = NetStats::new();
        for _ in 0..config.n {
            let state = protocol.make_node(&mut rng);
            let id = nodes.insert(state);
            churn_state.on_insert(&config.churn, id, 0, &mut rng);
        }
        net.ensure_slots(nodes.slot_count());
        // Register views only after the whole population exists so initial
        // views are uniform over it.
        for id in nodes.id_vec() {
            overlay.register_node(id, &nodes, &mut rng);
        }
        Ok(Self {
            protocol,
            nodes,
            overlay,
            churn: config.churn,
            churn_state,
            rng,
            par_seed: derive_seed(config.seed, PAR_SEED_STREAM),
            threads: config.threads,
            round: 0,
            net,
            loss_rate: config.loss_rate,
            base_loss_rate: config.loss_rate,
            repair: config.repair,
            faults: None,
            adversary: None,
            order_buf: Vec::new(),
            ids_buf: Vec::new(),
            telemetry: None,
        })
    }

    /// Attaches a telemetry store; subsequent rounds record metrics,
    /// events, and per-round snapshots into it. Recording never touches
    /// any engine RNG, so an instrumented run is bit-identical to an
    /// uninstrumented one.
    pub fn attach_telemetry(&mut self, telemetry: SimTelemetry) {
        self.telemetry = Some(Box::new(telemetry));
    }

    /// Detaches and returns the telemetry store, if one was attached.
    pub fn detach_telemetry(&mut self) -> Option<SimTelemetry> {
        self.telemetry.take().map(|b| *b)
    }

    /// The attached telemetry store, if any.
    pub fn telemetry(&self) -> Option<&SimTelemetry> {
        self.telemetry.as_deref()
    }

    /// Mutable access to the attached telemetry store, if any (e.g. for
    /// bench harnesses to annotate rounds with error measurements).
    pub fn telemetry_mut(&mut self) -> Option<&mut SimTelemetry> {
        self.telemetry.as_deref_mut()
    }

    /// Attaches a [`FaultScenario`] to replay from the next round on,
    /// validating it first. Replaces any previously attached scenario and
    /// clears its trace.
    pub fn set_fault_scenario(&mut self, scenario: FaultScenario) -> Result<(), SimConfigError> {
        scenario.validate()?;
        self.faults = Some(FaultRuntime::new(scenario));
        Ok(())
    }

    /// The trace of injected faults, if a scenario is attached.
    pub fn fault_trace(&self) -> Option<&FaultTrace> {
        self.faults.as_ref().map(|rt| &rt.trace)
    }

    /// Runs a single round.
    pub fn run_round(&mut self) {
        self.net.begin_round();
        self.begin_round_faults();
        self.apply_churn();
        self.overlay.maintain(&self.nodes, &mut self.rng);
        let mut order = std::mem::take(&mut self.order_buf);
        order.clear();
        order.extend(self.nodes.ids());
        order.shuffle(&mut self.rng);
        for &id in &order {
            if !self.nodes.contains(id) {
                continue;
            }
            let mut ctx = Ctx {
                round: self.round,
                nodes: &mut self.nodes,
                overlay: &self.overlay,
                rng: &mut self.rng,
                net: &mut self.net,
                loss_rate: self.loss_rate,
                repair: self.repair,
                telemetry: TelemetryHandle::new(self.telemetry.as_deref_mut()),
                adversary: self.adversary,
            };
            self.protocol.on_round(id, &mut ctx);
        }
        self.order_buf = order;
        self.end_round_telemetry();
        self.round += 1;
    }

    /// Closes the telemetry round (if attached) with the engine-known
    /// totals. Must run after all round work, before `round` advances.
    fn end_round_telemetry(&mut self) {
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.end_round(
                self.round,
                self.nodes.len() as u64,
                self.net.round_bytes(),
                self.net.round_msgs(),
            );
        }
    }

    /// Runs `n` rounds.
    pub fn run_rounds(&mut self, n: u64) {
        for _ in 0..n {
            self.run_round();
        }
    }

    /// Runs a single round on the phase-split parallel path.
    ///
    /// Falls back to [`run_round`](Engine::run_round) when the protocol is
    /// not [`parallel_capable`](Protocol::parallel_capable). Otherwise the
    /// round proceeds in phases:
    ///
    /// 1. churn + overlay maintenance (sequential, engine RNG — identical
    ///    to the sequential path),
    /// 2. **plan** — concurrently for every live node: local work
    ///    ([`Protocol::par_local`]) and partner/fate selection, each node
    ///    drawing from its own counter-based RNG stream,
    /// 3. **absorb** — sequential slot-order fold of the local reports
    ///    into shared protocol state ([`Protocol::par_absorb`]),
    /// 4. **apply** — the planned exchanges are greedily coloured into
    ///    slot-disjoint batches; big batches run conflict-free across
    ///    threads ([`Protocol::par_apply`]) with traffic accumulated in
    ///    per-thread [`NetShard`]s, small contended batches run inline.
    ///
    /// Because every random draw is keyed by `(seed, round, slot)` and all
    /// stat reductions are commutative sums, the outcome is bit-identical
    /// for every thread count (including 1).
    pub fn run_round_parallel(&mut self)
    where
        P: Sync,
        P::Node: Send + Sync,
    {
        if !self.protocol.parallel_capable() {
            self.run_round();
            return;
        }
        let threads = self.resolved_threads();
        self.net.begin_round();
        self.begin_round_faults();
        self.apply_churn();
        self.overlay.maintain(&self.nodes, &mut self.rng);

        let round = self.round;
        let par_seed = self.par_seed;
        let loss_rate = self.loss_rate;
        let repair = self.repair;
        let slot_count = self.nodes.slot_count();
        self.net.ensure_slots(slot_count);

        // Phase 2a: local work, exclusive per-node access, slot-chunked.
        let mut reports: Vec<Option<ParLocal>> = vec![None; slot_count];
        {
            let protocol = &self.protocol;
            self.nodes
                .par_for_each_live_mut(threads, &mut reports, |id, node| {
                    let mut rng =
                        par_stream_rng(par_seed, round, id.slot() as u64, PAR_PHASE_LOCAL);
                    protocol.par_local(id, node, round, &mut rng)
                });
        }

        // Phase 2b: partner + fate selection, shared slab/overlay access.
        let mut ids = std::mem::take(&mut self.ids_buf);
        self.nodes.collect_ids(&mut ids);
        let mut plans: Vec<Option<PlannedExchange>> = vec![None; ids.len()];
        {
            let nodes = &self.nodes;
            let overlay = &self.overlay;
            let reports = &reports;
            let adversary = self.adversary;
            executor::par_zip(&mut ids, &mut plans, threads, |_, id_chunk, plan_chunk| {
                for (id, plan) in id_chunk.iter().zip(plan_chunk.iter_mut()) {
                    let initiates = reports[id.slot()].is_some_and(|r| r.initiates);
                    if !initiates {
                        continue;
                    }
                    let mut rng = par_stream_rng(par_seed, round, id.slot() as u64, PAR_PHASE_PLAN);
                    // Mirror of `Ctx::random_neighbour`: a targeted
                    // attacker aims at the deterministic victim without
                    // consuming its plan stream.
                    let partner = match targeted_victim(&adversary, nodes, *id) {
                        Some(victim) => victim,
                        None => {
                            let Some(partner) = overlay.random_neighbour(*id, nodes, &mut rng)
                            else {
                                continue;
                            };
                            partner
                        }
                    };
                    let outcome = sample_exchange(&mut rng, loss_rate, repair);
                    let attack = adversary
                        .as_ref()
                        .and_then(|adv| adv.plan(round, id.slot(), partner.slot()));
                    *plan = Some(PlannedExchange {
                        initiator: *id,
                        partner,
                        fate: outcome.fate,
                        request_msgs: outcome.request_msgs,
                        response_msgs: outcome.response_msgs,
                        attack,
                    });
                }
            });
        }

        // Phase 3: absorb local reports sequentially, in slot order.
        for &id in &ids {
            let Some(report) = reports[id.slot()] else {
                continue;
            };
            let mut ctx = Ctx {
                round: self.round,
                nodes: &mut self.nodes,
                overlay: &self.overlay,
                rng: &mut self.rng,
                net: &mut self.net,
                loss_rate: self.loss_rate,
                repair: self.repair,
                telemetry: TelemetryHandle::new(self.telemetry.as_deref_mut()),
                adversary: self.adversary,
            };
            self.protocol.par_absorb(id, &report, &mut ctx);
        }
        self.ids_buf = ids;

        // Phase 4: colour the exchanges into slot-disjoint batches. The
        // greedy rule assigns each exchange the earliest batch after the
        // last batch touching either endpoint, so within one batch every
        // slot appears at most once.
        let plans: Vec<PlannedExchange> = plans.into_iter().flatten().collect();
        // Plan-derived telemetry (started/repaired/aborted events and
        // counters) is emitted here, in deterministic slot order, for every
        // planned exchange — identical at any thread count. The
        // traffic-derived half is recorded at apply time below.
        if let Some(t) = self.telemetry.as_deref_mut() {
            for p in &plans {
                t.record_exchange_plan(round, p);
            }
        }
        let mut next_batch = vec![0u32; slot_count];
        let mut num_batches = 0u32;
        let mut batch_of = Vec::with_capacity(plans.len());
        for p in &plans {
            let b = next_batch[p.initiator.slot()].max(next_batch[p.partner.slot()]);
            batch_of.push(b);
            next_batch[p.initiator.slot()] = b + 1;
            next_batch[p.partner.slot()] = b + 1;
            num_batches = num_batches.max(b + 1);
        }
        let mut batches: Vec<Vec<PlannedExchange>> = vec![Vec::new(); num_batches as usize];
        for (p, b) in plans.iter().zip(&batch_of) {
            batches[*b as usize].push(*p);
        }

        for batch in &batches {
            // A batch is slot-disjoint, so its exchanges apply
            // concurrently: its width is the round's in-flight peak.
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.record_inflight_exchanges(batch.len() as u64);
            }
            if threads <= 1 || batch.len() < PAR_APPLY_MIN_BATCH {
                // Contended / tiny tail: apply inline, charging NetStats
                // directly (same commutative sums as the shard path).
                for p in batch {
                    let Some((a, b)) = self.nodes.pair_mut(p.initiator, p.partner) else {
                        continue;
                    };
                    let traffic = self.protocol.par_apply(p, round, a, b);
                    charge_traffic(&mut self.net, p, traffic);
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        t.record_exchange_traffic(&traffic);
                    }
                }
            } else {
                let protocol = &self.protocol;
                let raw = self.nodes.raw_slots();
                // Telemetry traffic recording shards like NetStats does: a
                // clone of an empty shard per chunk, merged in chunk order.
                let tshard_seed = self.telemetry.as_deref().map(|t| t.shard());
                let histograms = self.telemetry.as_deref().map(|t| t.traffic_histograms());
                let shards = executor::par_chunks_map(batch, threads, |chunk| {
                    let mut shard = NetShard::with_slots(slot_count);
                    let mut tshard = tshard_seed.clone();
                    for p in chunk {
                        // Safety: slots within one batch are pairwise
                        // distinct by construction, and batches are applied
                        // one at a time, so these two borrows are the only
                        // live references to their slots.
                        let (Some(a), Some(b)) = (unsafe { raw.get_mut(p.initiator) }, unsafe {
                            raw.get_mut(p.partner)
                        }) else {
                            continue;
                        };
                        let traffic = protocol.par_apply(p, round, a, b);
                        if let (Some(ts), Some((hreq, hresp))) = (tshard.as_mut(), histograms) {
                            ts.record_traffic(&traffic, hreq, hresp);
                        }
                        if let Some(bytes) = traffic.request {
                            for _ in 0..p.request_msgs.max(1) {
                                shard.charge_message(p.initiator, p.partner, bytes);
                            }
                        }
                        if let Some(bytes) = traffic.response {
                            for _ in 0..p.response_msgs.max(1) {
                                shard.charge_message(p.partner, p.initiator, bytes);
                            }
                        }
                    }
                    (shard, tshard)
                });
                for (shard, tshard) in &shards {
                    self.net.merge_shard(shard);
                    if let (Some(t), Some(ts)) = (self.telemetry.as_deref_mut(), tshard.as_ref()) {
                        t.merge_shard(ts);
                    }
                }
            }
        }
        self.end_round_telemetry();
        self.round += 1;
    }

    /// Runs `n` rounds on the parallel path.
    pub fn run_rounds_parallel(&mut self, n: u64)
    where
        P: Sync,
        P::Node: Send + Sync,
    {
        for _ in 0..n {
            self.run_round_parallel();
        }
    }

    /// Replaces the worker-thread count (`0` = auto-detect) used by
    /// [`run_round_parallel`](Engine::run_round_parallel).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// The configured worker-thread count (`0` = auto-detect).
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Applies the attached fault scenario for the round about to run:
    /// burst-loss overrides, partition set/heal, crash waves, and
    /// recoveries. All fault randomness comes from scenario-seeded streams
    /// (never the engine RNG), so the injected faults are identical under
    /// the sequential and parallel paths at any thread count.
    fn begin_round_faults(&mut self) {
        self.adversary = None;
        let Some(mut rt) = self.faults.take() else {
            return;
        };
        let round = self.round;

        // 1. Burst loss: override or restore the effective loss rate.
        let loss_override = rt.scenario.loss_rate_at(round);
        self.loss_rate = loss_override.unwrap_or(self.base_loss_rate);
        if loss_override.is_some() {
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.record_fault_loss(round, self.loss_rate);
            }
        }

        // 2. Partition: (re)compute the group assignment while a window is
        // active (covering slots created by recoveries/churn since the cut)
        // and heal when it closes. Groups are a pure function of the
        // scenario seed, window start and slot.
        let active = rt.scenario.active_partition(round);
        let mut partition_checksum = 0u64;
        match active {
            Some((start, kind)) => {
                let k = kind.groups();
                let mut groups = vec![0u32; self.nodes.slot_count()];
                for id in self.nodes.id_vec() {
                    let g = rt.scenario.partition_group(start, id.slot(), k);
                    groups[id.slot()] = g;
                    partition_checksum ^= derive_seed(id.slot() as u64, u64::from(g));
                }
                self.overlay.set_partition(groups);
                rt.partition_applied = Some(start);
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.record_fault_partition(round, partition_checksum);
                }
            }
            None => {
                if rt.partition_applied.take().is_some() {
                    self.overlay.clear_partition();
                }
            }
        }

        // 3. Crash waves firing this round: victims are drawn from a
        // scenario-seeded shuffle of the live population (taken in slot
        // order), state wiped, removed from the overlay.
        let mut crashed_slots: Vec<u32> = Vec::new();
        for (recover_round, fraction) in rt.scenario.crashes_at(round) {
            let live = self.nodes.len();
            let k = ((fraction * live as f64).round() as usize).min(live.saturating_sub(1));
            if k == 0 {
                continue;
            }
            let mut ids = self.nodes.id_vec();
            let mut rng = rt.crash_rng(round);
            ids.shuffle(&mut rng);
            let mut wave = 0u32;
            for id in ids.into_iter().take(k) {
                if let Some(state) = self.nodes.remove(id) {
                    self.overlay.remove_node(id);
                    self.protocol.on_leave(id, state);
                    crashed_slots.push(id.slot() as u32);
                    wave += 1;
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        t.record_crash(round, id.slot() as u32);
                    }
                }
            }
            if wave > 0 {
                rt.pending_recoveries.push((recover_round, wave));
            }
        }

        // 4. Recoveries due this round: the same number of fresh nodes
        // rejoins via peer sampling. Their initial state comes from a
        // scenario-seeded stream so it is execution-path independent; the
        // `on_join` bootstrap uses the engine RNG like any churn join.
        let mut recovered = 0u32;
        rt.pending_recoveries.retain(|&(when, count)| {
            if when <= round {
                recovered += count;
                false
            } else {
                true
            }
        });
        if recovered > 0 {
            let mut rng = rt.recover_rng(round);
            let mut joined = Vec::with_capacity(recovered as usize);
            for _ in 0..recovered {
                let state = self.protocol.make_node(&mut rng);
                let id = self.nodes.insert(state);
                self.net.reset_slot(id.slot());
                self.churn_state.on_insert(&self.churn, id, round, &mut rng);
                self.overlay.register_node(id, &self.nodes, &mut rng);
                joined.push(id);
            }
            for id in joined {
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.record_recovery(round, id.slot() as u32);
                }
                let mut ctx = Ctx {
                    round: self.round,
                    nodes: &mut self.nodes,
                    overlay: &self.overlay,
                    rng: &mut self.rng,
                    net: &mut self.net,
                    loss_rate: self.loss_rate,
                    repair: self.repair,
                    telemetry: TelemetryHandle::new(self.telemetry.as_deref_mut()),
                    adversary: self.adversary,
                };
                self.protocol.on_join(id, &mut ctx);
            }
        }

        // 5. Attribute drift: while a window is active, rewrite live
        // nodes' values in slot order. All randomness comes from the
        // scenario's per-round drift stream (never the engine RNG), and
        // the loop is sequential on every execution path, so the mutation
        // replays bit-identically at any thread count.
        let drifted = self.apply_drift(&rt, round);
        if drifted > 0 {
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.record_fault_drift(round, drifted);
            }
        }

        // 6. Byzantine adversary: resolve the window covering this round
        // (if any) and count the compromised slots among the live
        // population. Membership is a pure function of the scenario seed,
        // so the count — like everything else in the trace — is identical
        // under both engine paths at any thread count.
        self.adversary = rt.scenario.adversary_at(round);
        let byzantine = self
            .adversary
            .as_ref()
            .map(|adv| adv.count_byzantine(self.nodes.ids().map(|id| id.slot())))
            .unwrap_or(0);

        if loss_override.is_some()
            || active.is_some()
            || !crashed_slots.is_empty()
            || recovered > 0
            || self.adversary.is_some()
            || drifted > 0
        {
            rt.trace.records.push(RoundFaults {
                round,
                loss_rate: self.loss_rate,
                partition_active: active.is_some(),
                partition_checksum,
                crashed: crashed_slots,
                recovered,
                byzantine,
                drifted,
            });
        }
        self.faults = Some(rt);
    }

    /// Applies the drift models active at `round` to every live node in
    /// slot order, returning the number of node mutations performed.
    fn apply_drift(&mut self, rt: &FaultRuntime, round: u64) -> u32 {
        let models = rt.scenario.drifts_at(round);
        if models.is_empty() {
            return 0;
        }
        let mut rng = rt.drift_rng(round);
        let ids = self.nodes.id_vec();
        let mut drifted = 0u32;
        for model in models {
            for &id in &ids {
                let op = match model {
                    DriftModel::LinearRamp { per_round } => Some(DriftOp::Shift(per_round)),
                    DriftModel::Step { shift } => Some(DriftOp::Shift(shift)),
                    DriftModel::Jitter { sigma } => {
                        // One draw per node, consumed even when sigma is 0,
                        // keeping the stream aligned across scenarios.
                        let u = rng.random::<f64>();
                        Some(DriftOp::Shift((2.0 * u - 1.0) * sigma))
                    }
                    DriftModel::Replacement { rate } => {
                        (rng.random::<f64>() < rate).then_some(DriftOp::Replace)
                    }
                };
                let Some(op) = op else { continue };
                if let Some(node) = self.nodes.get_mut(id) {
                    self.protocol.drift_node(id, node, op, &mut rng);
                    drifted += 1;
                }
            }
        }
        drifted
    }

    fn apply_churn(&mut self) {
        let victims: Vec<NodeId> = match self.churn {
            ChurnModel::None => return,
            ChurnModel::Uniform { rate } => {
                let k = self
                    .churn_state
                    .uniform_replacements(rate, self.nodes.len());
                let mut picked = Vec::with_capacity(k);
                let mut seen = std::collections::HashSet::with_capacity(k);
                for _ in 0..k {
                    if let Some(id) = self.nodes.random_id(&mut self.rng) {
                        if seen.insert(id) {
                            picked.push(id);
                        }
                    }
                }
                picked
            }
            ChurnModel::Sessions { .. } => self.churn_state.due_deaths(self.round),
        };
        if victims.is_empty() {
            return;
        }
        // Count only *successful* removals: a session victim may already be
        // gone (crashed by a fault wave, or scheduled twice after
        // `set_churn` re-registered the population), and replacing a node
        // that never left would grow the population.
        let mut count = 0;
        let mut seen = std::collections::HashSet::with_capacity(victims.len());
        for id in victims {
            if !seen.insert(id) {
                continue;
            }
            if let Some(state) = self.nodes.remove(id) {
                self.overlay.remove_node(id);
                self.protocol.on_leave(id, state);
                count += 1;
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.record_churn_leave(self.round, id.slot() as u32);
                }
            }
        }
        if count == 0 {
            return;
        }
        // Replace departures to keep the population size constant, as the
        // paper's churn model does.
        let mut joined = Vec::with_capacity(count);
        for _ in 0..count {
            let state = self.protocol.make_node(&mut self.rng);
            let id = self.nodes.insert(state);
            self.net.reset_slot(id.slot());
            self.churn_state
                .on_insert(&self.churn, id, self.round, &mut self.rng);
            self.overlay.register_node(id, &self.nodes, &mut self.rng);
            joined.push(id);
        }
        for id in joined {
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.record_churn_join(self.round, id.slot() as u32);
            }
            let mut ctx = Ctx {
                round: self.round,
                nodes: &mut self.nodes,
                overlay: &self.overlay,
                rng: &mut self.rng,
                net: &mut self.net,
                loss_rate: self.loss_rate,
                repair: self.repair,
                telemetry: TelemetryHandle::new(self.telemetry.as_deref_mut()),
                adversary: self.adversary,
            };
            self.protocol.on_join(id, &mut ctx);
        }
    }

    /// Current round number (number of completed rounds).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The live nodes.
    pub fn nodes(&self) -> &NodeSlab<P::Node> {
        &self.nodes
    }

    /// Mutable access to the live nodes (for test/experiment setup).
    pub fn nodes_mut(&mut self) -> &mut NodeSlab<P::Node> {
        &mut self.nodes
    }

    /// The protocol instance.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Mutable access to the protocol instance (e.g. to trigger an
    /// aggregation instance from the experiment harness).
    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.protocol
    }

    /// Network statistics.
    pub fn net(&self) -> &NetStats {
        &self.net
    }

    /// Mutable network statistics (e.g. to reset between phases).
    pub fn net_mut(&mut self) -> &mut NetStats {
        &mut self.net
    }

    /// The overlay.
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// Engine RNG (e.g. for experiment-level sampling decisions that
    /// should be reproducible with the run).
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Splits the network into `k` uniformly random partition groups from
    /// the next round on: gossip partners are only drawn within a node's
    /// group. Churn replacements land in group 0. Use
    /// [`heal_partition`](Engine::heal_partition) to reconnect.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn partition_into(&mut self, k: u32) {
        assert!(k > 0, "k must be positive");
        let mut groups = vec![0u32; self.nodes.slot_count()];
        for id in self.nodes.id_vec() {
            groups[id.slot()] = self.rng.random_range(0..k);
        }
        self.overlay.set_partition(groups);
    }

    /// Heals a network partition.
    pub fn heal_partition(&mut self) {
        self.overlay.clear_partition();
    }

    /// The partition group of a node (0 when unpartitioned).
    pub fn partition_group(&self, id: NodeId) -> u32 {
        self.overlay.group_of(id)
    }

    /// Replaces the churn model from the next round on.
    pub fn set_churn(&mut self, churn: ChurnModel) {
        self.churn = churn;
        self.churn_state.clear();
        if let ChurnModel::Sessions { .. } = churn {
            // (Re)schedule sessions for the existing population.
            for id in self.nodes.id_vec() {
                self.churn_state
                    .on_insert(&churn, id, self.round, &mut self.rng);
            }
        }
    }

    /// Invokes `f` with an execution context outside a round (used by
    /// experiment harnesses to trigger protocol actions deterministically).
    pub fn with_ctx<R>(&mut self, f: impl FnOnce(&mut P, &mut Ctx<'_, P::Node>) -> R) -> R {
        let mut ctx = Ctx {
            round: self.round,
            nodes: &mut self.nodes,
            overlay: &self.overlay,
            rng: &mut self.rng,
            net: &mut self.net,
            loss_rate: self.loss_rate,
            repair: self.repair,
            telemetry: TelemetryHandle::new(self.telemetry.as_deref_mut()),
            adversary: self.adversary,
        };
        f(&mut self.protocol, &mut ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::OverlayKind;

    /// Test protocol: push–pull averaging of a per-node value.
    struct Averaging {
        next_value: f64,
    }

    impl Protocol for Averaging {
        type Node = f64;

        fn make_node(&mut self, _rng: &mut StdRng) -> f64 {
            self.next_value += 1.0;
            self.next_value
        }

        fn on_round(&mut self, id: NodeId, ctx: &mut Ctx<'_, f64>) {
            let Some(partner) = ctx.random_neighbour(id) else {
                return;
            };
            let Some((a, b)) = ctx.nodes.pair_mut(id, partner) else {
                return;
            };
            let mean = (*a + *b) / 2.0;
            *a = mean;
            *b = mean;
            ctx.net.charge_exchange(id, partner, 8, 8);
        }

        fn parallel_capable(&self) -> bool {
            true
        }

        fn par_local(
            &self,
            _id: NodeId,
            _node: &mut f64,
            _round: u64,
            _rng: &mut StdRng,
        ) -> ParLocal {
            ParLocal {
                initiates: true,
                ..ParLocal::default()
            }
        }

        fn par_apply(
            &self,
            plan: &PlannedExchange,
            _round: u64,
            a: &mut f64,
            b: &mut f64,
        ) -> ExchangeTraffic {
            match plan.fate {
                ExchangeFate::Complete => {
                    let mean = (*a + *b) / 2.0;
                    *a = mean;
                    *b = mean;
                    ExchangeTraffic {
                        request: Some(8),
                        response: Some(8),
                        ..ExchangeTraffic::default()
                    }
                }
                ExchangeFate::RequestLost => ExchangeTraffic {
                    request: Some(8),
                    response: None,
                    ..ExchangeTraffic::default()
                },
                ExchangeFate::ResponseLost => {
                    *b = (*a + *b) / 2.0;
                    ExchangeTraffic {
                        request: Some(8),
                        response: Some(8),
                        ..ExchangeTraffic::default()
                    }
                }
                ExchangeFate::Aborted => ExchangeTraffic {
                    request: Some(8),
                    response: Some(8),
                    ..ExchangeTraffic::default()
                },
            }
        }
    }

    /// Full observable state of an engine run, for bit-exact comparisons.
    #[allow(clippy::type_complexity)]
    fn snapshot(engine: &Engine<Averaging>) -> (Vec<(usize, u64)>, u64, u64, Vec<(u64, u64)>) {
        let values: Vec<(usize, u64)> = engine
            .nodes()
            .iter()
            .map(|(id, v)| (id.slot(), v.to_bits()))
            .collect();
        let traffic: Vec<(u64, u64)> = engine
            .nodes()
            .iter()
            .map(|(id, _)| {
                let t = engine.net().node(id);
                (t.total_bytes(), t.total_msgs())
            })
            .collect();
        (
            values,
            engine.net().total_bytes(),
            engine.net().total_msgs(),
            traffic,
        )
    }

    #[test]
    fn averaging_converges_to_global_mean() {
        let mut engine = Engine::new(EngineConfig::new(128, 42), Averaging { next_value: 0.0 });
        engine.run_rounds(60);
        let expected = 129.0 / 2.0;
        for (_, v) in engine.nodes().iter() {
            assert!((v - expected).abs() < 1e-9, "value {v} far from {expected}");
        }
    }

    #[test]
    fn averaging_conserves_mass_every_round() {
        let mut engine = Engine::new(EngineConfig::new(64, 7), Averaging { next_value: 0.0 });
        let initial: f64 = engine.nodes().iter().map(|(_, v)| *v).sum();
        for _ in 0..20 {
            engine.run_round();
            let sum: f64 = engine.nodes().iter().map(|(_, v)| *v).sum();
            assert!(
                (sum - initial).abs() < 1e-6,
                "mass leaked: {sum} vs {initial}"
            );
        }
    }

    #[test]
    fn averaging_converges_on_shuffle_overlay_too() {
        let config = EngineConfig::new(128, 42).with_overlay(OverlayConfig {
            kind: OverlayKind::Shuffle,
            degree: 10,
            shuffle_len: 3,
        });
        let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
        engine.run_rounds(60);
        let expected = 129.0 / 2.0;
        for (_, v) in engine.nodes().iter() {
            assert!((v - expected).abs() < 1e-6, "value {v} far from {expected}");
        }
    }

    #[test]
    fn churn_keeps_population_constant() {
        let config = EngineConfig::new(100, 1).with_churn(ChurnModel::uniform(0.05));
        let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
        for _ in 0..50 {
            engine.run_round();
            assert_eq!(engine.nodes().len(), 100);
        }
    }

    #[test]
    fn session_churn_keeps_population_constant() {
        let config = EngineConfig::new(100, 2).with_churn(ChurnModel::sessions(10.0));
        let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
        for _ in 0..100 {
            engine.run_round();
            assert_eq!(engine.nodes().len(), 100);
        }
    }

    #[test]
    fn network_traffic_is_recorded() {
        let mut engine = Engine::new(EngineConfig::new(10, 3), Averaging { next_value: 0.0 });
        engine.run_round();
        // Every node initiates one exchange of 8+8 bytes.
        assert_eq!(engine.net().total_msgs(), 20);
        assert_eq!(engine.net().total_bytes(), 160);
    }

    #[test]
    fn rounds_advance() {
        let mut engine = Engine::new(EngineConfig::new(4, 4), Averaging { next_value: 0.0 });
        assert_eq!(engine.round(), 0);
        engine.run_rounds(5);
        assert_eq!(engine.round(), 5);
    }

    #[test]
    fn partitions_prevent_cross_group_averaging() {
        let mut engine = Engine::new(EngineConfig::new(200, 8), Averaging { next_value: 0.0 });
        engine.partition_into(2);
        engine.run_rounds(40);
        // Each group converges to its own mean; the two means must differ
        // (groups hold different value subsets with probability ~1).
        let mut groups: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
        for (id, v) in engine.nodes().iter() {
            groups[engine.partition_group(id) as usize].push(*v);
        }
        assert!(!groups[0].is_empty() && !groups[1].is_empty());
        for g in &groups {
            let mean = g.iter().sum::<f64>() / g.len() as f64;
            for v in g {
                assert!((v - mean).abs() < 1e-6, "group not internally converged");
            }
        }
        let m0 = groups[0].iter().sum::<f64>() / groups[0].len() as f64;
        let m1 = groups[1].iter().sum::<f64>() / groups[1].len() as f64;
        assert!((m0 - m1).abs() > 1e-6, "groups should disagree while split");

        // Healing reconnects: everyone converges to the global mean.
        engine.heal_partition();
        engine.run_rounds(60);
        let expected = 201.0 / 2.0;
        for (_, v) in engine.nodes().iter() {
            assert!((v - expected).abs() < 1e-6, "post-heal value {v}");
        }
    }

    struct JoinTracker {
        joins: usize,
        leaves: usize,
    }

    impl Protocol for JoinTracker {
        type Node = ();

        fn make_node(&mut self, _rng: &mut StdRng) {}

        fn on_round(&mut self, _id: NodeId, _ctx: &mut Ctx<'_, ()>) {}

        fn on_join(&mut self, _id: NodeId, _ctx: &mut Ctx<'_, ()>) {
            self.joins += 1;
        }

        fn on_leave(&mut self, _id: NodeId, _node: ()) {
            self.leaves += 1;
        }
    }

    #[test]
    fn parallel_averaging_converges_to_global_mean() {
        let config = EngineConfig::new(128, 42).with_threads(4);
        let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
        engine.run_rounds_parallel(60);
        let expected = 129.0 / 2.0;
        for (_, v) in engine.nodes().iter() {
            assert!((v - expected).abs() < 1e-9, "value {v} far from {expected}");
        }
    }

    #[test]
    fn parallel_conserves_mass_every_round() {
        let config = EngineConfig::new(300, 7).with_threads(4);
        let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
        let initial: f64 = engine.nodes().iter().map(|(_, v)| *v).sum();
        for _ in 0..20 {
            engine.run_round_parallel();
            let sum: f64 = engine.nodes().iter().map(|(_, v)| *v).sum();
            assert!(
                (sum - initial).abs() < 1e-6,
                "mass leaked: {sum} vs {initial}"
            );
        }
    }

    #[test]
    fn parallel_records_same_message_count_as_sequential() {
        // Lossless network: both paths carry exactly one exchange per node
        // per round, so the counters must agree exactly.
        let mut seq = Engine::new(EngineConfig::new(10, 3), Averaging { next_value: 0.0 });
        seq.run_round();
        let config = EngineConfig::new(10, 3).with_threads(2);
        let mut par = Engine::new(config, Averaging { next_value: 0.0 });
        par.run_round_parallel();
        assert_eq!(par.net().total_msgs(), seq.net().total_msgs());
        assert_eq!(par.net().total_bytes(), seq.net().total_bytes());
        assert_eq!(par.net().round_msgs(), 20);
    }

    #[test]
    fn parallel_is_bit_identical_across_thread_counts() {
        // Churn + shuffle overlay + loss: the full feature surface must be
        // thread-count invariant, including per-node traffic tables.
        let base = EngineConfig::new(300, 11)
            .with_overlay(OverlayConfig {
                kind: OverlayKind::Shuffle,
                degree: 10,
                shuffle_len: 3,
            })
            .with_churn(ChurnModel::uniform(0.02))
            .with_loss_rate(0.05);
        let mut reference = None;
        for threads in [1, 2, 4, 7] {
            let config = base.with_threads(threads);
            let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
            engine.run_rounds_parallel(25);
            let snap = snapshot(&engine);
            match &reference {
                None => reference = Some(snap),
                Some(r) => assert_eq!(&snap, r, "threads={threads} diverged"),
            }
        }
    }

    #[test]
    fn telemetry_attach_leaves_simulation_bit_identical() {
        // Tentpole invariant: recording is purely observational — it never
        // consumes engine RNG or touches simulation state, so runs with and
        // without an attached store are bit-identical under both engine
        // paths at any thread count.
        let base = EngineConfig::new(300, 11)
            .with_overlay(OverlayConfig {
                kind: OverlayKind::Shuffle,
                degree: 10,
                shuffle_len: 3,
            })
            .with_churn(ChurnModel::uniform(0.02))
            .with_loss_rate(0.05);
        let run = |parallel: bool, threads: usize, with_telemetry: bool| {
            let config = base.with_threads(threads);
            let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
            if with_telemetry {
                engine.attach_telemetry(SimTelemetry::new());
            }
            if parallel {
                engine.run_rounds_parallel(25);
            } else {
                engine.run_rounds(25);
            }
            snapshot(&engine)
        };
        for (parallel, threads) in [(false, 1), (true, 1), (true, 4)] {
            assert_eq!(
                run(parallel, threads, true),
                run(parallel, threads, false),
                "parallel={parallel} threads={threads}"
            );
        }
    }

    #[test]
    fn telemetry_output_is_thread_count_invariant() {
        // The recorded telemetry itself must not depend on the thread
        // count: plan-derived events are emitted on the driver in slot
        // order, and shard merges are commutative sums.
        let base = EngineConfig::new(300, 11)
            .with_churn(ChurnModel::uniform(0.02))
            .with_loss_rate(0.05);
        let run = |threads: usize| {
            let mut engine = Engine::new(base.with_threads(threads), Averaging { next_value: 0.0 });
            engine.attach_telemetry(SimTelemetry::new());
            engine.run_rounds_parallel(25);
            let t = engine.detach_telemetry().unwrap();
            let counters: Vec<(&str, u64)> = t.telemetry().metrics.counters().collect();
            let rounds: Vec<String> = t
                .telemetry()
                .snapshots()
                .iter()
                .map(|s| s.jsonl())
                .collect();
            let events: Vec<String> = t.telemetry().events.iter().map(|e| e.jsonl()).collect();
            (counters, rounds, events)
        };
        let single = run(1);
        assert!(!single.2.is_empty(), "events recorded");
        assert_eq!(single.1.len(), 25, "one snapshot per round");
        assert_eq!(single, run(4));
    }

    #[test]
    fn parallel_same_config_twice_is_identical() {
        let config = EngineConfig::new(200, 9)
            .with_churn(ChurnModel::uniform(0.01))
            .with_threads(4);
        let runs: Vec<_> = (0..2)
            .map(|_| {
                let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
                engine.run_rounds_parallel(30);
                snapshot(&engine)
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn sequential_same_config_twice_is_identical() {
        let config = EngineConfig::new(200, 9).with_churn(ChurnModel::uniform(0.01));
        let runs: Vec<_> = (0..2)
            .map(|_| {
                let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
                engine.run_rounds(30);
                snapshot(&engine)
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn parallel_falls_back_for_non_capable_protocols() {
        // JoinTracker does not implement the parallel API; the parallel
        // entry point must behave exactly like the sequential path.
        let config = EngineConfig::new(100, 5)
            .with_churn(ChurnModel::uniform(0.02))
            .with_threads(4);
        let mut seq = Engine::new(
            config,
            JoinTracker {
                joins: 0,
                leaves: 0,
            },
        );
        seq.run_rounds(20);
        let mut par = Engine::new(
            config,
            JoinTracker {
                joins: 0,
                leaves: 0,
            },
        );
        par.run_rounds_parallel(20);
        assert_eq!(par.protocol().joins, seq.protocol().joins);
        assert_eq!(par.protocol().leaves, seq.protocol().leaves);
    }

    #[test]
    fn sample_fate_zero_loss_is_complete_without_consuming_rng() {
        let mut rng = seeded_rng(5);
        let mut fresh = seeded_rng(5);
        for _ in 0..16 {
            assert_eq!(sample_fate(&mut rng, 0.0), ExchangeFate::Complete);
            assert_eq!(sample_fate(&mut rng, -1.0), ExchangeFate::Complete);
        }
        // No draws were consumed: the stream is still aligned with a fresh
        // generator.
        assert_eq!(rng.random::<u64>(), fresh.random::<u64>());
    }

    #[test]
    fn sample_fate_full_loss_always_drops_request() {
        let mut rng = seeded_rng(6);
        for _ in 0..64 {
            assert_eq!(sample_fate(&mut rng, 1.0), ExchangeFate::RequestLost);
        }
    }

    #[test]
    fn sample_exchange_repair_full_loss_exhausts_retries() {
        let repair = ExchangeRepair {
            enabled: true,
            max_retries: 3,
        };
        let mut rng = seeded_rng(7);
        let outcome = sample_exchange(&mut rng, 1.0, repair);
        assert_eq!(outcome.fate, ExchangeFate::RequestLost);
        assert_eq!(outcome.request_msgs, 4);
        assert_eq!(outcome.response_msgs, 0);
        // Lossless: single attempt, both messages.
        let outcome = sample_exchange(&mut rng, 0.0, repair);
        assert_eq!(
            outcome,
            ExchangeOutcome {
                fate: ExchangeFate::Complete,
                request_msgs: 1,
                response_msgs: 1,
            }
        );
    }

    #[test]
    fn sample_exchange_repair_never_yields_response_lost() {
        let repair = ExchangeRepair {
            enabled: true,
            max_retries: 2,
        };
        let mut rng = seeded_rng(8);
        let mut aborted = 0;
        for _ in 0..2000 {
            let outcome = sample_exchange(&mut rng, 0.3, repair);
            assert_ne!(outcome.fate, ExchangeFate::ResponseLost);
            if outcome.fate == ExchangeFate::Aborted {
                aborted += 1;
                assert!(outcome.response_msgs > 0, "abort implies partner heard us");
            }
        }
        assert!(aborted > 0, "30% loss should produce some aborts");
    }

    #[test]
    fn config_validation_rejects_bad_rates() {
        assert!(EngineConfig::new(10, 0).validate().is_ok());
        let mut zero_n = EngineConfig::new(10, 0);
        zero_n.n = 0;
        assert!(zero_n.validate().is_err());
        assert!(EngineConfig::new(10, 0)
            .with_loss_rate(f64::NAN)
            .validate()
            .is_err());
        assert!(EngineConfig::new(10, 0)
            .with_loss_rate(1.5)
            .validate()
            .is_err());
        assert!(EngineConfig::new(10, 0)
            .with_loss_rate(-0.1)
            .validate()
            .is_err());
        let mut bad_churn = EngineConfig::new(10, 0);
        bad_churn.churn = ChurnModel::Uniform { rate: f64::NAN };
        assert!(bad_churn.validate().is_err());
        let mut bad_sessions = EngineConfig::new(10, 0);
        bad_sessions.churn = ChurnModel::Sessions { mean_rounds: 0.0 };
        assert!(bad_sessions.validate().is_err());
        assert!(
            Engine::try_new(bad_sessions, Averaging { next_value: 0.0 }).is_err(),
            "try_new must surface validation errors"
        );
    }

    #[test]
    fn session_churn_rescheduling_does_not_grow_population() {
        // `set_churn` re-registers every node's session; duplicate heap
        // entries for the same node must not cause double replacement.
        let config = EngineConfig::new(100, 3).with_churn(ChurnModel::sessions(5.0));
        let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
        for round in 0..60 {
            if round % 10 == 0 {
                engine.set_churn(ChurnModel::sessions(5.0));
            }
            engine.run_round();
            assert_eq!(engine.nodes().len(), 100, "round {round}");
        }
    }

    fn crash_scenario() -> crate::faults::FaultScenario {
        crate::faults::FaultScenario::new(99)
            .with_burst_loss(3, 8, 0.4)
            .with_partition(5, 12, crate::faults::PartitionKind::Bisect)
            .with_crash_recover(2, 9, 0.2)
    }

    #[test]
    fn crash_recover_restores_population() {
        let mut engine = Engine::new(EngineConfig::new(100, 21), Averaging { next_value: 0.0 });
        engine
            .set_fault_scenario(crate::faults::FaultScenario::new(5).with_crash_recover(2, 5, 0.2))
            .unwrap();
        engine.run_rounds(2);
        assert_eq!(engine.nodes().len(), 100);
        engine.run_round(); // round 2: crash fires
        assert_eq!(engine.nodes().len(), 80);
        engine.run_rounds(2); // rounds 3, 4
        assert_eq!(engine.nodes().len(), 80);
        engine.run_round(); // round 5: recovery
        assert_eq!(engine.nodes().len(), 100);
        let trace = engine.fault_trace().unwrap();
        assert_eq!(trace.total_crashed(), 20);
        assert_eq!(trace.total_recovered(), 20);
    }

    #[test]
    fn fault_partition_applies_and_heals() {
        let mut engine = Engine::new(EngineConfig::new(64, 22), Averaging { next_value: 0.0 });
        engine
            .set_fault_scenario(crate::faults::FaultScenario::new(4).with_partition(
                1,
                3,
                crate::faults::PartitionKind::Islands(4),
            ))
            .unwrap();
        engine.run_round();
        assert!(!engine.overlay().is_partitioned());
        engine.run_round();
        assert!(engine.overlay().is_partitioned());
        let groups: std::collections::HashSet<u32> = engine
            .nodes()
            .id_vec()
            .into_iter()
            .map(|id| engine.partition_group(id))
            .collect();
        assert!(groups.len() > 1, "expected several islands, got {groups:?}");
        engine.run_rounds(2);
        assert!(!engine.overlay().is_partitioned(), "window closed");
    }

    #[test]
    fn fault_burst_overrides_and_restores_loss_rate() {
        let mut engine = Engine::new(
            EngineConfig::new(50, 23).with_loss_rate(0.01),
            Averaging { next_value: 0.0 },
        );
        engine
            .set_fault_scenario(crate::faults::FaultScenario::new(6).with_burst_loss(1, 3, 0.9))
            .unwrap();
        engine.run_rounds(4);
        let trace = engine.fault_trace().unwrap();
        let rates: Vec<(u64, f64)> = trace
            .records
            .iter()
            .map(|r| (r.round, r.loss_rate))
            .collect();
        assert_eq!(rates, vec![(1, 0.9), (2, 0.9)]);
    }

    #[test]
    fn fault_trace_is_identical_across_engine_paths_and_threads() {
        // The injector draws only from scenario-seeded streams, so the
        // sequential path and the parallel path at any thread count must
        // inject byte-identical faults (no churn: uniform churn victims
        // come from the engine RNG, whose draw sequence legitimately
        // differs between paths).
        let config = EngineConfig::new(200, 31).with_loss_rate(0.05);
        let mut seq = Engine::new(config, Averaging { next_value: 0.0 });
        seq.set_fault_scenario(crash_scenario()).unwrap();
        for _ in 0..15 {
            seq.run_round();
        }
        let reference = seq.fault_trace().unwrap().clone();
        assert!(!reference.is_empty());
        for threads in [1, 2, 4] {
            let mut par = Engine::new(config.with_threads(threads), Averaging { next_value: 0.0 });
            par.set_fault_scenario(crash_scenario()).unwrap();
            par.run_rounds_parallel(15);
            assert_eq!(
                par.fault_trace().unwrap(),
                &reference,
                "threads={threads} trace diverged"
            );
        }
    }

    #[test]
    fn parallel_faulted_run_is_bit_identical_across_thread_counts() {
        let base = EngineConfig::new(300, 17)
            .with_loss_rate(0.05)
            .with_repair(ExchangeRepair::enabled());
        let mut reference = None;
        for threads in [1, 2, 4, 7] {
            let mut engine = Engine::new(base.with_threads(threads), Averaging { next_value: 0.0 });
            engine.set_fault_scenario(crash_scenario()).unwrap();
            engine.run_rounds_parallel(20);
            let snap = snapshot(&engine);
            match &reference {
                None => reference = Some(snap),
                Some(r) => assert_eq!(&snap, r, "threads={threads} diverged"),
            }
        }
    }

    #[test]
    fn repair_conserves_mass_under_loss() {
        // With repair enabled an exchange either completes on both sides
        // or aborts with no state change, so the global sum is exact even
        // at 30% loss; without repair the asymmetric ResponseLost path
        // leaks mass almost surely.
        let repaired = EngineConfig::new(200, 13)
            .with_loss_rate(0.3)
            .with_repair(ExchangeRepair::enabled())
            .with_threads(2);
        let mut engine = Engine::new(repaired, Averaging { next_value: 0.0 });
        let initial: f64 = engine.nodes().iter().map(|(_, v)| *v).sum();
        engine.run_rounds_parallel(30);
        let sum: f64 = engine.nodes().iter().map(|(_, v)| *v).sum();
        assert!(
            (sum - initial).abs() < 1e-6,
            "repaired path leaked mass: {sum} vs {initial}"
        );

        let unrepaired = EngineConfig::new(200, 13)
            .with_loss_rate(0.3)
            .with_threads(2);
        let mut engine = Engine::new(unrepaired, Averaging { next_value: 0.0 });
        let initial: f64 = engine.nodes().iter().map(|(_, v)| *v).sum();
        engine.run_rounds_parallel(30);
        let sum: f64 = engine.nodes().iter().map(|(_, v)| *v).sum();
        assert!(
            (sum - initial).abs() > 1e-3,
            "unrepaired path should visibly drift: {sum} vs {initial}"
        );
    }

    #[test]
    fn join_and_leave_hooks_fire_under_churn() {
        let config = EngineConfig::new(200, 5).with_churn(ChurnModel::uniform(0.01));
        let mut engine = Engine::new(
            config,
            JoinTracker {
                joins: 0,
                leaves: 0,
            },
        );
        engine.run_rounds(50);
        let p = engine.protocol();
        assert_eq!(p.joins, p.leaves);
        // 1%/round * 200 nodes * 50 rounds = ~100 replacements.
        assert!((80..=120).contains(&p.joins), "joins {}", p.joins);
    }
}
