//! The cycle-driven simulation engine.
//!
//! Two execution paths drive a round:
//!
//! * [`Engine::run_round`] — the sequential reference semantics: every live
//!   node runs [`Protocol::on_round`] in a fresh random order, exchanges
//!   applied immediately.
//! * [`Engine::run_round_parallel`] — a phase-split path for protocols that
//!   opt in via the `par_*` methods of [`Protocol`]: a *plan* phase where
//!   every node concurrently does its local work and picks its gossip
//!   partner using a counter-based per-node RNG stream, and an *apply*
//!   phase where the planned exchanges are bucketed into slot-disjoint
//!   batches and applied conflict-free across threads (with a sequential
//!   fallback for small, contended batches). Results are bit-identical for
//!   every thread count.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::RngExt as _;

use crate::churn::{ChurnModel, ChurnState};
use crate::executor;
use crate::node::{NodeId, NodeSlab};
use crate::overlay::{Overlay, OverlayConfig};
use crate::rng::{derive_seed, par_stream_rng, seeded_rng};
use crate::stats::{NetShard, NetStats};

/// Stream tag separating the parallel path's per-node RNG streams from the
/// main engine RNG (both derive from the master seed).
const PAR_SEED_STREAM: u64 = 0x7061_7261; // "para"

/// RNG phase counters for [`par_stream_rng`]: local work vs. planning.
const PAR_PHASE_LOCAL: u64 = 0;
const PAR_PHASE_PLAN: u64 = 1;

/// Batches smaller than this are applied inline on the driving thread: the
/// contended tail of the batch schedule is typically a handful of pairs,
/// where spawn overhead would dwarf the work.
const PAR_APPLY_MIN_BATCH: usize = 64;

/// A gossip protocol driven by the [`Engine`].
///
/// One protocol instance is shared across all nodes (it plays the role of
/// PeerSim's protocol class); per-node state lives in [`Protocol::Node`].
pub trait Protocol {
    /// Per-node protocol state.
    type Node;

    /// Creates the state of a fresh node (initial population and churn
    /// replacements).
    fn make_node(&mut self, rng: &mut StdRng) -> Self::Node;

    /// Executes one round step for node `id`: typically one push–pull
    /// gossip exchange with a random neighbour plus local bookkeeping.
    ///
    /// The node is guaranteed to be live when called. Implementations use
    /// [`Ctx::random_neighbour`] to pick a partner and
    /// [`NodeSlab::pair_mut`] for the symmetric exchange.
    fn on_round(&mut self, id: NodeId, ctx: &mut Ctx<'_, Self::Node>);

    /// Called after a node joined a running system (churn replacement),
    /// with the node already registered in the overlay. The default does
    /// nothing; protocols can use it to bootstrap the newcomer from its
    /// neighbours.
    fn on_join(&mut self, id: NodeId, ctx: &mut Ctx<'_, Self::Node>) {
        let _ = (id, ctx);
    }

    /// Called when a node leaves (churn). The default drops the state.
    fn on_leave(&mut self, id: NodeId, node: Self::Node) {
        let _ = (id, node);
    }

    /// Whether this protocol implements the plan/apply parallel round API
    /// (`par_local` / `par_absorb` / `par_apply`).
    ///
    /// The default is `false`, in which case
    /// [`Engine::run_round_parallel`] transparently adapts to the
    /// sequential [`on_round`](Protocol::on_round) path.
    fn parallel_capable(&self) -> bool {
        false
    }

    /// Parallel phase 1 — purely local per-node work (e.g. finalising due
    /// aggregation instances and drawing scheduling decisions).
    ///
    /// Called concurrently for every live node with exclusive access to
    /// that node only; implementations must not touch shared protocol
    /// state (hence `&self`) — shared effects are deferred to
    /// [`par_absorb`](Protocol::par_absorb) via the returned [`ParLocal`].
    /// `rng` is a deterministic stream unique to `(seed, round, node slot)`.
    fn par_local(
        &self,
        id: NodeId,
        node: &mut Self::Node,
        round: u64,
        rng: &mut StdRng,
    ) -> ParLocal {
        let _ = (id, node, round, rng);
        ParLocal::default()
    }

    /// Parallel phase 2 — sequential absorption of one node's [`ParLocal`]
    /// report into shared protocol state, in deterministic slot order.
    ///
    /// This is where work that genuinely needs `&mut self` or the full
    /// [`Ctx`] happens (counters, starting new aggregation instances, ...).
    /// Implementations must not remove nodes — liveness is fixed for the
    /// rest of the round.
    fn par_absorb(&mut self, id: NodeId, report: &ParLocal, ctx: &mut Ctx<'_, Self::Node>) {
        let _ = (id, report, ctx);
    }

    /// Parallel phase 3 — applies one planned exchange between `initiator`
    /// and `partner`, both exclusively borrowed.
    ///
    /// Called concurrently for slot-disjoint pairs; shared state access is
    /// `&self` only. Returns the wire traffic, which the engine charges to
    /// [`NetStats`] through per-thread shards.
    fn par_apply(
        &self,
        plan: &PlannedExchange,
        round: u64,
        initiator: &mut Self::Node,
        partner: &mut Self::Node,
    ) -> ExchangeTraffic {
        let _ = (plan, round, initiator, partner);
        ExchangeTraffic::default()
    }
}

/// Result of one node's [`Protocol::par_local`] step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParLocal {
    /// Locally completed events (for Adam2: finalised instances that
    /// produced an estimate), summed into shared state by `par_absorb`.
    pub completions: u64,
    /// Locally failed events (for Adam2: instances that expired without
    /// reaching all-values mode).
    pub failures: u64,
    /// Whether the engine must invoke [`Protocol::par_absorb`]-side
    /// sequential work beyond counter sums (for Adam2: start a new
    /// aggregation instance at this node).
    pub wants_sequential: bool,
    /// Whether this node initiates a gossip exchange this round.
    pub initiates: bool,
}

/// One gossip exchange scheduled by the parallel plan phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedExchange {
    /// The node that initiates the push–pull exchange.
    pub initiator: NodeId,
    /// Its chosen gossip partner (always a distinct live node).
    pub partner: NodeId,
    /// The sampled fate of the two messages under the engine's loss rate.
    pub fate: ExchangeFate,
}

/// Wire traffic of one applied exchange, as reported by
/// [`Protocol::par_apply`].
///
/// `request` is charged initiator → partner, `response` partner →
/// initiator; `None` means the message was never sent (e.g. the response
/// after a lost request).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeTraffic {
    /// Bytes of the request message, if sent.
    pub request: Option<usize>,
    /// Bytes of the response message, if sent.
    pub response: Option<usize>,
}

/// What happened to the two messages of one push–pull exchange.
///
/// Sampled by [`Ctx::sample_exchange_fate`] according to the engine's
/// configured loss rate. Protocols that ignore it behave as on a lossless
/// network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeFate {
    /// Both messages delivered.
    Complete,
    /// The request never reached the partner: no state changes anywhere,
    /// but the sender paid for the request.
    RequestLost,
    /// The partner processed the request but its response was lost: only
    /// the partner's state changes (an *asymmetric* exchange).
    ResponseLost,
}

/// Per-round execution context handed to [`Protocol`] callbacks.
///
/// Fields are public so a protocol can split-borrow them (e.g. hold a
/// [`NodeSlab::pair_mut`] result while charging [`NetStats`]).
pub struct Ctx<'a, N> {
    /// Current round number (starts at 0).
    pub round: u64,
    /// All live nodes.
    pub nodes: &'a mut NodeSlab<N>,
    /// The overlay (read-only during a round).
    pub overlay: &'a Overlay,
    /// Engine RNG.
    pub rng: &'a mut StdRng,
    /// Network accounting.
    pub net: &'a mut NetStats,
    /// Per-message loss probability (0 by default).
    pub loss_rate: f64,
}

impl<N> Ctx<'_, N> {
    /// Samples the fate of one request/response exchange under the
    /// engine's loss rate: each of the two messages is lost independently
    /// with probability `loss_rate`.
    pub fn sample_exchange_fate(&mut self) -> ExchangeFate {
        sample_fate(self.rng, self.loss_rate)
    }

    /// Draws a random live neighbour of `of`.
    pub fn random_neighbour(&mut self, of: NodeId) -> Option<NodeId> {
        self.overlay.random_neighbour(of, self.nodes, self.rng)
    }

    /// Samples up to `count` distinct live neighbours of `of`.
    pub fn neighbour_sample(&mut self, of: NodeId, count: usize) -> Vec<NodeId> {
        self.overlay
            .neighbour_sample(of, self.nodes, count, self.rng)
    }

    /// Number of live nodes (the simulator's ground truth, *not* available
    /// to a real decentralised node — protocols must estimate it).
    pub fn live_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Samples the fate of one request/response exchange: each of the two
/// messages is lost independently with probability `loss_rate`. Shared by
/// the sequential [`Ctx::sample_exchange_fate`] and the parallel plan
/// phase (which draws from per-node streams).
/// Charges the traffic of one applied exchange directly to [`NetStats`]
/// (the inline/contended apply path; the threaded path goes through
/// [`NetShard`]s with identical arithmetic).
fn charge_traffic(net: &mut NetStats, plan: &PlannedExchange, traffic: ExchangeTraffic) {
    if let Some(bytes) = traffic.request {
        net.charge_message(plan.initiator, plan.partner, bytes);
    }
    if let Some(bytes) = traffic.response {
        net.charge_message(plan.partner, plan.initiator, bytes);
    }
}

fn sample_fate(rng: &mut StdRng, loss_rate: f64) -> ExchangeFate {
    if loss_rate <= 0.0 {
        return ExchangeFate::Complete;
    }
    if rng.random::<f64>() < loss_rate {
        ExchangeFate::RequestLost
    } else if rng.random::<f64>() < loss_rate {
        ExchangeFate::ResponseLost
    } else {
        ExchangeFate::Complete
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Initial number of nodes.
    pub n: usize,
    /// Master seed; all engine randomness derives from it.
    pub seed: u64,
    /// Overlay configuration.
    pub overlay: OverlayConfig,
    /// Churn model.
    pub churn: ChurnModel,
    /// Per-message loss probability in `[0, 1]` (see
    /// [`Ctx::sample_exchange_fate`]).
    pub loss_rate: f64,
    /// Worker threads for [`Engine::run_round_parallel`]: `0` means "use
    /// [`std::thread::available_parallelism`]", `1` runs the parallel
    /// semantics inline. Thread count never affects results.
    pub threads: usize,
}

impl EngineConfig {
    /// Creates a configuration for `n` nodes with the default oracle
    /// overlay and no churn.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "n must be positive");
        Self {
            n,
            seed,
            overlay: OverlayConfig::default(),
            churn: ChurnModel::None,
            loss_rate: 0.0,
            threads: 1,
        }
    }

    /// Replaces the overlay configuration.
    pub fn with_overlay(mut self, overlay: OverlayConfig) -> Self {
        self.overlay = overlay;
        self
    }

    /// Replaces the churn model.
    pub fn with_churn(mut self, churn: ChurnModel) -> Self {
        self.churn = churn;
        self
    }

    /// Sets the per-message loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss_rate` is outside `[0, 1]`.
    pub fn with_loss_rate(mut self, loss_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_rate),
            "loss_rate must be in [0, 1]"
        );
        self.loss_rate = loss_rate;
        self
    }

    /// Sets the worker-thread count for [`Engine::run_round_parallel`]
    /// (`0` = auto-detect).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// The cycle-driven simulator.
///
/// Each [`run_round`](Engine::run_round):
///
/// 1. applies churn (replacing departed nodes with fresh ones),
/// 2. runs overlay maintenance (view shuffling, if configured),
/// 3. calls [`Protocol::on_round`] once per live node, in a fresh random
///    order.
pub struct Engine<P: Protocol> {
    protocol: P,
    nodes: NodeSlab<P::Node>,
    overlay: Overlay,
    churn: ChurnModel,
    churn_state: ChurnState,
    rng: StdRng,
    /// Base of the counter-based per-node streams used by the parallel
    /// path; independent of `rng` so both paths share one master seed.
    par_seed: u64,
    threads: usize,
    round: u64,
    net: NetStats,
    loss_rate: f64,
    /// Reused per-round shuffle buffer (avoids one allocation per round).
    order_buf: Vec<NodeId>,
}

impl<P: Protocol> std::fmt::Debug for Engine<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("round", &self.round)
            .field("live_nodes", &self.nodes.len())
            .field("churn", &self.churn)
            .finish()
    }
}

impl<P: Protocol> Engine<P> {
    /// Builds an engine with `config.n` fresh nodes.
    pub fn new(config: EngineConfig, mut protocol: P) -> Self {
        assert!(config.n > 0, "n must be positive");
        let mut rng = seeded_rng(config.seed);
        let mut nodes = NodeSlab::with_capacity(config.n);
        let mut overlay = Overlay::new(config.overlay);
        let mut churn_state = ChurnState::new();
        let mut net = NetStats::new();
        for _ in 0..config.n {
            let state = protocol.make_node(&mut rng);
            let id = nodes.insert(state);
            churn_state.on_insert(&config.churn, id, 0, &mut rng);
        }
        net.ensure_slots(nodes.slot_count());
        // Register views only after the whole population exists so initial
        // views are uniform over it.
        for id in nodes.id_vec() {
            overlay.register_node(id, &nodes, &mut rng);
        }
        Self {
            protocol,
            nodes,
            overlay,
            churn: config.churn,
            churn_state,
            rng,
            par_seed: derive_seed(config.seed, PAR_SEED_STREAM),
            threads: config.threads,
            round: 0,
            net,
            loss_rate: config.loss_rate,
            order_buf: Vec::new(),
        }
    }

    /// Runs a single round.
    pub fn run_round(&mut self) {
        self.net.begin_round();
        self.apply_churn();
        self.overlay.maintain(&self.nodes, &mut self.rng);
        let mut order = std::mem::take(&mut self.order_buf);
        order.clear();
        order.extend(self.nodes.ids());
        order.shuffle(&mut self.rng);
        for &id in &order {
            if !self.nodes.contains(id) {
                continue;
            }
            let mut ctx = Ctx {
                round: self.round,
                nodes: &mut self.nodes,
                overlay: &self.overlay,
                rng: &mut self.rng,
                net: &mut self.net,
                loss_rate: self.loss_rate,
            };
            self.protocol.on_round(id, &mut ctx);
        }
        self.order_buf = order;
        self.round += 1;
    }

    /// Runs `n` rounds.
    pub fn run_rounds(&mut self, n: u64) {
        for _ in 0..n {
            self.run_round();
        }
    }

    /// Runs a single round on the phase-split parallel path.
    ///
    /// Falls back to [`run_round`](Engine::run_round) when the protocol is
    /// not [`parallel_capable`](Protocol::parallel_capable). Otherwise the
    /// round proceeds in phases:
    ///
    /// 1. churn + overlay maintenance (sequential, engine RNG — identical
    ///    to the sequential path),
    /// 2. **plan** — concurrently for every live node: local work
    ///    ([`Protocol::par_local`]) and partner/fate selection, each node
    ///    drawing from its own counter-based RNG stream,
    /// 3. **absorb** — sequential slot-order fold of the local reports
    ///    into shared protocol state ([`Protocol::par_absorb`]),
    /// 4. **apply** — the planned exchanges are greedily coloured into
    ///    slot-disjoint batches; big batches run conflict-free across
    ///    threads ([`Protocol::par_apply`]) with traffic accumulated in
    ///    per-thread [`NetShard`]s, small contended batches run inline.
    ///
    /// Because every random draw is keyed by `(seed, round, slot)` and all
    /// stat reductions are commutative sums, the outcome is bit-identical
    /// for every thread count (including 1).
    pub fn run_round_parallel(&mut self)
    where
        P: Sync,
        P::Node: Send + Sync,
    {
        if !self.protocol.parallel_capable() {
            self.run_round();
            return;
        }
        let threads = self.resolved_threads();
        self.net.begin_round();
        self.apply_churn();
        self.overlay.maintain(&self.nodes, &mut self.rng);

        let round = self.round;
        let par_seed = self.par_seed;
        let loss_rate = self.loss_rate;
        let slot_count = self.nodes.slot_count();
        self.net.ensure_slots(slot_count);

        // Phase 2a: local work, exclusive per-node access, slot-chunked.
        let mut reports: Vec<Option<ParLocal>> = vec![None; slot_count];
        {
            let protocol = &self.protocol;
            self.nodes
                .par_for_each_live_mut(threads, &mut reports, |id, node| {
                    let mut rng =
                        par_stream_rng(par_seed, round, id.slot() as u64, PAR_PHASE_LOCAL);
                    protocol.par_local(id, node, round, &mut rng)
                });
        }

        // Phase 2b: partner + fate selection, shared slab/overlay access.
        let mut ids = self.nodes.id_vec();
        let mut plans: Vec<Option<PlannedExchange>> = vec![None; ids.len()];
        {
            let nodes = &self.nodes;
            let overlay = &self.overlay;
            let reports = &reports;
            executor::par_zip(&mut ids, &mut plans, threads, |_, id_chunk, plan_chunk| {
                for (id, plan) in id_chunk.iter().zip(plan_chunk.iter_mut()) {
                    let initiates = reports[id.slot()].is_some_and(|r| r.initiates);
                    if !initiates {
                        continue;
                    }
                    let mut rng = par_stream_rng(par_seed, round, id.slot() as u64, PAR_PHASE_PLAN);
                    let Some(partner) = overlay.random_neighbour(*id, nodes, &mut rng) else {
                        continue;
                    };
                    *plan = Some(PlannedExchange {
                        initiator: *id,
                        partner,
                        fate: sample_fate(&mut rng, loss_rate),
                    });
                }
            });
        }

        // Phase 3: absorb local reports sequentially, in slot order.
        for &id in &ids {
            let Some(report) = reports[id.slot()] else {
                continue;
            };
            let mut ctx = Ctx {
                round: self.round,
                nodes: &mut self.nodes,
                overlay: &self.overlay,
                rng: &mut self.rng,
                net: &mut self.net,
                loss_rate: self.loss_rate,
            };
            self.protocol.par_absorb(id, &report, &mut ctx);
        }

        // Phase 4: colour the exchanges into slot-disjoint batches. The
        // greedy rule assigns each exchange the earliest batch after the
        // last batch touching either endpoint, so within one batch every
        // slot appears at most once.
        let plans: Vec<PlannedExchange> = plans.into_iter().flatten().collect();
        let mut next_batch = vec![0u32; slot_count];
        let mut num_batches = 0u32;
        let mut batch_of = Vec::with_capacity(plans.len());
        for p in &plans {
            let b = next_batch[p.initiator.slot()].max(next_batch[p.partner.slot()]);
            batch_of.push(b);
            next_batch[p.initiator.slot()] = b + 1;
            next_batch[p.partner.slot()] = b + 1;
            num_batches = num_batches.max(b + 1);
        }
        let mut batches: Vec<Vec<PlannedExchange>> = vec![Vec::new(); num_batches as usize];
        for (p, b) in plans.iter().zip(&batch_of) {
            batches[*b as usize].push(*p);
        }

        for batch in &batches {
            if threads <= 1 || batch.len() < PAR_APPLY_MIN_BATCH {
                // Contended / tiny tail: apply inline, charging NetStats
                // directly (same commutative sums as the shard path).
                for p in batch {
                    let Some((a, b)) = self.nodes.pair_mut(p.initiator, p.partner) else {
                        continue;
                    };
                    let traffic = self.protocol.par_apply(p, round, a, b);
                    charge_traffic(&mut self.net, p, traffic);
                }
            } else {
                let protocol = &self.protocol;
                let raw = self.nodes.raw_slots();
                let shards = executor::par_chunks_map(batch, threads, |chunk| {
                    let mut shard = NetShard::with_slots(slot_count);
                    for p in chunk {
                        // Safety: slots within one batch are pairwise
                        // distinct by construction, and batches are applied
                        // one at a time, so these two borrows are the only
                        // live references to their slots.
                        let (Some(a), Some(b)) = (unsafe { raw.get_mut(p.initiator) }, unsafe {
                            raw.get_mut(p.partner)
                        }) else {
                            continue;
                        };
                        let traffic = protocol.par_apply(p, round, a, b);
                        if let Some(bytes) = traffic.request {
                            shard.charge_message(p.initiator, p.partner, bytes);
                        }
                        if let Some(bytes) = traffic.response {
                            shard.charge_message(p.partner, p.initiator, bytes);
                        }
                    }
                    shard
                });
                for shard in &shards {
                    self.net.merge_shard(shard);
                }
            }
        }
        self.round += 1;
    }

    /// Runs `n` rounds on the parallel path.
    pub fn run_rounds_parallel(&mut self, n: u64)
    where
        P: Sync,
        P::Node: Send + Sync,
    {
        for _ in 0..n {
            self.run_round_parallel();
        }
    }

    /// Replaces the worker-thread count (`0` = auto-detect) used by
    /// [`run_round_parallel`](Engine::run_round_parallel).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// The configured worker-thread count (`0` = auto-detect).
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    fn apply_churn(&mut self) {
        let victims: Vec<NodeId> = match self.churn {
            ChurnModel::None => return,
            ChurnModel::Uniform { rate } => {
                let k = self
                    .churn_state
                    .uniform_replacements(rate, self.nodes.len());
                let mut picked = Vec::with_capacity(k);
                let mut seen = std::collections::HashSet::with_capacity(k);
                for _ in 0..k {
                    if let Some(id) = self.nodes.random_id(&mut self.rng) {
                        if seen.insert(id) {
                            picked.push(id);
                        }
                    }
                }
                picked
            }
            ChurnModel::Sessions { .. } => self.churn_state.due_deaths(self.round),
        };
        if victims.is_empty() {
            return;
        }
        let count = victims.len();
        for id in victims {
            if let Some(state) = self.nodes.remove(id) {
                self.overlay.remove_node(id);
                self.protocol.on_leave(id, state);
            }
        }
        // Replace departures to keep the population size constant, as the
        // paper's churn model does.
        let mut joined = Vec::with_capacity(count);
        for _ in 0..count {
            let state = self.protocol.make_node(&mut self.rng);
            let id = self.nodes.insert(state);
            self.net.reset_slot(id.slot());
            self.churn_state
                .on_insert(&self.churn, id, self.round, &mut self.rng);
            self.overlay.register_node(id, &self.nodes, &mut self.rng);
            joined.push(id);
        }
        for id in joined {
            let mut ctx = Ctx {
                round: self.round,
                nodes: &mut self.nodes,
                overlay: &self.overlay,
                rng: &mut self.rng,
                net: &mut self.net,
                loss_rate: self.loss_rate,
            };
            self.protocol.on_join(id, &mut ctx);
        }
    }

    /// Current round number (number of completed rounds).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The live nodes.
    pub fn nodes(&self) -> &NodeSlab<P::Node> {
        &self.nodes
    }

    /// Mutable access to the live nodes (for test/experiment setup).
    pub fn nodes_mut(&mut self) -> &mut NodeSlab<P::Node> {
        &mut self.nodes
    }

    /// The protocol instance.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Mutable access to the protocol instance (e.g. to trigger an
    /// aggregation instance from the experiment harness).
    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.protocol
    }

    /// Network statistics.
    pub fn net(&self) -> &NetStats {
        &self.net
    }

    /// Mutable network statistics (e.g. to reset between phases).
    pub fn net_mut(&mut self) -> &mut NetStats {
        &mut self.net
    }

    /// The overlay.
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// Engine RNG (e.g. for experiment-level sampling decisions that
    /// should be reproducible with the run).
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Splits the network into `k` uniformly random partition groups from
    /// the next round on: gossip partners are only drawn within a node's
    /// group. Churn replacements land in group 0. Use
    /// [`heal_partition`](Engine::heal_partition) to reconnect.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn partition_into(&mut self, k: u32) {
        assert!(k > 0, "k must be positive");
        let mut groups = vec![0u32; self.nodes.slot_count()];
        for id in self.nodes.id_vec() {
            groups[id.slot()] = self.rng.random_range(0..k);
        }
        self.overlay.set_partition(groups);
    }

    /// Heals a network partition.
    pub fn heal_partition(&mut self) {
        self.overlay.clear_partition();
    }

    /// The partition group of a node (0 when unpartitioned).
    pub fn partition_group(&self, id: NodeId) -> u32 {
        self.overlay.group_of(id)
    }

    /// Replaces the churn model from the next round on.
    pub fn set_churn(&mut self, churn: ChurnModel) {
        self.churn = churn;
        self.churn_state.clear();
        if let ChurnModel::Sessions { .. } = churn {
            // (Re)schedule sessions for the existing population.
            for id in self.nodes.id_vec() {
                self.churn_state
                    .on_insert(&churn, id, self.round, &mut self.rng);
            }
        }
    }

    /// Invokes `f` with an execution context outside a round (used by
    /// experiment harnesses to trigger protocol actions deterministically).
    pub fn with_ctx<R>(&mut self, f: impl FnOnce(&mut P, &mut Ctx<'_, P::Node>) -> R) -> R {
        let mut ctx = Ctx {
            round: self.round,
            nodes: &mut self.nodes,
            overlay: &self.overlay,
            rng: &mut self.rng,
            net: &mut self.net,
            loss_rate: self.loss_rate,
        };
        f(&mut self.protocol, &mut ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::OverlayKind;

    /// Test protocol: push–pull averaging of a per-node value.
    struct Averaging {
        next_value: f64,
    }

    impl Protocol for Averaging {
        type Node = f64;

        fn make_node(&mut self, _rng: &mut StdRng) -> f64 {
            self.next_value += 1.0;
            self.next_value
        }

        fn on_round(&mut self, id: NodeId, ctx: &mut Ctx<'_, f64>) {
            let Some(partner) = ctx.random_neighbour(id) else {
                return;
            };
            let Some((a, b)) = ctx.nodes.pair_mut(id, partner) else {
                return;
            };
            let mean = (*a + *b) / 2.0;
            *a = mean;
            *b = mean;
            ctx.net.charge_exchange(id, partner, 8, 8);
        }

        fn parallel_capable(&self) -> bool {
            true
        }

        fn par_local(
            &self,
            _id: NodeId,
            _node: &mut f64,
            _round: u64,
            _rng: &mut StdRng,
        ) -> ParLocal {
            ParLocal {
                initiates: true,
                ..ParLocal::default()
            }
        }

        fn par_apply(
            &self,
            plan: &PlannedExchange,
            _round: u64,
            a: &mut f64,
            b: &mut f64,
        ) -> ExchangeTraffic {
            match plan.fate {
                ExchangeFate::Complete => {
                    let mean = (*a + *b) / 2.0;
                    *a = mean;
                    *b = mean;
                    ExchangeTraffic {
                        request: Some(8),
                        response: Some(8),
                    }
                }
                ExchangeFate::RequestLost => ExchangeTraffic {
                    request: Some(8),
                    response: None,
                },
                ExchangeFate::ResponseLost => {
                    *b = (*a + *b) / 2.0;
                    ExchangeTraffic {
                        request: Some(8),
                        response: Some(8),
                    }
                }
            }
        }
    }

    /// Full observable state of an engine run, for bit-exact comparisons.
    #[allow(clippy::type_complexity)]
    fn snapshot(engine: &Engine<Averaging>) -> (Vec<(usize, u64)>, u64, u64, Vec<(u64, u64)>) {
        let values: Vec<(usize, u64)> = engine
            .nodes()
            .iter()
            .map(|(id, v)| (id.slot(), v.to_bits()))
            .collect();
        let traffic: Vec<(u64, u64)> = engine
            .nodes()
            .iter()
            .map(|(id, _)| {
                let t = engine.net().node(id);
                (t.total_bytes(), t.total_msgs())
            })
            .collect();
        (
            values,
            engine.net().total_bytes(),
            engine.net().total_msgs(),
            traffic,
        )
    }

    #[test]
    fn averaging_converges_to_global_mean() {
        let mut engine = Engine::new(EngineConfig::new(128, 42), Averaging { next_value: 0.0 });
        engine.run_rounds(60);
        let expected = 129.0 / 2.0;
        for (_, v) in engine.nodes().iter() {
            assert!((v - expected).abs() < 1e-9, "value {v} far from {expected}");
        }
    }

    #[test]
    fn averaging_conserves_mass_every_round() {
        let mut engine = Engine::new(EngineConfig::new(64, 7), Averaging { next_value: 0.0 });
        let initial: f64 = engine.nodes().iter().map(|(_, v)| *v).sum();
        for _ in 0..20 {
            engine.run_round();
            let sum: f64 = engine.nodes().iter().map(|(_, v)| *v).sum();
            assert!(
                (sum - initial).abs() < 1e-6,
                "mass leaked: {sum} vs {initial}"
            );
        }
    }

    #[test]
    fn averaging_converges_on_shuffle_overlay_too() {
        let config = EngineConfig::new(128, 42).with_overlay(OverlayConfig {
            kind: OverlayKind::Shuffle,
            degree: 10,
            shuffle_len: 3,
        });
        let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
        engine.run_rounds(60);
        let expected = 129.0 / 2.0;
        for (_, v) in engine.nodes().iter() {
            assert!((v - expected).abs() < 1e-6, "value {v} far from {expected}");
        }
    }

    #[test]
    fn churn_keeps_population_constant() {
        let config = EngineConfig::new(100, 1).with_churn(ChurnModel::uniform(0.05));
        let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
        for _ in 0..50 {
            engine.run_round();
            assert_eq!(engine.nodes().len(), 100);
        }
    }

    #[test]
    fn session_churn_keeps_population_constant() {
        let config = EngineConfig::new(100, 2).with_churn(ChurnModel::sessions(10.0));
        let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
        for _ in 0..100 {
            engine.run_round();
            assert_eq!(engine.nodes().len(), 100);
        }
    }

    #[test]
    fn network_traffic_is_recorded() {
        let mut engine = Engine::new(EngineConfig::new(10, 3), Averaging { next_value: 0.0 });
        engine.run_round();
        // Every node initiates one exchange of 8+8 bytes.
        assert_eq!(engine.net().total_msgs(), 20);
        assert_eq!(engine.net().total_bytes(), 160);
    }

    #[test]
    fn rounds_advance() {
        let mut engine = Engine::new(EngineConfig::new(4, 4), Averaging { next_value: 0.0 });
        assert_eq!(engine.round(), 0);
        engine.run_rounds(5);
        assert_eq!(engine.round(), 5);
    }

    #[test]
    fn partitions_prevent_cross_group_averaging() {
        let mut engine = Engine::new(EngineConfig::new(200, 8), Averaging { next_value: 0.0 });
        engine.partition_into(2);
        engine.run_rounds(40);
        // Each group converges to its own mean; the two means must differ
        // (groups hold different value subsets with probability ~1).
        let mut groups: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
        for (id, v) in engine.nodes().iter() {
            groups[engine.partition_group(id) as usize].push(*v);
        }
        assert!(!groups[0].is_empty() && !groups[1].is_empty());
        for g in &groups {
            let mean = g.iter().sum::<f64>() / g.len() as f64;
            for v in g {
                assert!((v - mean).abs() < 1e-6, "group not internally converged");
            }
        }
        let m0 = groups[0].iter().sum::<f64>() / groups[0].len() as f64;
        let m1 = groups[1].iter().sum::<f64>() / groups[1].len() as f64;
        assert!((m0 - m1).abs() > 1e-6, "groups should disagree while split");

        // Healing reconnects: everyone converges to the global mean.
        engine.heal_partition();
        engine.run_rounds(60);
        let expected = 201.0 / 2.0;
        for (_, v) in engine.nodes().iter() {
            assert!((v - expected).abs() < 1e-6, "post-heal value {v}");
        }
    }

    struct JoinTracker {
        joins: usize,
        leaves: usize,
    }

    impl Protocol for JoinTracker {
        type Node = ();

        fn make_node(&mut self, _rng: &mut StdRng) {}

        fn on_round(&mut self, _id: NodeId, _ctx: &mut Ctx<'_, ()>) {}

        fn on_join(&mut self, _id: NodeId, _ctx: &mut Ctx<'_, ()>) {
            self.joins += 1;
        }

        fn on_leave(&mut self, _id: NodeId, _node: ()) {
            self.leaves += 1;
        }
    }

    #[test]
    fn parallel_averaging_converges_to_global_mean() {
        let config = EngineConfig::new(128, 42).with_threads(4);
        let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
        engine.run_rounds_parallel(60);
        let expected = 129.0 / 2.0;
        for (_, v) in engine.nodes().iter() {
            assert!((v - expected).abs() < 1e-9, "value {v} far from {expected}");
        }
    }

    #[test]
    fn parallel_conserves_mass_every_round() {
        let config = EngineConfig::new(300, 7).with_threads(4);
        let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
        let initial: f64 = engine.nodes().iter().map(|(_, v)| *v).sum();
        for _ in 0..20 {
            engine.run_round_parallel();
            let sum: f64 = engine.nodes().iter().map(|(_, v)| *v).sum();
            assert!(
                (sum - initial).abs() < 1e-6,
                "mass leaked: {sum} vs {initial}"
            );
        }
    }

    #[test]
    fn parallel_records_same_message_count_as_sequential() {
        // Lossless network: both paths carry exactly one exchange per node
        // per round, so the counters must agree exactly.
        let mut seq = Engine::new(EngineConfig::new(10, 3), Averaging { next_value: 0.0 });
        seq.run_round();
        let config = EngineConfig::new(10, 3).with_threads(2);
        let mut par = Engine::new(config, Averaging { next_value: 0.0 });
        par.run_round_parallel();
        assert_eq!(par.net().total_msgs(), seq.net().total_msgs());
        assert_eq!(par.net().total_bytes(), seq.net().total_bytes());
        assert_eq!(par.net().round_msgs(), 20);
    }

    #[test]
    fn parallel_is_bit_identical_across_thread_counts() {
        // Churn + shuffle overlay + loss: the full feature surface must be
        // thread-count invariant, including per-node traffic tables.
        let base = EngineConfig::new(300, 11)
            .with_overlay(OverlayConfig {
                kind: OverlayKind::Shuffle,
                degree: 10,
                shuffle_len: 3,
            })
            .with_churn(ChurnModel::uniform(0.02))
            .with_loss_rate(0.05);
        let mut reference = None;
        for threads in [1, 2, 4, 7] {
            let config = base.with_threads(threads);
            let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
            engine.run_rounds_parallel(25);
            let snap = snapshot(&engine);
            match &reference {
                None => reference = Some(snap),
                Some(r) => assert_eq!(&snap, r, "threads={threads} diverged"),
            }
        }
    }

    #[test]
    fn parallel_same_config_twice_is_identical() {
        let config = EngineConfig::new(200, 9)
            .with_churn(ChurnModel::uniform(0.01))
            .with_threads(4);
        let runs: Vec<_> = (0..2)
            .map(|_| {
                let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
                engine.run_rounds_parallel(30);
                snapshot(&engine)
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn sequential_same_config_twice_is_identical() {
        let config = EngineConfig::new(200, 9).with_churn(ChurnModel::uniform(0.01));
        let runs: Vec<_> = (0..2)
            .map(|_| {
                let mut engine = Engine::new(config, Averaging { next_value: 0.0 });
                engine.run_rounds(30);
                snapshot(&engine)
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn parallel_falls_back_for_non_capable_protocols() {
        // JoinTracker does not implement the parallel API; the parallel
        // entry point must behave exactly like the sequential path.
        let config = EngineConfig::new(100, 5)
            .with_churn(ChurnModel::uniform(0.02))
            .with_threads(4);
        let mut seq = Engine::new(
            config,
            JoinTracker {
                joins: 0,
                leaves: 0,
            },
        );
        seq.run_rounds(20);
        let mut par = Engine::new(
            config,
            JoinTracker {
                joins: 0,
                leaves: 0,
            },
        );
        par.run_rounds_parallel(20);
        assert_eq!(par.protocol().joins, seq.protocol().joins);
        assert_eq!(par.protocol().leaves, seq.protocol().leaves);
    }

    #[test]
    fn join_and_leave_hooks_fire_under_churn() {
        let config = EngineConfig::new(200, 5).with_churn(ChurnModel::uniform(0.01));
        let mut engine = Engine::new(
            config,
            JoinTracker {
                joins: 0,
                leaves: 0,
            },
        );
        engine.run_rounds(50);
        let p = engine.protocol();
        assert_eq!(p.joins, p.leaves);
        // 1%/round * 200 nodes * 50 rounds = ~100 replacements.
        assert!((80..=120).contains(&p.joins), "joins {}", p.joins);
    }
}
