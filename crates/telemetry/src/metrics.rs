//! Metric registry: counters, gauges, and log-bucketed histograms.
//!
//! Metrics are registered once by name and then addressed by typed index
//! handles ([`CounterId`], [`GaugeId`], [`HistogramId`]), so the hot path
//! never hashes strings. The parallel engine records into per-worker
//! [`MetricShard`]s and merges them in deterministic (chunk) order at round
//! end — the same pattern `NetShard` uses for traffic accounting. Counter
//! and histogram merges are commutative sums, so the merged totals are
//! identical for any shard partitioning; gauges are last-write-wins and are
//! therefore only settable on the single-threaded driver, never in shards.

/// Index handle for a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) usize);

/// Index handle for a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub(crate) usize);

/// Index handle for a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(pub(crate) usize);

/// Number of buckets in a log-bucketed histogram: one for zero plus one per
/// possible `u64` bit length.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram over `u64` samples.
///
/// Bucket 0 holds exact zeros; bucket `b >= 1` holds values whose bit
/// length is `b`, i.e. the half-open range `[2^(b-1), 2^b)`. Count, sum,
/// min, and max are tracked exactly alongside the buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a sample value.
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Occupancy of one bucket.
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Folds another histogram into this one. Commutative and associative,
    /// so shard merges yield the same result in any order.
    pub fn absorb(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn reset(&mut self) {
        *self = Self::new();
    }
}

/// Registry of named counters, gauges, and histograms.
///
/// Registration is idempotent: registering an existing name returns the
/// original handle. Lookups on the record path are by index only.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    counter_names: Vec<&'static str>,
    counters: Vec<u64>,
    gauge_names: Vec<&'static str>,
    gauges: Vec<f64>,
    histogram_names: Vec<&'static str>,
    histograms: Vec<Histogram>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) a counter by name.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counter_names.iter().position(|n| *n == name) {
            return CounterId(i);
        }
        self.counter_names.push(name);
        self.counters.push(0);
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) a gauge by name.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauge_names.iter().position(|n| *n == name) {
            return GaugeId(i);
        }
        self.gauge_names.push(name);
        self.gauges.push(0.0);
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or finds) a histogram by name.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        if let Some(i) = self.histogram_names.iter().position(|n| *n == name) {
            return HistogramId(i);
        }
        self.histogram_names.push(name);
        self.histograms.push(Histogram::new());
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0] += delta;
    }

    /// Reads a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Sets a gauge to its latest observation.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0] = value;
    }

    /// Reads a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0]
    }

    /// Records a histogram sample.
    #[inline]
    pub fn record(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].record(value);
    }

    /// Reads a histogram.
    pub fn histogram_value(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0]
    }

    /// Creates a worker-local shard compatible with this registry's current
    /// counter and histogram layout.
    pub fn shard(&self) -> MetricShard {
        MetricShard {
            counters: vec![0; self.counters.len()],
            histograms: vec![Histogram::new(); self.histograms.len()],
        }
    }

    /// Folds a worker shard into the registry. Gauges are not shardable and
    /// are untouched.
    ///
    /// # Panics
    ///
    /// Panics if the shard was created before additional metrics were
    /// registered (layout mismatch).
    pub fn merge_shard(&mut self, shard: &MetricShard) {
        assert_eq!(
            shard.counters.len(),
            self.counters.len(),
            "metric shard layout mismatch (counters)"
        );
        assert_eq!(
            shard.histograms.len(),
            self.histograms.len(),
            "metric shard layout mismatch (histograms)"
        );
        for (c, s) in self.counters.iter_mut().zip(shard.counters.iter()) {
            *c += s;
        }
        for (h, s) in self.histograms.iter_mut().zip(shard.histograms.iter()) {
            h.absorb(s);
        }
    }

    /// Zeroes all counters, gauges, and histograms while keeping the
    /// registered names and handles valid.
    pub fn reset_values(&mut self) {
        for c in &mut self.counters {
            *c = 0;
        }
        for g in &mut self.gauges {
            *g = 0.0;
        }
        for h in &mut self.histograms {
            h.reset();
        }
    }

    /// Iterates `(name, value)` over all counters.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counter_names
            .iter()
            .copied()
            .zip(self.counters.iter().copied())
    }

    /// Iterates `(name, value)` over all gauges.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauge_names
            .iter()
            .copied()
            .zip(self.gauges.iter().copied())
    }

    /// Iterates `(name, histogram)` over all histograms.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histogram_names
            .iter()
            .copied()
            .zip(self.histograms.iter())
    }
}

/// Worker-local slice of counters and histograms for lock-free recording on
/// the parallel apply path. Merged into the owning [`MetricRegistry`] in
/// deterministic chunk order via [`MetricRegistry::merge_shard`].
#[derive(Debug, Clone)]
pub struct MetricShard {
    counters: Vec<u64>,
    histograms: Vec<Histogram>,
}

impl MetricShard {
    /// Adds to a sharded counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0] += delta;
    }

    /// Records a sharded histogram sample.
    #[inline]
    pub fn record(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let mut reg = MetricRegistry::new();
        let a = reg.counter("exchanges");
        let b = reg.counter("repairs");
        let a2 = reg.counter("exchanges");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        reg.add(a, 3);
        reg.add(a2, 2);
        assert_eq!(reg.counter_value(a), 5);
    }

    #[test]
    fn gauges_hold_latest_value() {
        let mut reg = MetricRegistry::new();
        let g = reg.gauge("err_a");
        reg.set(g, 0.25);
        reg.set(g, 0.125);
        assert_eq!(reg.gauge_value(g), 0.125);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(2), 2);
        assert_eq!(h.bucket(7), 1); // 100 ∈ [64, 128)
    }

    #[test]
    fn shard_merge_is_order_independent() {
        let mut reg = MetricRegistry::new();
        let c = reg.counter("bytes");
        let h = reg.histogram("msg_size");

        let mut s1 = reg.shard();
        let mut s2 = reg.shard();
        s1.add(c, 10);
        s1.record(h, 8);
        s2.add(c, 32);
        s2.record(h, 1024);
        s2.record(h, 0);

        let mut forward = MetricRegistry::new();
        let fc = forward.counter("bytes");
        let fh = forward.histogram("msg_size");
        forward.merge_shard(&s1);
        forward.merge_shard(&s2);

        let mut backward = MetricRegistry::new();
        let bc = backward.counter("bytes");
        let bh = backward.histogram("msg_size");
        backward.merge_shard(&s2);
        backward.merge_shard(&s1);

        assert_eq!(forward.counter_value(fc), 42);
        assert_eq!(backward.counter_value(bc), 42);
        let (f, b) = (forward.histogram_value(fh), backward.histogram_value(bh));
        assert_eq!(f.count(), b.count());
        assert_eq!(f.sum(), b.sum());
        assert_eq!(f.min(), b.min());
        assert_eq!(f.max(), b.max());
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(f.bucket(i), b.bucket(i));
        }
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn stale_shard_layout_panics() {
        let mut reg = MetricRegistry::new();
        reg.counter("a");
        let shard = reg.shard();
        reg.counter("b");
        reg.merge_shard(&shard);
    }

    #[test]
    fn reset_values_keeps_handles() {
        let mut reg = MetricRegistry::new();
        let c = reg.counter("n");
        let g = reg.gauge("x");
        let h = reg.histogram("s");
        reg.add(c, 7);
        reg.set(g, 1.5);
        reg.record(h, 9);
        reg.reset_values();
        assert_eq!(reg.counter_value(c), 0);
        assert_eq!(reg.gauge_value(g), 0.0);
        assert_eq!(reg.histogram_value(h).count(), 0);
        assert_eq!(reg.counters().count(), 1);
    }
}
