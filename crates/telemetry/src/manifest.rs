//! Run manifests: enough provenance to compare bench exports across
//! machines and re-runs (config hash, seed, thread count, host core count,
//! git revision).

use std::path::Path;

/// Schema version stamped into every manifest; bump on breaking changes to
/// the exported snapshot/event schemas.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// Provenance record written alongside every telemetry export and embedded
/// in `BENCH_*.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// Export schema version ([`MANIFEST_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Experiment or binary name (e.g. `"bench_faults"`).
    pub experiment: String,
    /// FNV-1a hash of the canonical configuration string.
    pub config_hash: u64,
    /// Base seed the run derived all streams from.
    pub seed: u64,
    /// Worker threads the run was configured with (0 = auto).
    pub threads: usize,
    /// Cores `std::thread::available_parallelism` detected on the host.
    pub detected_cores: usize,
    /// Git revision of the working tree, or `"unknown"`.
    pub git_rev: String,
}

impl RunManifest {
    /// Builds a manifest for `experiment`, hashing `config` canonically and
    /// detecting host cores and the git revision of the current directory
    /// tree.
    pub fn new(experiment: &str, config: &str, seed: u64, threads: usize) -> Self {
        Self {
            schema_version: MANIFEST_SCHEMA_VERSION,
            experiment: experiment.to_string(),
            config_hash: fnv1a(config.as_bytes()),
            seed,
            threads,
            detected_cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            git_rev: git_revision(Path::new(".")).unwrap_or_else(|| "unknown".to_string()),
        }
    }

    /// Renders the manifest as a standalone JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema_version\": {},\n  \"experiment\": \"{}\",\n  \
             \"config_hash\": {},\n  \"seed\": {},\n  \"threads\": {},\n  \
             \"detected_cores\": {},\n  \"git_rev\": \"{}\"\n}}\n",
            self.schema_version,
            json_escape(&self.experiment),
            self.config_hash,
            self.seed,
            self.threads,
            self.detected_cores,
            json_escape(&self.git_rev),
        )
    }

    /// Renders the manifest as an inline JSON object suitable for embedding
    /// as a `"manifest"` field inside a larger document.
    pub fn to_inline_json(&self) -> String {
        format!(
            "{{\"schema_version\": {}, \"experiment\": \"{}\", \
             \"config_hash\": {}, \"seed\": {}, \"threads\": {}, \
             \"detected_cores\": {}, \"git_rev\": \"{}\"}}",
            self.schema_version,
            json_escape(&self.experiment),
            self.config_hash,
            self.seed,
            self.threads,
            self.detected_cores,
            json_escape(&self.git_rev),
        )
    }
}

/// FNV-1a over a byte string; stable across platforms and runs, good enough
/// to detect configuration divergence between exports.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Resolves the current git revision by reading `.git/HEAD` (and the ref
/// file it points to) from `dir` or any ancestor — no subprocess, works in
/// sandboxes without a `git` binary on PATH. Returns `None` outside a git
/// checkout.
pub fn git_revision(dir: &Path) -> Option<String> {
    let mut cur = dir.canonicalize().ok()?;
    loop {
        let git = cur.join(".git");
        if git.is_dir() {
            return read_head(&git);
        }
        if !cur.pop() {
            return None;
        }
    }
}

fn read_head(git_dir: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git_dir.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(reference) = head.strip_prefix("ref: ") {
        let direct = git_dir.join(reference);
        if let Ok(rev) = std::fs::read_to_string(direct) {
            return Some(rev.trim().to_string());
        }
        // Packed refs fall-back: "<hash> <refname>" lines.
        let packed = std::fs::read_to_string(git_dir.join("packed-refs")).ok()?;
        for line in packed.lines() {
            if let Some((hash, name)) = line.split_once(' ') {
                if name == reference {
                    return Some(hash.trim().to_string());
                }
            }
        }
        None
    } else {
        Some(head.to_string())
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable_and_discriminating() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"adam2"), fnv1a(b"adam2"));
        assert_ne!(fnv1a(b"lambda=50"), fnv1a(b"lambda=51"));
    }

    #[test]
    fn manifest_json_contains_all_fields() {
        let m = RunManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            experiment: "bench_engine".to_string(),
            config_hash: 42,
            seed: 7,
            threads: 4,
            detected_cores: 8,
            git_rev: "deadbeef".to_string(),
        };
        let json = m.to_json();
        for needle in [
            "\"schema_version\": 1",
            "\"experiment\": \"bench_engine\"",
            "\"config_hash\": 42",
            "\"seed\": 7",
            "\"threads\": 4",
            "\"detected_cores\": 8",
            "\"git_rev\": \"deadbeef\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(m.to_inline_json().starts_with('{'));
        assert!(!m.to_inline_json().contains('\n'));
    }

    #[test]
    fn git_revision_resolves_in_this_repo() {
        // The workspace is a git checkout; the revision must be a hex hash.
        let rev = git_revision(Path::new(env!("CARGO_MANIFEST_DIR")));
        let rev = rev.expect("workspace is a git repo");
        assert!(rev.len() >= 7, "unexpectedly short rev {rev}");
        assert!(rev.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
