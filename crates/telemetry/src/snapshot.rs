//! Per-round snapshot records exported as JSON Lines and CSV.

/// One per-round observation of the simulation, with a fixed schema shared
/// by the JSONL and CSV exporters (documented in DESIGN.md and validated by
/// the `telemetry_check` CI binary).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSnapshot {
    /// Round index the snapshot describes.
    pub round: u64,
    /// Live (non-crashed) nodes at round end.
    pub live_nodes: u64,
    /// Max CDF error Err_m over the evaluation sample (NaN = not measured).
    pub err_max: f64,
    /// Average CDF error Err_a over the evaluation sample (NaN = not
    /// measured).
    pub err_avg: f64,
    /// Signed weight-mass defect from `MassAuditor` (NaN = not measured).
    pub mass_weight_defect: f64,
    /// Signed fraction-mass defect from `MassAuditor` (NaN = not measured).
    pub mass_fraction_defect: f64,
    /// Bytes carried this round.
    pub round_bytes: u64,
    /// Messages carried this round.
    pub round_msgs: u64,
    /// Gossip exchanges initiated this round.
    pub exchanges: u64,
    /// Repair retransmissions this round.
    pub repairs: u64,
    /// Exchanges aborted after exhausting repair this round.
    pub aborts: u64,
    /// Fault events fired this round (loss overrides + partitions).
    pub faults: u64,
    /// Nodes crashed this round.
    pub crashes: u64,
    /// Nodes recovered this round.
    pub recoveries: u64,
    /// Churn joins this round.
    pub joins: u64,
    /// Churn leaves this round.
    pub leaves: u64,
    /// Self-heal epoch restarts voted this round.
    pub heal_bumps: u64,
    /// Recovered/late nodes that bootstrapped an estimate from a completed
    /// partner snapshot this round.
    pub bootstraps: u64,
    /// Partner contributions rejected outright by the robust merge path's
    /// plausibility screen this round (0 in vanilla mode).
    pub robust_rejects: u64,
    /// Per-component contributions trimmed or influence-capped by the
    /// robust merge path this round (0 in vanilla mode).
    pub robust_trims: u64,
    /// Peak number of exchanges simultaneously in flight this round
    /// (parallel engine: the widest conflict-free batch; deploy runtime:
    /// the peak of the live in-flight gauge).
    pub inflight_exchanges: u64,
    /// Peak outbound queue depth observed this round (0 in the simulator,
    /// which has no queues; the deploy runtime reports the deepest per-node
    /// bounded sender queue).
    pub queue_depth_max: u64,
}

impl RoundSnapshot {
    /// Creates an all-zero snapshot for a round, with the measured-by-bench
    /// fields (errors, mass defects) marked unmeasured (NaN).
    pub fn empty(round: u64) -> Self {
        Self {
            round,
            live_nodes: 0,
            err_max: f64::NAN,
            err_avg: f64::NAN,
            mass_weight_defect: f64::NAN,
            mass_fraction_defect: f64::NAN,
            round_bytes: 0,
            round_msgs: 0,
            exchanges: 0,
            repairs: 0,
            aborts: 0,
            faults: 0,
            crashes: 0,
            recoveries: 0,
            joins: 0,
            leaves: 0,
            heal_bumps: 0,
            bootstraps: 0,
            robust_rejects: 0,
            robust_trims: 0,
            inflight_exchanges: 0,
            queue_depth_max: 0,
        }
    }

    /// Renders the snapshot as one JSON Lines record. Unmeasured floats
    /// (NaN or infinite) render as `null`.
    pub fn jsonl(&self) -> String {
        format!(
            "{{\"round\":{},\"live_nodes\":{},\"err_max\":{},\"err_avg\":{},\
             \"mass_weight_defect\":{},\"mass_fraction_defect\":{},\
             \"round_bytes\":{},\"round_msgs\":{},\"exchanges\":{},\
             \"repairs\":{},\"aborts\":{},\"faults\":{},\"crashes\":{},\
             \"recoveries\":{},\"joins\":{},\"leaves\":{},\"heal_bumps\":{},\
             \"bootstraps\":{},\"robust_rejects\":{},\"robust_trims\":{},\
             \"inflight_exchanges\":{},\"queue_depth_max\":{}}}",
            self.round,
            self.live_nodes,
            json_f64(self.err_max),
            json_f64(self.err_avg),
            json_f64(self.mass_weight_defect),
            json_f64(self.mass_fraction_defect),
            self.round_bytes,
            self.round_msgs,
            self.exchanges,
            self.repairs,
            self.aborts,
            self.faults,
            self.crashes,
            self.recoveries,
            self.joins,
            self.leaves,
            self.heal_bumps,
            self.bootstraps,
            self.robust_rejects,
            self.robust_trims,
            self.inflight_exchanges,
            self.queue_depth_max,
        )
    }

    /// CSV header matching [`RoundSnapshot::csv_row`].
    pub const CSV_HEADER: &'static str = "round,live_nodes,err_max,err_avg,\
        mass_weight_defect,mass_fraction_defect,round_bytes,round_msgs,\
        exchanges,repairs,aborts,faults,crashes,recoveries,joins,leaves,\
        heal_bumps,bootstraps,robust_rejects,robust_trims,\
        inflight_exchanges,queue_depth_max";

    /// Renders the snapshot as one CSV row (unmeasured floats are empty
    /// cells).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.round,
            self.live_nodes,
            csv_f64(self.err_max),
            csv_f64(self.err_avg),
            csv_f64(self.mass_weight_defect),
            csv_f64(self.mass_fraction_defect),
            self.round_bytes,
            self.round_msgs,
            self.exchanges,
            self.repairs,
            self.aborts,
            self.faults,
            self.crashes,
            self.recoveries,
            self.joins,
            self.leaves,
            self.heal_bumps,
            self.bootstraps,
            self.robust_rejects,
            self.robust_trims,
            self.inflight_exchanges,
            self.queue_depth_max,
        )
    }
}

/// Renders an `f64` as a JSON value: `null` when NaN/infinite, otherwise
/// the shortest round-trip decimal (Rust's `Display` for `f64` never emits
/// exponent notation, so the output is always valid JSON).
pub fn json_f64(value: f64) -> String {
    if value.is_finite() {
        let mut s = format!("{value}");
        if !s.contains('.') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

fn csv_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_renders_nan_as_null() {
        let s = RoundSnapshot::empty(4);
        let line = s.jsonl();
        assert!(line.starts_with("{\"round\":4,"));
        assert!(line.contains("\"err_max\":null"));
        assert!(line.contains("\"bootstraps\":0,"));
        assert!(line.contains("\"queue_depth_max\":0}"));
    }

    #[test]
    fn jsonl_renders_finite_floats_plainly() {
        let mut s = RoundSnapshot::empty(0);
        s.err_avg = 0.015625;
        s.mass_weight_defect = -2.0;
        let line = s.jsonl();
        assert!(line.contains("\"err_avg\":0.015625"));
        assert!(line.contains("\"mass_weight_defect\":-2.0"));
    }

    #[test]
    fn csv_header_matches_row_arity() {
        let s = RoundSnapshot::empty(1);
        let cols = RoundSnapshot::CSV_HEADER.split(',').count();
        assert_eq!(s.csv_row().split(',').count(), cols);
    }

    #[test]
    fn json_f64_always_valid_json_number_or_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(0.5), "0.5");
        // Tiny values must not use exponent notation.
        assert!(!json_f64(1e-12).contains('e'));
    }
}
