//! Observability layer for the Adam2 reproduction: metric registry,
//! structured event tracing, per-round snapshots, and run manifests.
//!
//! The crate is dependency-free (std only) so simulation crates can use it
//! without pulling anything into the hot path. Three design rules keep the
//! instrumentation honest:
//!
//! 1. **Never touch simulation randomness.** Recording a metric or event
//!    draws nothing from any engine RNG, so a run with telemetry attached
//!    is bit-identical to one without.
//! 2. **Shard, then merge in deterministic order.** Parallel workers write
//!    into [`MetricShard`]s (plain memory, no locks); the driver merges
//!    them in chunk order at round end, mirroring the simulator's
//!    `NetShard` pattern. Counter and histogram merges are commutative
//!    sums, so totals are independent of the thread count.
//! 3. **Fixed export schema.** [`RoundSnapshot`] is a closed struct, not a
//!    bag of labels; the JSONL/CSV column set is documented in DESIGN.md
//!    and validated by CI.
//!
//! [`Telemetry`] bundles the three stores and knows how to export them as
//! `manifest.json` + `rounds.jsonl` + `rounds.csv` + `events.jsonl`.

mod events;
mod manifest;
mod metrics;
mod snapshot;

pub use events::{Event, EventKind, EventTrace};
pub use manifest::{fnv1a, git_revision, RunManifest, MANIFEST_SCHEMA_VERSION};
pub use metrics::{
    CounterId, GaugeId, Histogram, HistogramId, MetricRegistry, MetricShard, HISTOGRAM_BUCKETS,
};
pub use snapshot::{json_f64, RoundSnapshot};

use std::io::Write as _;
use std::path::Path;

/// Default event-ring capacity when none is requested.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Aggregate telemetry store: metrics + event trace + per-round snapshots.
#[derive(Debug)]
pub struct Telemetry {
    /// Named counters, gauges, and histograms.
    pub metrics: MetricRegistry,
    /// Ring-buffered structured events.
    pub events: EventTrace,
    snapshots: Vec<RoundSnapshot>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new(DEFAULT_EVENT_CAPACITY)
    }
}

impl Telemetry {
    /// Creates an empty store whose event ring retains `event_capacity`
    /// events.
    pub fn new(event_capacity: usize) -> Self {
        Self {
            metrics: MetricRegistry::new(),
            events: EventTrace::new(event_capacity),
            snapshots: Vec::new(),
        }
    }

    /// Appends a completed round snapshot.
    pub fn push_snapshot(&mut self, snapshot: RoundSnapshot) {
        self.snapshots.push(snapshot);
    }

    /// Mutable access to the snapshot for `round`, if one was recorded —
    /// used by bench drivers to annotate engine-recorded rounds with
    /// measurements (Err_m/Err_a, mass defects) only the harness can take.
    pub fn snapshot_mut(&mut self, round: u64) -> Option<&mut RoundSnapshot> {
        // Snapshots are pushed in round order; search from the back since
        // annotation nearly always targets the latest round.
        self.snapshots.iter_mut().rev().find(|s| s.round == round)
    }

    /// All recorded snapshots, in round order.
    pub fn snapshots(&self) -> &[RoundSnapshot] {
        &self.snapshots
    }

    /// Writes `manifest.json`, `rounds.jsonl`, `rounds.csv`, and
    /// `events.jsonl` under `dir` (created if missing).
    pub fn export(&self, dir: &Path, manifest: &RunManifest) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("manifest.json"), manifest.to_json())?;

        let mut jsonl = std::fs::File::create(dir.join("rounds.jsonl"))?;
        for s in &self.snapshots {
            writeln!(jsonl, "{}", s.jsonl())?;
        }

        let mut csv = std::fs::File::create(dir.join("rounds.csv"))?;
        writeln!(csv, "{}", RoundSnapshot::CSV_HEADER)?;
        for s in &self.snapshots {
            writeln!(csv, "{}", s.csv_row())?;
        }

        let mut events = std::fs::File::create(dir.join("events.jsonl"))?;
        for e in self.events.iter() {
            writeln!(events, "{}", e.jsonl())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_writes_all_four_files() {
        let dir = std::env::temp_dir().join(format!(
            "adam2-telemetry-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut t = Telemetry::new(16);
        let c = t.metrics.counter("exchanges");
        t.metrics.add(c, 5);
        t.events.push(Event {
            round: 1,
            slot: 0,
            instance: 0,
            kind: EventKind::FaultCrash,
            detail: 0,
        });
        let mut snap = RoundSnapshot::empty(1);
        snap.exchanges = 5;
        t.push_snapshot(snap);

        let manifest = RunManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            experiment: "unit".to_string(),
            config_hash: 1,
            seed: 2,
            threads: 1,
            detected_cores: 1,
            git_rev: "none".to_string(),
        };
        t.export(&dir, &manifest).expect("export succeeds");

        let rounds = std::fs::read_to_string(dir.join("rounds.jsonl")).unwrap();
        assert_eq!(rounds.lines().count(), 1);
        assert!(rounds.contains("\"exchanges\":5"));
        let csv = std::fs::read_to_string(dir.join("rounds.csv")).unwrap();
        assert!(csv.starts_with("round,"));
        assert_eq!(csv.lines().count(), 2);
        let events = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
        assert!(events.contains("\"kind\":\"fault_crash\""));
        let manifest_json = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert!(manifest_json.contains("\"experiment\": \"unit\""));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_mut_finds_latest_round() {
        let mut t = Telemetry::default();
        t.push_snapshot(RoundSnapshot::empty(0));
        t.push_snapshot(RoundSnapshot::empty(1));
        t.snapshot_mut(1).expect("round 1 present").err_avg = 0.5;
        assert_eq!(t.snapshots()[1].err_avg, 0.5);
        assert!(t.snapshot_mut(9).is_none());
    }
}
