//! Ring-buffered structured event trace.
//!
//! Every event carries the simulation round, the acting node's slot, an
//! instance tag (0 when the event is not tied to one protocol instance),
//! and a kind-specific `detail` word. The trace is a bounded ring: when
//! full, the oldest events are dropped and counted, so a long run can keep
//! tracing its tail without unbounded memory.

use std::collections::VecDeque;

/// What happened. Each variant maps to a stable wire name used in the
/// exported `events.jsonl`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A gossip exchange was initiated; `detail` = partner slot.
    ExchangeStarted,
    /// A lossy exchange was completed via repair retransmissions;
    /// `detail` = number of retransmitted messages.
    ExchangeRepaired,
    /// An exchange was abandoned after exhausting repair attempts.
    ExchangeAborted,
    /// A fault scenario overrode the round loss rate; `detail` = the new
    /// rate's `f64::to_bits`.
    FaultLoss,
    /// An overlay partition became active; `detail` = partition checksum.
    FaultPartition,
    /// A node crashed; `slot` identifies it.
    FaultCrash,
    /// A crashed node recovered and re-joined; `slot` identifies it.
    FaultRecovery,
    /// Self-healing restarted an instance epoch; `detail` = number of
    /// restarts voted at that node this round.
    SelfHealBump,
    /// A churn replacement joined; `slot` identifies it.
    ChurnJoin,
    /// A node left under churn; `slot` identifies it.
    ChurnLeave,
    /// A protocol instance was started; `instance` carries its id.
    InstanceStarted,
    /// A fault scenario drifted node attribute values this round;
    /// `detail` = number of nodes mutated.
    FaultDrift,
}

impl EventKind {
    /// Stable wire name for JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::ExchangeStarted => "exchange_started",
            EventKind::ExchangeRepaired => "exchange_repaired",
            EventKind::ExchangeAborted => "exchange_aborted",
            EventKind::FaultLoss => "fault_loss",
            EventKind::FaultPartition => "fault_partition",
            EventKind::FaultCrash => "fault_crash",
            EventKind::FaultRecovery => "fault_recovery",
            EventKind::SelfHealBump => "self_heal_bump",
            EventKind::ChurnJoin => "churn_join",
            EventKind::ChurnLeave => "churn_leave",
            EventKind::InstanceStarted => "instance_started",
            EventKind::FaultDrift => "fault_drift",
        }
    }
}

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulation round the event occurred in.
    pub round: u64,
    /// Slot of the acting node (0 for engine-wide events).
    pub slot: u32,
    /// Instance tag (`InstanceId::as_u64`), 0 when not instance-scoped.
    pub instance: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Kind-specific payload word.
    pub detail: u64,
}

impl Event {
    /// Renders the event as one JSON Lines record.
    pub fn jsonl(&self) -> String {
        format!(
            "{{\"round\":{},\"slot\":{},\"instance\":{},\"kind\":\"{}\",\"detail\":{}}}",
            self.round,
            self.slot,
            self.instance,
            self.kind.name(),
            self.detail
        )
    }
}

/// Bounded ring buffer of [`Event`]s.
#[derive(Debug)]
pub struct EventTrace {
    ring: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
    total: u64,
}

impl EventTrace {
    /// Creates a trace holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            dropped: 0,
            total: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, event: Event) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
        self.total += 1;
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Number of events evicted by the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events ever pushed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterates retained events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: u64, kind: EventKind) -> Event {
        Event {
            round,
            slot: 3,
            instance: 0,
            kind,
            detail: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut trace = EventTrace::new(2);
        trace.push(ev(1, EventKind::ChurnJoin));
        trace.push(ev(2, EventKind::ChurnLeave));
        trace.push(ev(3, EventKind::FaultCrash));
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped(), 1);
        assert_eq!(trace.total(), 3);
        let rounds: Vec<u64> = trace.iter().map(|e| e.round).collect();
        assert_eq!(rounds, vec![2, 3]);
    }

    #[test]
    fn jsonl_record_shape() {
        let e = Event {
            round: 7,
            slot: 12,
            instance: 99,
            kind: EventKind::ExchangeRepaired,
            detail: 2,
        };
        assert_eq!(
            e.jsonl(),
            "{\"round\":7,\"slot\":12,\"instance\":99,\"kind\":\"exchange_repaired\",\"detail\":2}"
        );
    }

    #[test]
    fn every_kind_has_a_distinct_name() {
        let kinds = [
            EventKind::ExchangeStarted,
            EventKind::ExchangeRepaired,
            EventKind::ExchangeAborted,
            EventKind::FaultLoss,
            EventKind::FaultPartition,
            EventKind::FaultCrash,
            EventKind::FaultRecovery,
            EventKind::SelfHealBump,
            EventKind::ChurnJoin,
            EventKind::ChurnLeave,
            EventKind::InstanceStarted,
            EventKind::FaultDrift,
        ];
        let names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
