//! Synthetic attribute traces for the Adam2 reproduction.
//!
//! The Adam2 paper evaluates its protocol on *real-world* node attribute
//! distributions extracted from the BOINC volunteer-computing project
//! (Anderson & Reed, HICSS 2009): measured CPU performance, installed
//! memory, installed disk space and downstream bandwidth. That data set is a
//! proprietary snapshot that cannot be redistributed, so this crate provides
//! synthetic generators shaped like the distributions in Fig. 4 of the
//! paper:
//!
//! * **CPU (MFLOPS)** — a smooth, heavy-tailed (log-normal) distribution
//!   spanning roughly `[10, 100 000]` MFLOPS. This is the paper's "easy"
//!   case: smooth CDFs are well approximated by linear interpolation.
//! * **RAM (MB)** — a *step* distribution concentrated on a small set of
//!   common memory sizes (512 MB, 1 GB, 2 GB, ...). This is the paper's
//!   "hard" case: step CDFs defeat naive interpolation-point placement.
//! * **Disk (GB)** and **Bandwidth (kbps)** — analogous mixtures used by the
//!   paper's "other attributes generated similar results" remark.
//!
//! All generators are deterministic given an RNG, produce *discrete*
//! (integer-valued) attributes as the paper assumes, and reject the
//! obviously-faulty readings that the paper filters out of the raw trace.
//!
//! # Examples
//!
//! ```
//! use adam2_traces::{Attribute, Population};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let pop = Population::generate(Attribute::Ram, 10_000, &mut rng);
//! assert_eq!(pop.len(), 10_000);
//! // RAM values are positive, discrete megabyte counts.
//! assert!(pop.values().iter().all(|v| *v > 0.0 && v.fract() == 0.0));
//! ```

mod distribution;
mod empirical;
mod multivalue;
mod population;

pub use distribution::{Distribution, LogNormal, Mixture, StepMixture, Undercut, UniformRange};
pub use empirical::{quantile, EmpiricalSummary};
pub use multivalue::{FileSizeGenerator, MultiValuePopulation};
pub use population::{Attribute, Population};
