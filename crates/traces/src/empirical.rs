//! Small empirical-statistics helpers shared by tests and the harness.

/// Returns the `q`-quantile (`0 <= q <= 1`) of an unsorted slice by the
/// nearest-rank method.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// let q = adam2_traces::quantile(&[3.0, 1.0, 2.0, 4.0], 0.5);
/// assert_eq!(q, 2.0);
/// ```
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "values must not be empty");
    assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).saturating_sub(1);
    sorted[rank.min(sorted.len() - 1)]
}

/// Summary statistics of an empirical sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmpiricalSummary {
    /// Number of observations.
    pub count: usize,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two observations).
    pub std_dev: f64,
    /// Median (nearest rank).
    pub median: f64,
}

impl EmpiricalSummary {
    /// Computes summary statistics over `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "values must not be empty");
        let count = values.len();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        Self {
            count,
            min,
            max,
            mean,
            std_dev: var.sqrt(),
            median: quantile(values, 0.5),
        }
    }
}

impl std::fmt::Display for EmpiricalSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={:.3} median={:.3} mean={:.3} max={:.3} sd={:.3}",
            self.count, self.min, self.median, self.mean, self.max, self.std_dev
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 0.2), 1.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
    }

    #[test]
    fn summary_basics() {
        let s = EmpiricalSummary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138).abs() < 0.01);
    }

    #[test]
    fn summary_single_value() {
        let s = EmpiricalSummary::of(&[3.5]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.5);
    }

    #[test]
    #[should_panic(expected = "values must not be empty")]
    fn summary_rejects_empty() {
        EmpiricalSummary::of(&[]);
    }
}
