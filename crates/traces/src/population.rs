//! BOINC-like attribute populations.

use rand::Rng;

use crate::distribution::{Distribution, LogNormal, Mixture, StepMixture, Undercut, UniformRange};

/// The node attributes evaluated in the paper (Fig. 4).
///
/// `Cpu` has a smooth heavy-tailed CDF (the easy case); `Ram` has a step CDF
/// (the hard case). `Disk` and `Bandwidth` are the "other attributes" the
/// paper reports as producing similar results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Attribute {
    /// Measured CPU performance in MFLOPS — smooth log-normal shape over
    /// roughly `[10, 100 000]`.
    Cpu,
    /// Installed memory in MB — step distribution over standard module
    /// sizes with a small noise fraction.
    Ram,
    /// Installed disk space in GB — step-heavy mixture over standard drive
    /// sizes.
    Disk,
    /// Measured downstream bandwidth in kbps — mixture of access-technology
    /// tiers with a smooth tail.
    Bandwidth,
}

impl Attribute {
    /// All supported attributes.
    pub const ALL: [Attribute; 4] = [
        Attribute::Cpu,
        Attribute::Ram,
        Attribute::Disk,
        Attribute::Bandwidth,
    ];

    /// Short lowercase name used by the experiment harness (`cpu`, `ram`,
    /// `disk`, `bandwidth`).
    pub fn name(&self) -> &'static str {
        match self {
            Attribute::Cpu => "cpu",
            Attribute::Ram => "ram",
            Attribute::Disk => "disk",
            Attribute::Bandwidth => "bandwidth",
        }
    }

    /// Parses an attribute from its [`name`](Attribute::name).
    pub fn from_name(name: &str) -> Option<Attribute> {
        Attribute::ALL.into_iter().find(|a| a.name() == name)
    }

    /// Whether the attribute's true CDF is a step function (hard to
    /// approximate with interpolation).
    pub fn is_stepped(&self) -> bool {
        matches!(self, Attribute::Ram | Attribute::Disk)
    }

    /// Builds the sampler for this attribute.
    ///
    /// Shapes are calibrated to Fig. 4 of the paper: CPU spans about
    /// `[10, 100 000]` MFLOPS smoothly; RAM concentrates on standard module
    /// sizes between 128 MB and 8 GB.
    pub fn sampler(&self) -> Box<dyn Distribution + Send + Sync> {
        match self {
            Attribute::Cpu => {
                // Log-normal with median ~1 GFLOPS; 2008-era hosts.
                Box::new(LogNormal::new(1000.0_f64.ln(), 0.9, 10.0, 100_000.0))
            }
            Attribute::Ram => Box::new(Undercut::new(
                StepMixture::new(
                    vec![
                        (128.0, 2.0),
                        (256.0, 6.0),
                        (512.0, 20.0),
                        (768.0, 4.0),
                        (1024.0, 28.0),
                        (1536.0, 5.0),
                        (2048.0, 22.0),
                        (3072.0, 4.0),
                        (4096.0, 7.0),
                        (8192.0, 2.0),
                    ],
                    0.02,
                    UniformRange::new(64.0, 8192.0),
                ),
                // Real hosts report slightly less than the installed size
                // (firmware/iGPU-reserved memory): each nominal step gets a
                // scatter of sub-steps just below it, as in the BOINC data.
                0.6,
                vec![0.004, 0.008, 0.016, 0.031, 0.062, 0.125],
            )),
            Attribute::Disk => Box::new(StepMixture::new(
                vec![
                    (40.0, 8.0),
                    (80.0, 18.0),
                    (120.0, 10.0),
                    (160.0, 20.0),
                    (250.0, 18.0),
                    (320.0, 12.0),
                    (500.0, 10.0),
                    (750.0, 3.0),
                    (1000.0, 1.0),
                ],
                0.10,
                UniformRange::new(10.0, 1500.0),
            )),
            Attribute::Bandwidth => Box::new(
                Mixture::new()
                    // Access-technology tiers: dial-up, DSL, cable.
                    .with(
                        6.0,
                        StepMixture::new(
                            vec![
                                (56.0, 2.0),
                                (128.0, 3.0),
                                (256.0, 6.0),
                                (512.0, 10.0),
                                (1024.0, 12.0),
                                (2048.0, 8.0),
                                (4096.0, 5.0),
                                (8192.0, 3.0),
                            ],
                            0.0,
                            UniformRange::new(56.0, 8192.0),
                        ),
                    )
                    // Smooth measured tail.
                    .with(4.0, LogNormal::new(1500.0_f64.ln(), 1.0, 56.0, 100_000.0)),
            ),
        }
    }
}

impl std::fmt::Display for Attribute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A generated population of discrete attribute values, one per node.
///
/// Values are rounded to integers (the paper treats the attribute space as
/// discrete) and kept in generation order so value `i` belongs to node `i`.
///
/// # Examples
///
/// ```
/// use adam2_traces::{Attribute, Population};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let pop = Population::generate(Attribute::Cpu, 1000, &mut rng);
/// assert!(pop.min() >= 10.0 && pop.max() <= 100_000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Population {
    attribute: Attribute,
    values: Vec<f64>,
    min: f64,
    max: f64,
}

impl Population {
    /// Generates a population of `n` discrete values of `attribute`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn generate(attribute: Attribute, n: usize, rng: &mut dyn Rng) -> Self {
        assert!(n > 0, "population must not be empty");
        let sampler = attribute.sampler();
        let values: Vec<f64> = (0..n)
            .map(|_| sampler.sample(rng).round().max(1.0))
            .collect();
        Self::from_values(attribute, values)
    }

    /// Wraps an explicit value vector (useful for tests and custom traces).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains non-finite entries.
    pub fn from_values(attribute: Attribute, values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "population must not be empty");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "population values must be finite"
        );
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            attribute,
            values,
            min,
            max,
        }
    }

    /// The attribute this population was drawn from.
    pub fn attribute(&self) -> Attribute {
        self.attribute
    }

    /// Per-node values, index `i` being node `i`'s value.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the population is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Smallest value in the population.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest value in the population.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Draws one additional value from the same attribute distribution
    /// (used when churn replaces a node with a fresh one).
    pub fn draw_fresh(&self, rng: &mut dyn Rng) -> f64 {
        self.attribute.sampler().sample(rng).round().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn attribute_names_roundtrip() {
        for a in Attribute::ALL {
            assert_eq!(Attribute::from_name(a.name()), Some(a));
        }
        assert_eq!(Attribute::from_name("nope"), None);
    }

    #[test]
    fn cpu_population_is_smooth_and_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let pop = Population::generate(Attribute::Cpu, 50_000, &mut rng);
        assert!(pop.min() >= 10.0);
        assert!(pop.max() <= 100_000.0);
        // Smooth distribution: many distinct values.
        let mut vs = pop.values().to_vec();
        vs.sort_by(f64::total_cmp);
        vs.dedup();
        assert!(
            vs.len() > 1000,
            "expected many distinct CPU values, got {}",
            vs.len()
        );
    }

    #[test]
    fn ram_population_is_stepped() {
        let mut rng = StdRng::seed_from_u64(2);
        let pop = Population::generate(Attribute::Ram, 50_000, &mut rng);
        // The dominant nominal steps carry visible atoms even after the
        // reserved-memory undercut scatters part of their mass just below.
        let standard = [512.0, 1024.0, 2048.0];
        let on_big_steps = pop.values().iter().filter(|v| standard.contains(v)).count();
        let frac = on_big_steps as f64 / pop.len() as f64;
        assert!(frac > 0.2, "nominal step mass only {frac}");
        // And each nominal step is accompanied by sub-steps shortly below
        // it (machines reporting slightly less than installed).
        let near_1g = pop
            .values()
            .iter()
            .filter(|v| (896.0..1024.0).contains(*v))
            .count();
        assert!(
            near_1g as f64 / pop.len() as f64 > 0.02,
            "no reserved-memory scatter below the 1 GB step"
        );
    }

    #[test]
    fn populations_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let pa = Population::generate(Attribute::Bandwidth, 500, &mut a);
        let pb = Population::generate(Attribute::Bandwidth, 500, &mut b);
        assert_eq!(pa.values(), pb.values());
    }

    #[test]
    fn values_are_discrete() {
        let mut rng = StdRng::seed_from_u64(4);
        for attr in Attribute::ALL {
            let pop = Population::generate(attr, 2_000, &mut rng);
            assert!(
                pop.values().iter().all(|v| v.fract() == 0.0),
                "{attr} not discrete"
            );
        }
    }

    #[test]
    fn draw_fresh_stays_in_domain() {
        let mut rng = StdRng::seed_from_u64(5);
        let pop = Population::generate(Attribute::Ram, 100, &mut rng);
        for _ in 0..100 {
            let v = pop.draw_fresh(&mut rng);
            assert!(v >= 1.0 && v.fract() == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "population must not be empty")]
    fn empty_population_rejected() {
        Population::from_values(Attribute::Cpu, vec![]);
    }
}
