//! Primitive random distributions used to synthesise attribute traces.
//!
//! Only [`rand`] is used; shapes that would normally come from `rand_distr`
//! (log-normal) are implemented directly via the Box–Muller transform.

use rand::{Rng, RngExt as _};

/// A source of attribute values.
///
/// Implementors generate one attribute value per call. The trait is
/// object-safe so heterogeneous populations can mix samplers at runtime.
///
/// # Examples
///
/// ```
/// use adam2_traces::{Distribution, UniformRange};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let d = UniformRange::new(10.0, 20.0);
/// let v = d.sample(&mut rng);
/// assert!((10.0..=20.0).contains(&v));
/// ```
pub trait Distribution {
    /// Draws one value.
    fn sample(&self, rng: &mut dyn Rng) -> f64;

    /// Draws `n` values into a fresh vector.
    fn sample_n(&self, n: usize, rng: &mut dyn Rng) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Uniform distribution over a closed range `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformRange {
    lo: f64,
    hi: f64,
}

impl UniformRange {
    /// Creates a uniform distribution over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo <= hi, "lo must not exceed hi");
        Self { lo, hi }
    }

    /// Lower bound of the range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the range.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Distribution for UniformRange {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        if self.lo == self.hi {
            return self.lo;
        }
        rng.random_range(self.lo..=self.hi)
    }
}

/// Log-normal distribution, optionally clamped to `[min, max]`.
///
/// `ln X ~ Normal(mu, sigma)`. Sampling uses the Box–Muller transform so no
/// extra dependency is needed. Clamping (rather than rejection) mirrors the
/// paper's filtering of out-of-range faulty readings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
    min: f64,
    max: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution with log-mean `mu` and log-std
    /// `sigma`, clamped to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`, any parameter is not finite, or `min > max`.
    pub fn new(mu: f64, sigma: f64, min: f64, max: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!(
            mu.is_finite() && sigma.is_finite() && min.is_finite() && max.is_finite(),
            "parameters must be finite"
        );
        assert!(min <= max, "min must not exceed max");
        Self {
            mu,
            sigma,
            min,
            max,
        }
    }

    /// Draws one standard-normal variate via Box–Muller.
    fn standard_normal(rng: &mut dyn Rng) -> f64 {
        // Avoid ln(0) by drawing u1 from (0, 1].
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        let z = Self::standard_normal(rng);
        (self.mu + self.sigma * z).exp().clamp(self.min, self.max)
    }
}

/// A discrete step distribution with an optional "noise" component.
///
/// With probability `1 - noise_fraction` a value is drawn from the weighted
/// set of `steps`; otherwise a uniform value from `noise` is used. This
/// produces the step-function CDFs of real-world attributes such as
/// installed RAM, where most machines report one of a handful of standard
/// sizes but a few report odd values.
#[derive(Debug, Clone, PartialEq)]
pub struct StepMixture {
    steps: Vec<(f64, f64)>,
    cumulative: Vec<f64>,
    noise_fraction: f64,
    noise: UniformRange,
}

impl StepMixture {
    /// Creates a step mixture from `(value, weight)` pairs, a noise fraction
    /// in `[0, 1)` and a uniform noise range.
    ///
    /// Weights need not be normalised.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty, any weight is negative, all weights are
    /// zero, or `noise_fraction` is outside `[0, 1)`.
    pub fn new(steps: Vec<(f64, f64)>, noise_fraction: f64, noise: UniformRange) -> Self {
        assert!(!steps.is_empty(), "steps must not be empty");
        assert!(
            (0.0..1.0).contains(&noise_fraction),
            "noise_fraction must be in [0, 1)"
        );
        let total: f64 = steps.iter().map(|(_, w)| *w).sum();
        assert!(
            steps.iter().all(|(_, w)| *w >= 0.0) && total > 0.0,
            "weights must be non-negative and not all zero"
        );
        let mut cumulative = Vec::with_capacity(steps.len());
        let mut acc = 0.0;
        for (_, w) in &steps {
            acc += w / total;
            cumulative.push(acc);
        }
        // Guard against floating point drift in the final bucket.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Self {
            steps,
            cumulative,
            noise_fraction,
            noise,
        }
    }

    /// The step values, in insertion order.
    pub fn step_values(&self) -> impl Iterator<Item = f64> + '_ {
        self.steps.iter().map(|(v, _)| *v)
    }
}

impl Distribution for StepMixture {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        if self.noise_fraction > 0.0 && rng.random::<f64>() < self.noise_fraction {
            return self.noise.sample(rng);
        }
        let u: f64 = rng.random();
        let idx = self
            .cumulative
            .partition_point(|c| *c < u)
            .min(self.steps.len() - 1);
        self.steps[idx].0
    }
}

/// Wraps a base distribution so that a fraction of samples is *undercut*:
/// reduced by a small relative amount drawn from a fixed set.
///
/// This models how real machines report attribute values slightly below
/// the nominal hardware size — BOINC hosts with 1 GB installed report
/// 1 024, 1 015, 1 007, 960 ... MB depending on memory reserved by
/// firmware and integrated graphics. The effect matters for CDF
/// estimation: each nominal step is accompanied by a scatter of sub-steps
/// just below it, which caps the height of any single atom.
#[derive(Debug, Clone, PartialEq)]
pub struct Undercut<D> {
    base: D,
    probability: f64,
    relative_cuts: Vec<f64>,
}

impl<D: Distribution> Undercut<D> {
    /// Wraps `base`: with `probability`, a sample is reduced by one of the
    /// `relative_cuts` (fractions of the value, e.g. `0.015` = 1.5 %).
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]`, `relative_cuts` is
    /// empty, or any cut is outside `[0, 1)`.
    pub fn new(base: D, probability: f64, relative_cuts: Vec<f64>) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0, 1]"
        );
        assert!(!relative_cuts.is_empty(), "relative_cuts must not be empty");
        assert!(
            relative_cuts.iter().all(|c| (0.0..1.0).contains(c)),
            "cuts must be fractions in [0, 1)"
        );
        Self {
            base,
            probability,
            relative_cuts,
        }
    }
}

impl<D: Distribution> Distribution for Undercut<D> {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        let v = self.base.sample(rng);
        if rng.random::<f64>() < self.probability {
            let cut = self.relative_cuts[rng.random_range(0..self.relative_cuts.len())];
            v * (1.0 - cut)
        } else {
            v
        }
    }
}

/// A weighted mixture of arbitrary component distributions.
#[derive(Default)]
pub struct Mixture {
    components: Vec<(f64, Box<dyn Distribution + Send + Sync>)>,
    total_weight: f64,
}

impl std::fmt::Debug for Mixture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mixture")
            .field("components", &self.components.len())
            .field("total_weight", &self.total_weight)
            .finish()
    }
}

impl Mixture {
    /// Creates an empty mixture. At least one component must be pushed
    /// before sampling.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a component with the given weight, returning `self` for
    /// chaining.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not strictly positive and finite.
    pub fn with(
        mut self,
        weight: f64,
        component: impl Distribution + Send + Sync + 'static,
    ) -> Self {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "weight must be positive"
        );
        self.total_weight += weight;
        self.components.push((weight, Box::new(component)));
        self
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the mixture has no components yet.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl Distribution for Mixture {
    /// # Panics
    ///
    /// Panics if the mixture is empty.
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        assert!(!self.components.is_empty(), "mixture has no components");
        let mut u = rng.random::<f64>() * self.total_weight;
        for (w, c) in &self.components {
            if u < *w {
                return c.sample(rng);
            }
            u -= w;
        }
        self.components.last().expect("non-empty").1.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xAD42)
    }

    #[test]
    fn uniform_respects_bounds() {
        let d = UniformRange::new(5.0, 7.0);
        let mut r = rng();
        for _ in 0..1000 {
            let v = d.sample(&mut r);
            assert!((5.0..=7.0).contains(&v));
        }
    }

    #[test]
    fn uniform_degenerate_range_is_constant() {
        let d = UniformRange::new(3.0, 3.0);
        let mut r = rng();
        assert_eq!(d.sample(&mut r), 3.0);
    }

    #[test]
    #[should_panic(expected = "lo must not exceed hi")]
    fn uniform_rejects_inverted_bounds() {
        UniformRange::new(2.0, 1.0);
    }

    #[test]
    fn lognormal_is_clamped() {
        let d = LogNormal::new(0.0, 3.0, 0.5, 2.0);
        let mut r = rng();
        for _ in 0..1000 {
            let v = d.sample(&mut r);
            assert!((0.5..=2.0).contains(&v));
        }
    }

    #[test]
    fn lognormal_median_near_exp_mu() {
        let d = LogNormal::new(3.0, 0.5, 0.0, f64::MAX);
        let mut r = rng();
        let mut vs = d.sample_n(20_000, &mut r);
        vs.sort_by(f64::total_cmp);
        let median = vs[vs.len() / 2];
        let expected = 3.0_f64.exp();
        assert!(
            (median / expected - 1.0).abs() < 0.05,
            "median {median} too far from {expected}"
        );
    }

    #[test]
    fn step_mixture_hits_only_steps_without_noise() {
        let d = StepMixture::new(
            vec![(512.0, 1.0), (1024.0, 2.0), (2048.0, 1.0)],
            0.0,
            UniformRange::new(0.0, 1.0),
        );
        let mut r = rng();
        for _ in 0..1000 {
            let v = d.sample(&mut r);
            assert!(v == 512.0 || v == 1024.0 || v == 2048.0);
        }
    }

    #[test]
    fn step_mixture_weights_are_respected() {
        let d = StepMixture::new(
            vec![(1.0, 3.0), (2.0, 1.0)],
            0.0,
            UniformRange::new(0.0, 1.0),
        );
        let mut r = rng();
        let n = 40_000;
        let ones = d
            .sample_n(n, &mut r)
            .into_iter()
            .filter(|v| *v == 1.0)
            .count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "fraction {frac} not near 0.75");
    }

    #[test]
    fn step_mixture_noise_fraction() {
        let d = StepMixture::new(vec![(100.0, 1.0)], 0.25, UniformRange::new(0.0, 1.0));
        let mut r = rng();
        let n = 40_000;
        let noisy = d
            .sample_n(n, &mut r)
            .into_iter()
            .filter(|v| *v != 100.0)
            .count();
        let frac = noisy as f64 / n as f64;
        assert!(
            (frac - 0.25).abs() < 0.02,
            "noise fraction {frac} not near 0.25"
        );
    }

    #[test]
    #[should_panic(expected = "steps must not be empty")]
    fn step_mixture_rejects_empty_steps() {
        StepMixture::new(vec![], 0.0, UniformRange::new(0.0, 1.0));
    }

    #[test]
    fn undercut_reduces_a_fraction_of_samples() {
        let d = Undercut::new(
            StepMixture::new(vec![(1000.0, 1.0)], 0.0, UniformRange::new(0.0, 1.0)),
            0.5,
            vec![0.1],
        );
        let mut r = rng();
        let n = 10_000;
        let cut = d
            .sample_n(n, &mut r)
            .into_iter()
            .filter(|v| *v == 900.0)
            .count();
        let frac = cut as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "undercut fraction {frac}");
    }

    #[test]
    fn undercut_with_zero_probability_is_identity() {
        let d = Undercut::new(UniformRange::new(5.0, 5.0), 0.0, vec![0.5]);
        let mut r = rng();
        assert_eq!(d.sample(&mut r), 5.0);
    }

    #[test]
    #[should_panic(expected = "cuts must be fractions")]
    fn undercut_rejects_bad_cuts() {
        Undercut::new(UniformRange::new(0.0, 1.0), 0.5, vec![1.5]);
    }

    #[test]
    fn mixture_draws_from_all_components() {
        let d = Mixture::new()
            .with(1.0, UniformRange::new(0.0, 1.0))
            .with(1.0, UniformRange::new(10.0, 11.0));
        let mut r = rng();
        let vs = d.sample_n(1000, &mut r);
        assert!(vs.iter().any(|v| *v < 2.0));
        assert!(vs.iter().any(|v| *v > 9.0));
        assert!(vs.iter().all(|v| *v <= 11.0));
    }

    #[test]
    #[should_panic(expected = "mixture has no components")]
    fn empty_mixture_panics() {
        let d = Mixture::new();
        let mut r = rng();
        d.sample(&mut r);
    }
}
