//! Multi-value-per-node traces.
//!
//! Section IV of the paper extends Adam2 to attributes with *multiple*
//! values per node — the motivating example is the distribution of file
//! sizes across all files at all nodes. This module synthesises such
//! workloads: each node holds a variable-size set of file sizes drawn from a
//! heavy-tailed distribution.

use rand::{Rng, RngExt as _};

use crate::distribution::{Distribution, LogNormal};

/// Generates per-node sets of file sizes (in KB).
///
/// File counts per node are uniform in `[min_files, max_files]`; sizes are
/// log-normal (most files are small, a few are very large), rounded to whole
/// kilobytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileSizeGenerator {
    min_files: usize,
    max_files: usize,
    sizes: LogNormal,
}

impl FileSizeGenerator {
    /// Creates a generator with the given per-node file-count range.
    ///
    /// # Panics
    ///
    /// Panics if `min_files > max_files` or `max_files == 0`.
    pub fn new(min_files: usize, max_files: usize) -> Self {
        assert!(
            min_files <= max_files,
            "min_files must not exceed max_files"
        );
        assert!(max_files > 0, "max_files must be positive");
        Self {
            min_files,
            max_files,
            // Median ~64 KB, heavy tail up to 4 GB.
            sizes: LogNormal::new(64.0_f64.ln(), 1.6, 1.0, 4.0 * 1024.0 * 1024.0),
        }
    }

    /// Generates one node's file-size set.
    pub fn node_files(&self, rng: &mut dyn Rng) -> Vec<f64> {
        let count = if self.min_files == self.max_files {
            self.min_files
        } else {
            rng.random_range(self.min_files..=self.max_files)
        };
        (0..count)
            .map(|_| self.sizes.sample(rng).round().max(1.0))
            .collect()
    }
}

/// A population where each node holds a *set* of attribute values.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiValuePopulation {
    per_node: Vec<Vec<f64>>,
    total_values: usize,
}

impl MultiValuePopulation {
    /// Generates `n` nodes' value sets using `generator`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn generate(generator: &FileSizeGenerator, n: usize, rng: &mut dyn Rng) -> Self {
        assert!(n > 0, "population must not be empty");
        let per_node: Vec<Vec<f64>> = (0..n).map(|_| generator.node_files(rng)).collect();
        let total_values = per_node.iter().map(Vec::len).sum();
        Self {
            per_node,
            total_values,
        }
    }

    /// Per-node value sets.
    pub fn per_node(&self) -> &[Vec<f64>] {
        &self.per_node
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.per_node.len()
    }

    /// Whether there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.per_node.is_empty()
    }

    /// Total number of values across all nodes (`|A|` in the paper).
    pub fn total_values(&self) -> usize {
        self.total_values
    }

    /// Flattens all values into one vector (the global multiset `A`).
    pub fn all_values(&self) -> Vec<f64> {
        self.per_node.iter().flatten().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn file_counts_respect_range() {
        let g = FileSizeGenerator::new(2, 5);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let files = g.node_files(&mut rng);
            assert!((2..=5).contains(&files.len()));
            assert!(files.iter().all(|s| *s >= 1.0 && s.fract() == 0.0));
        }
    }

    #[test]
    fn fixed_count_generator() {
        let g = FileSizeGenerator::new(3, 3);
        let mut rng = StdRng::seed_from_u64(12);
        assert_eq!(g.node_files(&mut rng).len(), 3);
    }

    #[test]
    fn population_totals_are_consistent() {
        let g = FileSizeGenerator::new(0, 10);
        let mut rng = StdRng::seed_from_u64(13);
        let pop = MultiValuePopulation::generate(&g, 500, &mut rng);
        assert_eq!(pop.len(), 500);
        assert_eq!(pop.total_values(), pop.all_values().len());
        assert_eq!(
            pop.total_values(),
            pop.per_node().iter().map(Vec::len).sum::<usize>()
        );
    }

    #[test]
    #[should_panic(expected = "min_files must not exceed max_files")]
    fn generator_rejects_inverted_range() {
        FileSizeGenerator::new(5, 2);
    }
}
