//! Gossip-averaged equi-width histograms — an ablation baseline.
//!
//! This baseline uses exactly Adam2's mass-conserving push–pull averaging
//! but over a *fixed* equi-width binning of the attribute domain chosen at
//! phase start: node `p` contributes a one-hot mass vector for the bin
//! containing `A(p)`, and the averages converge to the exact per-bin
//! fractions. There is no threshold refinement.
//!
//! Comparing it against full Adam2 separates the paper's two ingredients:
//! exact averaging (shared) and adaptive interpolation-point placement
//! (Adam2 only). On smooth CDFs equi-width bins waste resolution in empty
//! regions; on stepped CDFs a bin that straddles a step cannot say where
//! inside the bin the step sits — a quantization floor of up to one bin's
//! mass that no amount of gossip precision removes. This is an extension
//! beyond the paper, flagged in DESIGN.md.

use std::sync::Arc;

use rand::rngs::StdRng;

use adam2_core::{CdfError, InterpCdf};
use adam2_sim::{Ctx, NodeId, Protocol};

/// Configuration of the equi-width baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquiWidthConfig {
    /// Number of fixed-width bins (comparable to Adam2's λ).
    pub bins: usize,
    /// Gossip rounds per phase.
    pub rounds_per_phase: u64,
    /// Attribute domain the bins partition (like the paper's PeerSim
    /// setup, the simulator grants the baseline the true domain).
    pub domain: (f64, f64),
}

impl EquiWidthConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `bins < 1`, `rounds_per_phase` is zero, or the domain is
    /// not a finite, non-empty range.
    pub fn new(bins: usize, rounds_per_phase: u64, domain: (f64, f64)) -> Self {
        assert!(bins >= 1, "bins must be at least 1");
        assert!(rounds_per_phase > 0, "rounds_per_phase must be positive");
        assert!(
            domain.0.is_finite() && domain.1.is_finite() && domain.0 < domain.1,
            "domain must be a finite non-empty range"
        );
        Self {
            bins,
            rounds_per_phase,
            domain,
        }
    }

    /// The bin of `value` under right-closed bins `(e_i, e_{i+1}]`,
    /// matching the CDF convention `F(x) = P[A <= x]` so bin-edge values
    /// are counted by the estimate at their edge.
    fn bin_of(&self, value: f64) -> usize {
        let (lo, hi) = self.domain;
        let width = (hi - lo) / self.bins as f64;
        let bin = ((value - lo) / width).ceil() as isize - 1;
        bin.clamp(0, self.bins as isize - 1) as usize
    }

    fn edge(&self, i: usize) -> f64 {
        let (lo, hi) = self.domain;
        lo + (hi - lo) * i as f64 / self.bins as f64
    }
}

/// Phase metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct WidthPhaseMeta {
    /// Unique phase identifier.
    pub id: u64,
    /// Round the phase started.
    pub start_round: u64,
    /// First round in which the phase is finalised.
    pub end_round: u64,
    /// The binning in force for this phase.
    pub config: EquiWidthConfig,
}

#[derive(Debug, Clone, PartialEq)]
struct WidthPhaseLocal {
    meta: Arc<WidthPhaseMeta>,
    /// Running per-bin mass averages (converge to the bin fractions).
    masses: Vec<f64>,
}

impl WidthPhaseLocal {
    fn join(meta: Arc<WidthPhaseMeta>, value: f64) -> Self {
        let mut masses = vec![0.0; meta.config.bins];
        masses[meta.config.bin_of(value)] = 1.0;
        Self { meta, masses }
    }

    fn merge_symmetric(a: &mut WidthPhaseLocal, b: &mut WidthPhaseLocal) {
        debug_assert_eq!(a.meta.id, b.meta.id, "phase id mismatch");
        for (ma, mb) in a.masses.iter_mut().zip(&mut b.masses) {
            let mean = (*ma + *mb) / 2.0;
            *ma = mean;
            *mb = mean;
        }
    }

    fn is_due(&self, round: u64) -> bool {
        round >= self.meta.end_round
    }

    /// CDF estimate: cumulative bin masses at the bin edges.
    fn estimate(&self) -> Result<InterpCdf, CdfError> {
        let mut knots = Vec::with_capacity(self.masses.len() + 1);
        knots.push((self.meta.config.edge(0), 0.0));
        let mut cumulative = 0.0;
        for (i, mass) in self.masses.iter().enumerate() {
            cumulative += mass;
            knots.push((self.meta.config.edge(i + 1), cumulative.clamp(0.0, 1.0)));
        }
        if let Some(last) = knots.last_mut() {
            last.1 = 1.0;
        }
        InterpCdf::new(knots)
    }
}

/// Per-node state of the equi-width protocol.
#[derive(Debug, Clone)]
pub struct EquiWidthNode {
    value: f64,
    phase: Option<WidthPhaseLocal>,
    estimate: Option<InterpCdf>,
    joined_round: u64,
}

impl EquiWidthNode {
    /// The node's attribute value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The node's latest completed estimate.
    pub fn estimate(&self) -> Option<&InterpCdf> {
        self.estimate.as_ref()
    }

    /// The node's current per-bin mass averages (empty when idle).
    pub fn masses(&self) -> &[f64] {
        self.phase
            .as_ref()
            .map(|p| p.masses.as_slice())
            .unwrap_or(&[])
    }
}

/// The equi-width histogram protocol driver.
pub struct EquiWidthProtocol {
    config: EquiWidthConfig,
    source: Box<dyn FnMut(&mut StdRng) -> f64 + Send>,
    next_phase_id: u64,
}

impl std::fmt::Debug for EquiWidthProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EquiWidthProtocol")
            .field("config", &self.config)
            .finish()
    }
}

impl EquiWidthProtocol {
    /// Creates a protocol drawing node values from `source`.
    pub fn new(
        config: EquiWidthConfig,
        source: impl FnMut(&mut StdRng) -> f64 + Send + 'static,
    ) -> Self {
        Self {
            config,
            source: Box::new(source),
            next_phase_id: 0,
        }
    }

    /// Convenience constructor mirroring the other protocols.
    pub fn with_population(
        config: EquiWidthConfig,
        initial: Vec<f64>,
        mut fresh: impl FnMut(&mut StdRng) -> f64 + Send + 'static,
    ) -> Self {
        let mut queue = std::collections::VecDeque::from(initial);
        Self::new(config, move |rng| {
            queue.pop_front().unwrap_or_else(|| fresh(rng))
        })
    }

    /// The configuration.
    pub fn config(&self) -> EquiWidthConfig {
        self.config
    }

    /// Starts a new phase at `initiator`.
    pub fn start_phase(
        &mut self,
        initiator: NodeId,
        ctx: &mut Ctx<'_, EquiWidthNode>,
    ) -> Option<Arc<WidthPhaseMeta>> {
        let node = ctx.nodes.get_mut(initiator)?;
        self.next_phase_id += 1;
        let meta = Arc::new(WidthPhaseMeta {
            id: self.next_phase_id,
            start_round: ctx.round,
            end_round: ctx.round + self.config.rounds_per_phase,
            config: self.config,
        });
        node.phase = Some(WidthPhaseLocal::join(meta.clone(), node.value));
        Some(meta)
    }
}

impl Protocol for EquiWidthProtocol {
    type Node = EquiWidthNode;

    fn make_node(&mut self, rng: &mut StdRng) -> EquiWidthNode {
        EquiWidthNode {
            value: (self.source)(rng),
            phase: None,
            estimate: None,
            joined_round: 0,
        }
    }

    fn on_round(&mut self, id: NodeId, ctx: &mut Ctx<'_, EquiWidthNode>) {
        let round = ctx.round;
        if let Some(node) = ctx.nodes.get_mut(id) {
            let due = node
                .phase
                .as_ref()
                .map(|p| p.is_due(round))
                .unwrap_or(false);
            if due {
                let phase = node.phase.take().expect("phase checked above");
                if let Ok(est) = phase.estimate() {
                    node.estimate = Some(est);
                }
            }
        }
        let Some(partner) = ctx.random_neighbour(id) else {
            return;
        };
        let Some((a, b)) = ctx.nodes.pair_mut(id, partner) else {
            return;
        };

        let a_active = a
            .phase
            .as_ref()
            .filter(|p| !p.is_due(round))
            .map(|p| p.meta.clone());
        if let Some(meta) = &a_active {
            if b.phase.is_none() && b.joined_round <= meta.start_round {
                b.phase = Some(WidthPhaseLocal::join(meta.clone(), b.value));
            }
        }
        let b_active = b
            .phase
            .as_ref()
            .filter(|p| !p.is_due(round))
            .map(|p| p.meta.clone());
        if let Some(meta) = &b_active {
            if a.phase.is_none() && a.joined_round <= meta.start_round {
                a.phase = Some(WidthPhaseLocal::join(meta.clone(), a.value));
            }
        }

        let payload = |n: &EquiWidthNode| {
            2 + n
                .phase
                .as_ref()
                .filter(|p| !p.is_due(round))
                .map(|p| 29 + p.masses.len() * 8)
                .unwrap_or(0)
        };
        let req = payload(a);
        let resp = payload(b);
        if let (Some(pa), Some(pb)) = (a.phase.as_mut(), b.phase.as_mut()) {
            if pa.meta.id == pb.meta.id && !pa.is_due(round) {
                WidthPhaseLocal::merge_symmetric(pa, pb);
            }
        }
        ctx.net.charge_exchange(id, partner, req, resp);
    }

    fn on_join(&mut self, id: NodeId, ctx: &mut Ctx<'_, EquiWidthNode>) {
        let round = ctx.round;
        if let Some(node) = ctx.nodes.get_mut(id) {
            node.joined_round = round;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adam2_core::{discrete_max_distance, point_errors, StepCdf};
    use adam2_sim::{Engine, EngineConfig};

    fn run_phase(engine: &mut Engine<EquiWidthProtocol>) {
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.start_phase(initiator, ctx)
        });
        let rounds = engine.protocol().config().rounds_per_phase + 1;
        engine.run_rounds(rounds);
    }

    #[test]
    fn bin_assignment_and_edges() {
        let c = EquiWidthConfig::new(10, 30, (0.0, 100.0));
        assert_eq!(c.bin_of(0.0), 0);
        assert_eq!(c.bin_of(9.9), 0);
        assert_eq!(
            c.bin_of(10.0),
            0,
            "edge values belong to the lower bin (F is <=)"
        );
        assert_eq!(c.bin_of(10.1), 1);
        assert_eq!(c.bin_of(99.9), 9);
        assert_eq!(c.bin_of(100.0), 9);
        assert_eq!(c.bin_of(-5.0), 0, "out-of-domain clamps");
        assert_eq!(c.edge(0), 0.0);
        assert_eq!(c.edge(10), 100.0);
    }

    #[test]
    fn bin_fractions_converge_exactly() {
        // 100 nodes, values 1..=100, 10 bins over (0, 100]: every bin has
        // exactly 10% of the mass.
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let truth = StepCdf::from_values(values.clone());
        let config = EquiWidthConfig::new(10, 40, (0.0, 100.0));
        let proto = EquiWidthProtocol::with_population(config, values, |_| 1.0);
        let mut engine = Engine::new(EngineConfig::new(100, 71), proto);
        run_phase(&mut engine);
        for (_, node) in engine.nodes().iter() {
            let est = node.estimate().expect("estimate");
            // Edges are at multiples of 10; F is exact there.
            let edges: Vec<f64> = (1..=10).map(|i| i as f64 * 10.0).collect();
            let fractions: Vec<f64> = edges.iter().map(|e| est.eval(*e)).collect();
            let (max_err, _) = point_errors(&truth, &edges, &fractions);
            assert!(max_err < 1e-9, "bin fractions not exact: {max_err}");
        }
    }

    #[test]
    fn quantization_floor_on_steps() {
        // All mass at one value inside a bin: the estimate cannot know
        // where inside the bin the step sits.
        let values = vec![55.0; 200];
        let truth = StepCdf::from_values(values.clone());
        let config = EquiWidthConfig::new(10, 40, (0.0, 100.0));
        let proto = EquiWidthProtocol::with_population(config, values, |_| 55.0);
        let mut engine = Engine::new(EngineConfig::new(200, 72), proto);
        run_phase(&mut engine);
        let (_, node) = engine.nodes().iter().next().unwrap();
        let err = discrete_max_distance(&truth, node.estimate().unwrap());
        assert!(err > 0.3, "quantization floor missing: {err}");
    }

    #[test]
    fn mass_is_conserved_mid_phase() {
        let values: Vec<f64> = (1..=64).map(f64::from).collect();
        let config = EquiWidthConfig::new(8, 50, (0.0, 64.0));
        let proto = EquiWidthProtocol::with_population(config, values, |_| 1.0);
        let mut engine = Engine::new(EngineConfig::new(64, 73), proto);
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.start_phase(initiator, ctx)
        });
        for _ in 0..20 {
            engine.run_round();
            let mut total = 0.0;
            let mut participants = 0;
            for (_, node) in engine.nodes().iter() {
                if !node.masses().is_empty() {
                    total += node.masses().iter().sum::<f64>();
                    participants += 1;
                }
            }
            assert!(
                (total - participants as f64).abs() < 1e-9,
                "bin mass leaked: {total} vs {participants}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "domain must be a finite non-empty range")]
    fn rejects_empty_domain() {
        EquiWidthConfig::new(10, 30, (5.0, 5.0));
    }
}
