//! Gossip-based equi-depth histogram estimation (Haridasan & van Renesse).
//!
//! Each node maintains a *synopsis*: a sorted, bounded set of boundary
//! samples approximating the equi-depth histogram of the attribute. A
//! phase starts with every participant's synopsis holding just its own
//! value; on each gossip exchange the two synopses are united and
//! recompressed to the configured number of bins, and both peers adopt the
//! merge. The global extrema are tracked exactly (pinned as the outermost
//! boundaries).
//!
//! The union step cannot tell whether two equal-ranked samples descend
//! from the *same* original value that travelled two gossip paths or from
//! two distinct values — the *sample duplication* problem. Early-mixing
//! values are therefore over-represented and the converged histogram
//! carries a persistent bias of a few percent, which restarting phases
//! does not remove (the same mixing process repeats). This is exactly the
//! behaviour the paper reports in Figs. 6(b) and 8, and the reason Adam2's
//! exact averaging wins by an order of magnitude.

use std::sync::Arc;

use rand::rngs::StdRng;

use adam2_core::{CdfError, InterpCdf};
use adam2_sim::{Ctx, NodeId, Protocol};

/// Configuration of the EquiDepth baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquiDepthConfig {
    /// Number of histogram boundaries kept in a synopsis (comparable to
    /// Adam2's λ).
    pub bins: usize,
    /// Gossip rounds per phase (comparable to Adam2's instance TTL).
    pub rounds_per_phase: u64,
}

impl Default for EquiDepthConfig {
    fn default() -> Self {
        Self {
            bins: 50,
            rounds_per_phase: 30,
        }
    }
}

impl EquiDepthConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `bins < 2` or `rounds_per_phase` is zero.
    pub fn new(bins: usize, rounds_per_phase: u64) -> Self {
        assert!(bins >= 2, "bins must be at least 2");
        assert!(rounds_per_phase > 0, "rounds_per_phase must be positive");
        Self {
            bins,
            rounds_per_phase,
        }
    }
}

/// Phase metadata, fixed by the initiator and flooded with the phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseMeta {
    /// Unique phase identifier.
    pub id: u64,
    /// Round the phase started.
    pub start_round: u64,
    /// First round in which the phase is finalised.
    pub end_round: u64,
    /// Synopsis size.
    pub bins: usize,
}

/// A node's state for the running phase.
#[derive(Debug, Clone, PartialEq)]
struct PhaseLocal {
    meta: Arc<PhaseMeta>,
    /// Sorted boundary samples, at most `meta.bins` of them.
    synopsis: Vec<f64>,
    /// Exactly-merged global extrema.
    min: f64,
    max: f64,
}

impl PhaseLocal {
    fn join(meta: Arc<PhaseMeta>, value: f64) -> Self {
        Self {
            meta,
            synopsis: vec![value],
            min: value,
            max: value,
        }
    }

    /// Union + equi-depth recompression, adopted by both peers.
    fn merge_symmetric(a: &mut PhaseLocal, b: &mut PhaseLocal) {
        debug_assert_eq!(a.meta.id, b.meta.id, "phase id mismatch");
        let mut union = Vec::with_capacity(a.synopsis.len() + b.synopsis.len());
        union.extend_from_slice(&a.synopsis);
        union.extend_from_slice(&b.synopsis);
        union.sort_by(f64::total_cmp);
        let min = a.min.min(b.min);
        let max = a.max.max(b.max);
        let compressed = compress(&union, a.meta.bins, min, max);
        a.synopsis = compressed.clone();
        b.synopsis = compressed;
        a.min = min;
        b.min = min;
        a.max = max;
        b.max = max;
    }

    fn is_due(&self, round: u64) -> bool {
        round >= self.meta.end_round
    }

    /// The CDF estimate implied by the synopsis: boundary `i` of `s`
    /// approximates the `i/(s-1)` quantile.
    fn estimate(&self) -> Result<InterpCdf, CdfError> {
        if self.synopsis.len() < 2 {
            // A node that never exchanged knows only its own value.
            return InterpCdf::new(vec![(self.min, 0.0), (self.max, 1.0)]);
        }
        let s = self.synopsis.len();
        let knots: Vec<(f64, f64)> = self
            .synopsis
            .iter()
            .enumerate()
            .map(|(i, b)| (*b, i as f64 / (s - 1) as f64))
            .collect();
        InterpCdf::new(knots)
    }
}

/// Equi-depth recompression of a sorted union to `bins` boundaries, with
/// the exact extrema pinned at the ends.
fn compress(sorted_union: &[f64], bins: usize, min: f64, max: f64) -> Vec<f64> {
    let m = sorted_union.len();
    if m <= bins {
        let mut out = sorted_union.to_vec();
        if let Some(first) = out.first_mut() {
            *first = min;
        }
        if let Some(last) = out.last_mut() {
            *last = max;
        }
        return out;
    }
    let mut out = Vec::with_capacity(bins);
    for i in 0..bins {
        // Interpolated fractional ranks reduce the systematic quantile
        // bias of nearest-rank picking under repeated recompression.
        let rank = i as f64 / (bins - 1) as f64 * (m - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = (rank.ceil() as usize).min(m - 1);
        let frac = rank - lo as f64;
        out.push(sorted_union[lo] * (1.0 - frac) + sorted_union[hi] * frac);
    }
    out[0] = min;
    out[bins - 1] = max;
    out
}

/// Per-node state of the EquiDepth protocol.
#[derive(Debug, Clone)]
pub struct EquiDepthNode {
    value: f64,
    phase: Option<PhaseLocal>,
    estimate: Option<InterpCdf>,
    estimate_phase: Option<u64>,
    joined_round: u64,
}

impl EquiDepthNode {
    /// The node's attribute value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The node's latest completed estimate.
    pub fn estimate(&self) -> Option<&InterpCdf> {
        self.estimate.as_ref()
    }

    /// The phase id that produced the latest estimate.
    pub fn estimate_phase(&self) -> Option<u64> {
        self.estimate_phase
    }

    /// The node's current synopsis (empty slice when idle).
    pub fn synopsis(&self) -> &[f64] {
        self.phase
            .as_ref()
            .map(|p| p.synopsis.as_slice())
            .unwrap_or(&[])
    }

    /// Whether the node is participating in a running phase.
    pub fn in_phase(&self) -> bool {
        self.phase.is_some()
    }

    /// The CDF implied by the node's *current* synopsis, before the phase
    /// ends (used for per-round tracking, Fig. 6b).
    pub fn phase_estimate(&self) -> Option<InterpCdf> {
        self.phase.as_ref().and_then(|p| p.estimate().ok())
    }

    /// The round the node joined the system (0 for the initial
    /// population).
    pub fn joined_round(&self) -> u64 {
        self.joined_round
    }
}

/// The EquiDepth protocol driver.
pub struct EquiDepthProtocol {
    config: EquiDepthConfig,
    source: Box<dyn FnMut(&mut StdRng) -> f64 + Send>,
    next_phase_id: u64,
    started: Vec<Arc<PhaseMeta>>,
}

impl std::fmt::Debug for EquiDepthProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EquiDepthProtocol")
            .field("config", &self.config)
            .field("started", &self.started.len())
            .finish()
    }
}

impl EquiDepthProtocol {
    /// Creates a protocol drawing node values from `source`.
    pub fn new(
        config: EquiDepthConfig,
        source: impl FnMut(&mut StdRng) -> f64 + Send + 'static,
    ) -> Self {
        assert!(config.bins >= 2, "bins must be at least 2");
        assert!(
            config.rounds_per_phase > 0,
            "rounds_per_phase must be positive"
        );
        Self {
            config,
            source: Box::new(source),
            next_phase_id: 0,
            started: Vec::new(),
        }
    }

    /// Convenience constructor mirroring
    /// [`Adam2Protocol::with_population`](adam2_core::Adam2Protocol::with_population).
    pub fn with_population(
        config: EquiDepthConfig,
        initial: Vec<f64>,
        mut fresh: impl FnMut(&mut StdRng) -> f64 + Send + 'static,
    ) -> Self {
        let mut queue = std::collections::VecDeque::from(initial);
        Self::new(config, move |rng| {
            queue.pop_front().unwrap_or_else(|| fresh(rng))
        })
    }

    /// The configuration.
    pub fn config(&self) -> EquiDepthConfig {
        self.config
    }

    /// Metadata of every phase started so far.
    pub fn started_phases(&self) -> &[Arc<PhaseMeta>] {
        &self.started
    }

    /// Starts a new phase at `initiator` (used by the experiment harness
    /// with the same cadence as Adam2 instances).
    pub fn start_phase(
        &mut self,
        initiator: NodeId,
        ctx: &mut Ctx<'_, EquiDepthNode>,
    ) -> Option<Arc<PhaseMeta>> {
        let node = ctx.nodes.get_mut(initiator)?;
        self.next_phase_id += 1;
        let meta = Arc::new(PhaseMeta {
            id: self.next_phase_id,
            start_round: ctx.round,
            end_round: ctx.round + self.config.rounds_per_phase,
            bins: self.config.bins,
        });
        node.phase = Some(PhaseLocal::join(meta.clone(), node.value));
        self.started.push(meta.clone());
        Some(meta)
    }

    fn finalize_due(node: &mut EquiDepthNode, round: u64) {
        let due = node
            .phase
            .as_ref()
            .map(|p| p.is_due(round))
            .unwrap_or(false);
        if due {
            let phase = node.phase.take().expect("phase checked above");
            if let Ok(est) = phase.estimate() {
                node.estimate = Some(est);
                node.estimate_phase = Some(phase.meta.id);
            }
        }
    }
}

impl Protocol for EquiDepthProtocol {
    type Node = EquiDepthNode;

    fn make_node(&mut self, rng: &mut StdRng) -> EquiDepthNode {
        EquiDepthNode {
            value: (self.source)(rng),
            phase: None,
            estimate: None,
            estimate_phase: None,
            joined_round: 0,
        }
    }

    fn on_round(&mut self, id: NodeId, ctx: &mut Ctx<'_, EquiDepthNode>) {
        let round = ctx.round;
        if let Some(node) = ctx.nodes.get_mut(id) {
            Self::finalize_due(node, round);
        }
        let Some(partner) = ctx.random_neighbour(id) else {
            return;
        };
        let Some((a, b)) = ctx.nodes.pair_mut(id, partner) else {
            return;
        };

        // Phase discovery: the receiver joins with its own value, exactly
        // like Adam2's instance join; late system-joiners ignore running
        // phases (evaluation parity with Adam2).
        let a_active = a
            .phase
            .as_ref()
            .filter(|p| !p.is_due(round))
            .map(|p| p.meta.clone());
        if let Some(meta) = &a_active {
            if b.phase.is_none() && b.joined_round <= meta.start_round {
                b.phase = Some(PhaseLocal::join(meta.clone(), b.value));
            }
        }
        let b_active = b
            .phase
            .as_ref()
            .filter(|p| !p.is_due(round))
            .map(|p| p.meta.clone());
        if let Some(meta) = &b_active {
            if a.phase.is_none() && a.joined_round <= meta.start_round {
                a.phase = Some(PhaseLocal::join(meta.clone(), a.value));
            }
        }

        // Message cost: one synopsis per direction (8 B per boundary plus
        // a small header), mirroring the paper's "similar information"
        // cost comparison.
        let payload = |n: &EquiDepthNode| {
            2 + n
                .phase
                .as_ref()
                .filter(|p| !p.is_due(round))
                .map(|p| 29 + p.synopsis.len() * 8)
                .unwrap_or(0)
        };
        let req = payload(a);
        let resp = payload(b);

        if let (Some(pa), Some(pb)) = (a.phase.as_mut(), b.phase.as_mut()) {
            if pa.meta.id == pb.meta.id && !pa.is_due(round) {
                PhaseLocal::merge_symmetric(pa, pb);
            }
        }
        ctx.net.charge_exchange(id, partner, req, resp);
    }

    fn on_join(&mut self, id: NodeId, ctx: &mut Ctx<'_, EquiDepthNode>) {
        let round = ctx.round;
        // Inherit a current estimate from a neighbour, like Adam2 joiners.
        let mut bootstrap = None;
        for _ in 0..8 {
            let Some(nb) = ctx.random_neighbour(id) else {
                break;
            };
            if let Some(node) = ctx.nodes.get(nb) {
                if node.estimate.is_some() {
                    bootstrap = Some((node.estimate.clone(), node.estimate_phase));
                    break;
                }
            }
        }
        if let Some(node) = ctx.nodes.get_mut(id) {
            node.joined_round = round;
            if let Some((est, phase)) = bootstrap {
                node.estimate = est;
                node.estimate_phase = phase;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adam2_core::{discrete_avg_distance, discrete_max_distance, StepCdf};
    use adam2_sim::{Engine, EngineConfig};
    use rand::RngExt as _;

    fn run_phase(engine: &mut Engine<EquiDepthProtocol>) -> Arc<PhaseMeta> {
        let meta = engine
            .with_ctx(|proto, ctx| {
                let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
                proto.start_phase(initiator, ctx)
            })
            .expect("phase started");
        let rounds = engine.protocol().config().rounds_per_phase + 1;
        engine.run_rounds(rounds);
        meta
    }

    fn smooth_engine(n: usize, seed: u64) -> (Engine<EquiDepthProtocol>, StepCdf) {
        let mut rng = adam2_sim::seeded_rng(seed);
        let values: Vec<f64> = (0..n)
            .map(|_| (rng.random::<f64>() * 1000.0).round().max(1.0))
            .collect();
        let truth = StepCdf::from_values(values.clone());
        let proto =
            EquiDepthProtocol::with_population(EquiDepthConfig::new(50, 30), values, |rng| {
                (rng.random::<f64>() * 1000.0).round().max(1.0)
            });
        (Engine::new(EngineConfig::new(n, seed), proto), truth)
    }

    #[test]
    fn compress_pins_extrema_and_respects_bins() {
        let union: Vec<f64> = (0..100).map(f64::from).collect();
        let c = compress(&union, 10, -5.0, 200.0);
        assert_eq!(c.len(), 10);
        assert_eq!(c[0], -5.0);
        assert_eq!(c[9], 200.0);
        assert!(c.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn compress_short_input_is_kept() {
        let c = compress(&[1.0, 2.0, 3.0], 10, 1.0, 3.0);
        assert_eq!(c, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn phase_produces_estimates_everywhere() {
        let (mut engine, truth) = smooth_engine(300, 5);
        run_phase(&mut engine);
        let mut count = 0;
        for (_, node) in engine.nodes().iter() {
            let est = node.estimate().expect("estimate after phase");
            let err = discrete_max_distance(&truth, est);
            assert!(err < 0.35, "wildly wrong estimate: {err}");
            count += 1;
        }
        assert_eq!(count, 300);
    }

    #[test]
    fn accuracy_plateaus_at_a_few_percent() {
        let (mut engine, truth) = smooth_engine(1000, 7);
        run_phase(&mut engine);
        let (_, node) = engine.nodes().iter().next().unwrap();
        let err = discrete_avg_distance(&truth, node.estimate().unwrap());
        // The paper reports ~1-3% average error for EquiDepth; sample
        // duplication keeps it well above Adam2's 1e-4 level.
        assert!(err < 0.1, "error too large: {err}");
        assert!(
            err > 1e-4,
            "suspiciously exact — duplication bias missing: {err}"
        );
    }

    #[test]
    fn phases_do_not_improve_across_repetitions() {
        let (mut engine, truth) = smooth_engine(500, 9);
        let mut errors = Vec::new();
        for _ in 0..3 {
            run_phase(&mut engine);
            let (_, node) = engine.nodes().iter().next().unwrap();
            errors.push(discrete_max_distance(&truth, node.estimate().unwrap()));
        }
        // Unlike Adam2, no systematic refinement: later phases are not
        // meaningfully better than the first.
        let first = errors[0];
        let last = *errors.last().unwrap();
        assert!(
            last > first / 3.0,
            "equidepth unexpectedly refined: {errors:?}"
        );
    }

    #[test]
    fn synopsis_respects_bin_bound() {
        let (mut engine, _) = smooth_engine(200, 11);
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.start_phase(initiator, ctx)
        });
        for _ in 0..10 {
            engine.run_round();
            for (_, node) in engine.nodes().iter() {
                assert!(node.synopsis().len() <= 50);
            }
        }
    }

    #[test]
    fn traffic_is_comparable_to_adam2() {
        let (mut engine, _) = smooth_engine(100, 13);
        run_phase(&mut engine);
        let per_node = engine.net().total_bytes() as f64 / 100.0;
        // ~30 rounds x 2 messages x ~430 B => tens of kB, like Adam2.
        assert!(
            per_node > 5_000.0 && per_node < 60_000.0,
            "per node {per_node}"
        );
    }
}
