//! Random-sampling estimation (Hall & Carzaniga).
//!
//! A node estimates the attribute distribution by drawing `k` uniform
//! random samples of the attribute values and taking the empirical CDF. In
//! a real deployment each sample costs one random walk of several hops
//! ([`sampling_cost_messages`]); the simulator grants the sampler an
//! oracle that returns uniform node values directly, which is *generous*
//! to the baseline — its accuracy is what the paper compares, its cost is
//! what makes it impractical.

use rand::rngs::StdRng;
use rand::RngExt as _;

use adam2_core::InterpCdf;

/// A random-sampling distribution estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingEstimate {
    /// The empirical CDF of the sample.
    pub cdf: InterpCdf,
    /// Number of samples drawn.
    pub samples: usize,
    /// Messages a real deployment would have spent (random walks).
    pub cost_messages: u64,
}

/// Default random-walk length used for cost accounting (enough hops for
/// approximate uniformity on a random overlay).
const DEFAULT_WALK_HOPS: u64 = 10;

/// Draws `k` uniform samples (with replacement, as independent random
/// walks would) from the live attribute values and returns the empirical
/// CDF estimate.
///
/// # Panics
///
/// Panics if `values` is empty or `k` is zero.
///
/// # Examples
///
/// ```
/// use adam2_baselines::sample_estimate;
/// use rand::SeedableRng;
///
/// let values: Vec<f64> = (1..=1000).map(f64::from).collect();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let est = sample_estimate(&values, 500, &mut rng);
/// let median = est.cdf.quantile(0.5);
/// assert!((median - 500.0).abs() < 80.0);
/// ```
pub fn sample_estimate(values: &[f64], k: usize, rng: &mut StdRng) -> SamplingEstimate {
    assert!(!values.is_empty(), "values must not be empty");
    assert!(k > 0, "k must be positive");
    let sample: Vec<f64> = (0..k)
        .map(|_| values[rng.random_range(0..values.len())])
        .collect();
    SamplingEstimate {
        cdf: InterpCdf::from_sample(&sample),
        samples: k,
        cost_messages: sampling_cost_messages(k, DEFAULT_WALK_HOPS),
    }
}

/// Messages required to draw `k` uniform samples via random walks of
/// `hops` hops each (each hop is one network message).
pub fn sampling_cost_messages(k: usize, hops: u64) -> u64 {
    k as u64 * hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use adam2_core::{discrete_max_distance, StepCdf};
    use rand::SeedableRng;

    fn uniform_values(n: usize) -> Vec<f64> {
        (1..=n).map(|i| i as f64).collect()
    }

    #[test]
    fn more_samples_reduce_error() {
        let values = uniform_values(10_000);
        let truth = StepCdf::from_values(values.clone());
        let mut rng = StdRng::seed_from_u64(2);
        let mut previous = f64::INFINITY;
        for k in [10, 100, 1000, 10_000] {
            // Average over a few draws to smooth randomness.
            let mut total = 0.0;
            for _ in 0..5 {
                let est = sample_estimate(&values, k, &mut rng);
                total += discrete_max_distance(&truth, &est.cdf);
            }
            let err = total / 5.0;
            assert!(err < previous * 1.2, "error did not shrink at k={k}: {err}");
            previous = err;
        }
        // With k = N samples, error is around 1/sqrt(N) territory.
        assert!(previous < 0.03, "final error {previous}");
    }

    #[test]
    fn error_scales_like_inverse_sqrt_k() {
        let values = uniform_values(100_000);
        let truth = StepCdf::from_values(values.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let mut errs = Vec::new();
        for k in [100, 10_000] {
            let mut total = 0.0;
            for _ in 0..5 {
                let est = sample_estimate(&values, k, &mut rng);
                total += discrete_max_distance(&truth, &est.cdf);
            }
            errs.push(total / 5.0);
        }
        // k grew 100x => error should shrink by roughly 10x (allow 4x-25x).
        let ratio = errs[0] / errs[1];
        assert!(
            (4.0..60.0).contains(&ratio),
            "scaling ratio {ratio}, errs {errs:?}"
        );
    }

    #[test]
    fn cost_model_counts_walk_hops() {
        assert_eq!(sampling_cost_messages(1000, 10), 10_000);
        let values = uniform_values(100);
        let mut rng = StdRng::seed_from_u64(4);
        let est = sample_estimate(&values, 7, &mut rng);
        assert_eq!(est.samples, 7);
        assert_eq!(est.cost_messages, 70);
    }

    #[test]
    fn samples_come_from_the_population() {
        let values = vec![5.0, 7.0, 11.0];
        let mut rng = StdRng::seed_from_u64(5);
        let est = sample_estimate(&values, 50, &mut rng);
        for (x, _) in est.cdf.knots() {
            assert!(values.contains(x), "foreign sample {x}");
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_samples_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        sample_estimate(&[1.0], 0, &mut rng);
    }
}
