//! Baseline distribution estimators the paper compares Adam2 against.
//!
//! * [`EquiDepthProtocol`] — the gossip-based equi-depth histogram
//!   estimation of Haridasan & van Renesse (IPTPS 2008), reimplemented
//!   from its description: nodes gossip bounded synopses of histogram
//!   boundaries and merge them by union + equi-depth recompression.
//!   Because the same underlying samples travel multiple gossip paths and
//!   are re-counted on merge (*sample duplication*), the accuracy plateaus
//!   at a few percent and — unlike Adam2 — does not improve across phases
//!   (paper Figs. 6b and 8).
//! * [`sample_estimate`] — random sampling (Hall & Carzaniga, Euro-Par
//!   2009): draw `k` uniform samples of the attribute (via random walks in
//!   the real system) and use the empirical CDF. Accuracy scales as
//!   `O(1/sqrt(k))`; matching Adam2 needs 1 000–10 000 samples *per node*,
//!   an order of magnitude more traffic (paper Fig. 9, Section VII-I).

mod equidepth;
mod equiwidth;
mod sampling;

pub use equidepth::{EquiDepthConfig, EquiDepthNode, EquiDepthProtocol, PhaseMeta};
pub use equiwidth::{EquiWidthConfig, EquiWidthNode, EquiWidthProtocol, WidthPhaseMeta};
pub use sampling::{sample_estimate, sampling_cost_messages, SamplingEstimate};
