//! Property-based tests of the baseline estimators.

use proptest::prelude::*;

use adam2_baselines::{sample_estimate, EquiWidthConfig};
use adam2_core::StepCdf;
use adam2_sim::seeded_rng;

proptest! {
    // ---- Random sampling ------------------------------------------------

    #[test]
    fn sample_estimate_is_a_valid_cdf_of_population_values(
        values in prop::collection::vec(0.0f64..1e6, 1..200),
        k in 1usize..500,
        seed in 0u64..1000,
    ) {
        let mut rng = seeded_rng(seed);
        let est = sample_estimate(&values, k, &mut rng);
        prop_assert_eq!(est.samples, k);
        // All knots come from the population; y spans [0, 1] monotonically.
        for (x, y) in est.cdf.knots() {
            prop_assert!(values.contains(x), "foreign sample {x}");
            prop_assert!((0.0..=1.0).contains(y));
        }
        let ys: Vec<f64> = est.cdf.knots().iter().map(|(_, y)| *y).collect();
        prop_assert!(ys.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*ys.last().unwrap(), 1.0);
    }

    #[test]
    fn full_census_sampling_is_consistent_with_truth(
        values in prop::collection::vec(0.0f64..1e3, 1..100),
        seed in 0u64..100,
    ) {
        // Sampling with replacement k >> n approaches the true CDF.
        let truth = StepCdf::from_values(values.clone());
        let mut rng = seeded_rng(seed);
        let est = sample_estimate(&values, values.len() * 200, &mut rng);
        // Loose DKW-style bound: with 200n samples the sup distance is
        // below ~0.2 with overwhelming probability.
        let d = adam2_core::max_distance(&truth, &est.cdf);
        prop_assert!(d < 0.2, "census sample too far from truth: {d}");
    }

    // ---- Equi-width binning ----------------------------------------------

    #[test]
    fn equiwidth_bins_partition_the_domain(
        bins in 1usize..50,
        lo in 0.0f64..100.0,
        span in 1.0f64..1e5,
        probes in prop::collection::vec(0.0f64..1.0, 30),
    ) {
        let config = EquiWidthConfig::new(bins, 10, (lo, lo + span));
        let mut prev_bin = 0usize;
        let mut sorted = probes;
        sorted.sort_by(f64::total_cmp);
        for p in sorted {
            let value = lo + span * p;
            let bin = config_bin(&config, value);
            prop_assert!(bin < bins);
            prop_assert!(bin >= prev_bin, "bin index must be monotone in the value");
            prev_bin = bin;
        }
    }
}

/// Accesses the bin through the public protocol surface: build a one-node
/// phase and read back which mass slot was set.
fn config_bin(config: &EquiWidthConfig, value: f64) -> usize {
    use adam2_baselines::EquiWidthProtocol;
    use adam2_sim::{Engine, EngineConfig};
    let proto = EquiWidthProtocol::with_population(*config, vec![value, value], move |_| value);
    let mut engine = Engine::new(EngineConfig::new(2, 7), proto);
    engine.with_ctx(|proto, ctx| {
        let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
        proto.start_phase(initiator, ctx)
    });
    let (_, node) = engine
        .nodes()
        .iter()
        .find(|(_, n)| !n.masses().is_empty())
        .expect("phase started");
    node.masses()
        .iter()
        .position(|m| *m > 0.0)
        .expect("one-hot mass")
}
