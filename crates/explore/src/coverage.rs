//! Feature-map coverage over scenario parameters × run behaviour.
//!
//! A candidate is *novel* when it contributes at least one feature the
//! campaign has not seen before. Features come from two sides:
//!
//! * **Scenario features** ([`scenario_features`]): which fault axes are
//!   present, how many events each has, log2-bucketed window lengths,
//!   decile-bucketed rates/fractions, partition shapes, adversary models.
//! * **Behaviour features** ([`behaviour_signature`]): log2-bucketed
//!   totals of the telemetry `RoundSnapshot` counters (repairs, aborts,
//!   bootstraps, robust rejects/trims, crashes, …), the Err_a decade,
//!   self-heal restarts, and estimate-less peer counts.
//!
//! Bucketing is the coarse-graining that turns an uncountable parameter
//! space into a finite map: two scenarios that differ only inside one
//! bucket exercise the system the same way and should not both earn
//! corpus energy.

use std::collections::HashSet;

use adam2_sim::{FaultEvent, FaultScenario, PartitionKind, RoundSnapshot};

/// Tag space for feature words: the top byte names the family so scenario
/// and behaviour features can never collide.
const FAMILY_SCENARIO: u64 = 0x51 << 56;
const FAMILY_BEHAVIOUR: u64 = 0xB5 << 56;

/// log2 bucket of a count: 0 → 0, otherwise `1 + floor(log2 n)`.
fn log2_bucket(n: u64) -> u64 {
    if n == 0 {
        0
    } else {
        1 + u64::from(n.ilog2())
    }
}

/// Decile bucket of a rate in `[0, 1]` (or any non-negative value;
/// clamped at 10 so magnitudes > 1 share one bucket per integer step up
/// to 25).
fn rate_bucket(rate: f64) -> u64 {
    if !rate.is_finite() || rate < 0.0 {
        return 63;
    }
    ((rate * 10.0) as u64).min(250)
}

/// The set of scenario-side features (order-independent; deduplicated by
/// the map).
pub fn scenario_features(scenario: &FaultScenario) -> Vec<u64> {
    let mut features = Vec::new();
    let mut push = |axis: u64, kind: u64, value: u64| {
        features.push(FAMILY_SCENARIO | (axis << 48) | (kind << 40) | (value & 0xFF_FFFF_FFFF));
    };
    let mut per_axis = [0u64; 8];
    for event in &scenario.events {
        match *event {
            FaultEvent::BurstLoss {
                from_round,
                to_round,
                loss_rate,
            } => {
                per_axis[1] += 1;
                push(1, 1, log2_bucket(to_round.saturating_sub(from_round)));
                push(1, 2, rate_bucket(loss_rate));
                push(1, 3, from_round / 4);
            }
            FaultEvent::Partition {
                from_round,
                to_round,
                kind,
            } => {
                per_axis[2] += 1;
                push(2, 1, log2_bucket(to_round.saturating_sub(from_round)));
                let shape = match kind {
                    PartitionKind::Bisect => 0,
                    PartitionKind::Islands(k) => u64::from(k),
                };
                push(2, 2, shape);
                push(2, 3, from_round / 4);
            }
            FaultEvent::CrashRecover {
                at_round,
                recover_round,
                fraction,
            } => {
                per_axis[3] += 1;
                push(3, 1, log2_bucket(recover_round.saturating_sub(at_round)));
                push(3, 2, rate_bucket(fraction));
                push(3, 3, at_round / 4);
            }
            FaultEvent::Delay {
                from_round,
                to_round,
                extra_ticks,
            } => {
                per_axis[4] += 1;
                push(4, 1, log2_bucket(to_round.saturating_sub(from_round)));
                push(4, 2, log2_bucket(extra_ticks));
                push(4, 3, from_round / 4);
            }
            FaultEvent::Duplicate {
                from_round,
                to_round,
                rate,
            } => {
                per_axis[5] += 1;
                push(5, 1, log2_bucket(to_round.saturating_sub(from_round)));
                push(5, 2, rate_bucket(rate));
                push(5, 3, from_round / 4);
            }
            FaultEvent::Adversary {
                from_round,
                to_round,
                fraction,
                ref model,
            } => {
                per_axis[6] += 1;
                push(6, 1, log2_bucket(to_round.saturating_sub(from_round)));
                push(6, 2, rate_bucket(fraction));
                push(6, 3, from_round / 4);
                let (tag, value) = match *model {
                    adam2_sim::AdversaryModel::ValuePoisoning { magnitude } => (1, magnitude),
                    adam2_sim::AdversaryModel::WeightInflation { factor } => (2, factor),
                    adam2_sim::AdversaryModel::TargetedPartner { magnitude } => (3, magnitude),
                    adam2_sim::AdversaryModel::Equivocation { magnitude } => (4, magnitude),
                };
                push(6, 4, tag);
                push(6, 5, (tag << 16) | rate_bucket(value));
            }
            FaultEvent::Drift {
                from_round,
                to_round,
                ref model,
            } => {
                per_axis[7] += 1;
                push(7, 1, log2_bucket(to_round.saturating_sub(from_round)));
                push(7, 3, from_round / 4);
                // Ramp/step/jitter magnitudes are in absolute attribute
                // units (tens to hundreds), so they bucket by log2;
                // replacement is a probability and buckets by decile.
                let (tag, bucket) = match *model {
                    adam2_sim::DriftModel::LinearRamp { per_round } => {
                        (1, log2_bucket(per_round.abs() as u64))
                    }
                    adam2_sim::DriftModel::Step { shift } => (2, log2_bucket(shift.abs() as u64)),
                    adam2_sim::DriftModel::Jitter { sigma } => (3, log2_bucket(sigma as u64)),
                    adam2_sim::DriftModel::Replacement { rate } => (4, rate_bucket(rate)),
                };
                push(7, 4, tag);
                push(7, 5, (tag << 16) | bucket);
            }
        }
    }
    for (axis, &count) in per_axis.iter().enumerate() {
        if count > 0 {
            push(axis as u64, 0, count);
        }
    }
    // Which axes are simultaneously present: compound-fault interactions
    // are the whole point of the campaign, so the combination itself is a
    // feature.
    let mask = per_axis
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .fold(0u64, |m, (axis, _)| m | (1 << axis));
    push(0, 1, mask);
    push(0, 2, scenario.events.len() as u64);
    features
}

/// Behaviour-side features from one run's telemetry.
pub fn behaviour_signature(
    snapshots: &[RoundSnapshot],
    err_a: f64,
    healed: u64,
    peers_without_estimate: usize,
) -> Vec<u64> {
    let mut totals = [0u64; 10];
    for snap in snapshots {
        totals[0] += snap.exchanges;
        totals[1] += snap.repairs;
        totals[2] += snap.aborts;
        totals[3] += snap.faults;
        totals[4] += snap.crashes;
        totals[5] += snap.recoveries;
        totals[6] += snap.bootstraps;
        totals[7] += snap.heal_bumps;
        totals[8] += snap.robust_rejects;
        totals[9] += snap.robust_trims;
    }
    let mut features = Vec::with_capacity(totals.len() + 3);
    for (idx, &total) in totals.iter().enumerate() {
        features.push(FAMILY_BEHAVIOUR | ((idx as u64) << 8) | log2_bucket(total));
    }
    // Err_a decade: bucket k means 10^-(k+1) < err <= 10^-k, clamped.
    let err_bucket = if !err_a.is_finite() || err_a <= 0.0 {
        16
    } else {
        (-err_a.log10()).floor().clamp(0.0, 15.0) as u64
    };
    features.push(FAMILY_BEHAVIOUR | (100 << 8) | err_bucket);
    features.push(FAMILY_BEHAVIOUR | (101 << 8) | log2_bucket(healed));
    features.push(FAMILY_BEHAVIOUR | (102 << 8) | log2_bucket(peers_without_estimate as u64));
    features
}

/// The campaign's accumulated feature set.
#[derive(Debug, Default)]
pub struct CoverageMap {
    seen: HashSet<u64>,
}

impl CoverageMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `features`, returning how many were new.
    pub fn observe(&mut self, features: impl IntoIterator<Item = u64>) -> usize {
        let mut novel = 0;
        for f in features {
            if self.seen.insert(f) {
                novel += 1;
            }
        }
        novel
    }

    /// Distinct features seen so far.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adam2_sim::AdversaryModel;

    #[test]
    fn empty_scenario_has_baseline_features_only() {
        let features = scenario_features(&FaultScenario::new(1));
        // Axis mask (empty) + event count.
        assert_eq!(features.len(), 2);
    }

    #[test]
    fn distinct_axes_yield_distinct_features() {
        let burst = scenario_features(&FaultScenario::new(1).with_burst_loss(0, 5, 0.2));
        let delay = scenario_features(&FaultScenario::new(1).with_delay(0, 5, 10));
        let b: HashSet<u64> = burst.iter().copied().collect();
        let d: HashSet<u64> = delay.iter().copied().collect();
        assert!(b.intersection(&d).count() < b.len());
    }

    #[test]
    fn bucketing_coarse_grains_nearby_rates() {
        let a = scenario_features(&FaultScenario::new(1).with_burst_loss(0, 5, 0.21));
        let b = scenario_features(&FaultScenario::new(1).with_burst_loss(0, 5, 0.24));
        let c = scenario_features(&FaultScenario::new(1).with_burst_loss(0, 5, 0.4));
        assert_eq!(a, b, "same decile, same features");
        assert_ne!(a, c, "different decile, different features");
    }

    #[test]
    fn adversary_models_are_distinguished() {
        let mk =
            |model| scenario_features(&FaultScenario::new(1).with_adversary(0, 10, 0.1, model));
        let a = mk(AdversaryModel::ValuePoisoning { magnitude: 5.0 });
        let b = mk(AdversaryModel::WeightInflation { factor: 5.0 });
        assert_ne!(a, b);
    }

    #[test]
    fn drift_models_are_distinguished() {
        use adam2_sim::DriftModel;
        let mk = |model| scenario_features(&FaultScenario::new(1).with_drift(5, 15, model));
        let ramp = mk(DriftModel::LinearRamp { per_round: 10.0 });
        let step = mk(DriftModel::Step { shift: 200.0 });
        let jitter = mk(DriftModel::Jitter { sigma: 50.0 });
        assert_ne!(ramp, step);
        assert_ne!(step, jitter);
        // Magnitudes a power of two apart land in different buckets.
        let small = mk(DriftModel::Step { shift: 60.0 });
        assert_ne!(step, small);
    }

    #[test]
    fn coverage_map_counts_novelty_once() {
        let mut map = CoverageMap::new();
        let features = scenario_features(&FaultScenario::new(1).with_burst_loss(0, 5, 0.2));
        let first = map.observe(features.iter().copied());
        assert_eq!(first, features.len());
        assert_eq!(map.observe(features.iter().copied()), 0);
        assert_eq!(map.len(), first);
    }

    #[test]
    fn behaviour_signature_is_stable_and_bucketed() {
        let sig = behaviour_signature(&[], 1e-3, 0, 0);
        assert_eq!(sig, behaviour_signature(&[], 1e-3, 0, 0));
        // Err in a different decade changes exactly one feature.
        let other = behaviour_signature(&[], 1e-2, 0, 0);
        let diff = sig.iter().zip(&other).filter(|(a, b)| a != b).count();
        assert_eq!(diff, 1);
    }

    #[test]
    fn log2_buckets() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(1024), 11);
    }
}
