//! Coverage-guided fault-space exploration: campaigns, corpus, replay.
//!
//! Default mode runs one bounded campaign per [`ConfigKind`] — `vanilla`
//! (the paper's plain protocol, expected to fall over somewhere in the
//! fault envelope) and `hardened` (repair + robust merge + self-healing,
//! expected to clear it) — and writes `BENCH_explore.json` at the
//! repository root (override with `--out PATH`).
//!
//! Flags beyond the standard `--nodes/--seed/--lambda` set:
//!
//! * `--iters N` — mutation iterations per campaign (default 60);
//! * `--workers N` — oracle-judging threads per batch (default: cores,
//!   capped at 8; any value replays the identical campaign);
//! * `--check` — re-run both campaigns from the same master seed at a
//!   *different* worker count and fail unless they replay
//!   bit-identically, the vanilla campaign found and shrank a
//!   violation, and the hardened campaign stayed clear;
//! * `--emit-corpus DIR` — also write the seed corpus (the canned
//!   `bench_faults` scenarios under vanilla, the four `bench_byzantine`
//!   f=10% attacks under hardened, the drift trio exercising the
//!   streaming oracle path) plus the vanilla campaign's minimal
//!   violation, as replayable JSON entries;
//! * `--corpus DIR` — replay an existing corpus instead of exploring;
//!   exits non-zero if any entry's verdict or fingerprint changed.
//!
//! The recommended exploration scale is `--nodes 400`: one judged run
//! stays in the low milliseconds, so a 60-iteration campaign (plus
//! shrinking) finishes in seconds. The committed `BENCH_explore.json`
//! and `corpus/` were produced at that scale.

use std::path::Path;
use std::process::exit;

use adam2_bench::Args;
use adam2_explore::campaign::{run_campaign, CampaignConfig, CampaignReport};
use adam2_explore::corpus::{load_dir, replay, CorpusEntry};
use adam2_explore::oracle::{ConfigKind, Oracle, OracleConfig, Verdict, ROUNDS};
use adam2_explore::shrink::strictly_smaller;
use adam2_sim::{
    AdversaryModel, DriftModel, FaultEvent, FaultScenario, PartitionKind, RunManifest,
};

/// Mirrors `bench_byzantine`: poisoned components drawn from [0, 5).
const MAGNITUDE: f64 = 5.0;
/// Mirrors `bench_byzantine`: inflated aggregation weight.
const INFLATION: f64 = 8.0;
/// Byzantine fraction for the corpus attack seeds.
const BYZANTINE_FRACTION: f64 = 0.1;

struct ConfigResult {
    config: &'static str,
    iterations: usize,
    oracle_runs: usize,
    features: usize,
    violations: usize,
    verdict: String,
    first_hit_axes: usize,
    minimal_axes: usize,
    minimal_desc: String,
    detail: f64,
    fingerprint: u64,
    shrink_runs: usize,
}

/// Quote-free scenario description (`telemetry_check`'s flat-object
/// parser rejects escape sequences, so keep it plain).
fn describe(scenario: &FaultScenario) -> String {
    if scenario.events.is_empty() {
        return format!("seed {} no faults", scenario.seed);
    }
    let events: Vec<String> = scenario
        .events
        .iter()
        .map(|event| match *event {
            FaultEvent::BurstLoss {
                from_round,
                to_round,
                loss_rate,
            } => format!("burst {from_round}..{to_round} rate {loss_rate:.2}"),
            FaultEvent::Partition {
                from_round,
                to_round,
                kind,
            } => {
                let shape = match kind {
                    PartitionKind::Bisect => "bisect".to_string(),
                    PartitionKind::Islands(k) => format!("islands{k}"),
                };
                format!("partition {from_round}..{to_round} {shape}")
            }
            FaultEvent::CrashRecover {
                at_round,
                recover_round,
                fraction,
            } => format!("crash {at_round} recover {recover_round} frac {fraction:.2}"),
            FaultEvent::Delay {
                from_round,
                to_round,
                extra_ticks,
            } => format!("delay {from_round}..{to_round} ticks {extra_ticks}"),
            FaultEvent::Duplicate {
                from_round,
                to_round,
                rate,
            } => format!("dup {from_round}..{to_round} rate {rate:.2}"),
            FaultEvent::Adversary {
                from_round,
                to_round,
                fraction,
                model,
            } => {
                let lie = match model {
                    AdversaryModel::ValuePoisoning { magnitude } => {
                        format!("value_poisoning mag {magnitude:.1}")
                    }
                    AdversaryModel::WeightInflation { factor } => {
                        format!("weight_inflation factor {factor:.1}")
                    }
                    AdversaryModel::TargetedPartner { magnitude } => {
                        format!("targeted_partner mag {magnitude:.1}")
                    }
                    AdversaryModel::Equivocation { magnitude } => {
                        format!("equivocation mag {magnitude:.1}")
                    }
                };
                format!("adversary {from_round}..{to_round} frac {fraction:.2} {lie}")
            }
            FaultEvent::Drift {
                from_round,
                to_round,
                model,
            } => {
                let shape = match model {
                    DriftModel::LinearRamp { per_round } => format!("ramp {per_round:.1}"),
                    DriftModel::Step { shift } => format!("step {shift:.1}"),
                    DriftModel::Jitter { sigma } => format!("jitter {sigma:.1}"),
                    DriftModel::Replacement { rate } => format!("replace {rate:.2}"),
                };
                format!("drift {from_round}..{to_round} {shape}")
            }
        })
        .collect();
    format!("seed {} {}", scenario.seed, events.join("; "))
}

fn summarise(kind: ConfigKind, report: &CampaignReport) -> ConfigResult {
    match report.violations.first() {
        Some(v) => ConfigResult {
            config: kind.as_str(),
            iterations: report.iterations_run,
            oracle_runs: report.oracle_runs,
            features: report.features,
            violations: report.violations.len(),
            verdict: v.minimal_outcome.verdict.as_str().to_string(),
            first_hit_axes: v.first.events.len(),
            minimal_axes: v.minimal.events.len(),
            minimal_desc: describe(&v.minimal),
            detail: v.minimal_outcome.detail,
            fingerprint: v.minimal_outcome.fingerprint,
            shrink_runs: v.shrink_runs,
        },
        None => ConfigResult {
            config: kind.as_str(),
            iterations: report.iterations_run,
            oracle_runs: report.oracle_runs,
            features: report.features,
            violations: 0,
            verdict: Verdict::Clear.as_str().to_string(),
            first_hit_axes: 0,
            minimal_axes: 0,
            minimal_desc: "none".to_string(),
            detail: 0.0,
            fingerprint: report
                .cleared
                .as_ref()
                .map_or(0, |(_, outcome)| outcome.fingerprint),
            shrink_runs: 0,
        },
    }
}

fn render_json(args: &Args, iters: usize, results: &[ConfigResult]) -> String {
    let manifest = RunManifest::new(
        "bench_explore",
        &format!(
            "nodes={} lambda={} rounds={ROUNDS} iters={iters}",
            args.nodes, args.lambda
        ),
        args.seed,
        1,
    );
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"scenario_explorer\",\n");
    json.push_str(&format!("  \"manifest\": {},\n", manifest.to_inline_json()));
    json.push_str(&format!("  \"nodes\": {},\n", args.nodes));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!("  \"lambda\": {},\n", args.lambda));
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"config\": \"{}\", \"iterations\": {}, \"oracle_runs\": {}, \
             \"features\": {}, \"violations\": {}, \"verdict\": \"{}\", \
             \"first_hit_axes\": {}, \"minimal_axes\": {}, \"minimal_desc\": \"{}\", \
             \"detail\": {:.6e}, \"fingerprint\": {}, \"shrink_runs\": {}}}{}\n",
            r.config,
            r.iterations,
            r.oracle_runs,
            r.features,
            r.violations,
            r.verdict,
            r.first_hit_axes,
            r.minimal_axes,
            r.minimal_desc,
            r.detail,
            r.fingerprint,
            r.shrink_runs,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

/// The canned seed scenarios: `bench_faults`' matrix judged vanilla (the
/// engine they historically broke) and `bench_byzantine`'s four f=10%
/// attacks judged hardened (the config that must shrug them off).
fn seed_corpus_scenarios(seed: u64) -> Vec<(String, ConfigKind, Option<FaultScenario>)> {
    let attack = |model: AdversaryModel| {
        FaultScenario::new(seed).with_adversary(0, ROUNDS + 3, BYZANTINE_FRACTION, model)
    };
    vec![
        ("vanilla_fault_free".into(), ConfigKind::Vanilla, None),
        (
            "vanilla_burst20".into(),
            ConfigKind::Vanilla,
            Some(FaultScenario::new(seed).with_burst_loss(5, 15, 0.2)),
        ),
        (
            "vanilla_burst20_partition10".into(),
            ConfigKind::Vanilla,
            Some(
                FaultScenario::new(seed)
                    .with_burst_loss(5, 15, 0.2)
                    .with_partition(10, 20, PartitionKind::Bisect),
            ),
        ),
        (
            "vanilla_crash_recover".into(),
            ConfigKind::Vanilla,
            Some(FaultScenario::new(seed).with_crash_recover(8, 16, 0.1)),
        ),
        (
            "hardened_value_poisoning".into(),
            ConfigKind::Hardened,
            Some(attack(AdversaryModel::ValuePoisoning {
                magnitude: MAGNITUDE,
            })),
        ),
        (
            "hardened_weight_inflation".into(),
            ConfigKind::Hardened,
            Some(attack(AdversaryModel::WeightInflation {
                factor: INFLATION,
            })),
        ),
        (
            "hardened_targeted_partner".into(),
            ConfigKind::Hardened,
            Some(attack(AdversaryModel::TargetedPartner {
                magnitude: MAGNITUDE,
            })),
        ),
        (
            "hardened_equivocation".into(),
            ConfigKind::Hardened,
            Some(attack(AdversaryModel::Equivocation {
                magnitude: MAGNITUDE,
            })),
        ),
        // The streaming oracle path: drifted attributes waive the
        // fraction audit (estimates go stale by design) while weight
        // conservation stays a hard invariant.
        (
            "vanilla_drift_ramp".into(),
            ConfigKind::Vanilla,
            Some(FaultScenario::new(seed).with_drift(
                5,
                15,
                DriftModel::LinearRamp { per_round: 10.0 },
            )),
        ),
        (
            "vanilla_drift_burst".into(),
            ConfigKind::Vanilla,
            Some(
                FaultScenario::new(seed)
                    .with_burst_loss(5, 15, 0.3)
                    .with_drift(5, 15, DriftModel::LinearRamp { per_round: 10.0 }),
            ),
        ),
        (
            "hardened_drift_step".into(),
            ConfigKind::Hardened,
            Some(FaultScenario::new(seed).with_drift(10, 11, DriftModel::Step { shift: 500.0 })),
        ),
    ]
}

fn entry_for(name: String, oracle: &Oracle, scenario: FaultScenario) -> CorpusEntry {
    let outcome = oracle.run(&scenario);
    let config = oracle.config();
    CorpusEntry {
        name,
        config: config.kind,
        nodes: config.nodes,
        lambda: config.lambda,
        seed: config.seed,
        sample_peers: config.sample_peers,
        verdict: outcome.verdict,
        detail: outcome.detail,
        fingerprint: outcome.fingerprint,
        scenario,
    }
}

fn emit_corpus(
    dir: &Path,
    args: &Args,
    oracles: &[(ConfigKind, &Oracle)],
    vanilla_report: &CampaignReport,
) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    let mut entries = Vec::new();
    for (name, kind, scenario) in seed_corpus_scenarios(args.seed) {
        let oracle = oracles
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, o)| *o)
            .expect("both configs present");
        let scenario = scenario.unwrap_or(FaultScenario::new(args.seed));
        entries.push(entry_for(name, oracle, scenario));
    }
    if let Some(v) = vanilla_report.violations.first() {
        let oracle = oracles
            .iter()
            .find(|(k, _)| *k == ConfigKind::Vanilla)
            .map(|(_, o)| *o)
            .expect("vanilla oracle present");
        entries.push(entry_for(
            "vanilla_campaign_minimal".into(),
            oracle,
            v.minimal.clone(),
        ));
    }
    let count = entries.len();
    for entry in entries {
        std::fs::write(dir.join(format!("{}.json", entry.name)), entry.to_json())?;
    }
    Ok(count)
}

fn replay_corpus(dir: &Path) -> i32 {
    let entries = match load_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("bench_explore: corpus load failed: {e}");
            return 1;
        }
    };
    if entries.is_empty() {
        eprintln!("bench_explore: {} holds no corpus entries", dir.display());
        return 1;
    }
    let results = replay(&entries);
    let mut failures = 0;
    for r in &results {
        let status = if r.ok() { "ok" } else { "CHANGED" };
        println!(
            "replay {:<32} expected {:<15} got {:<15} fingerprint {} [{status}]",
            r.name,
            r.expected.as_str(),
            r.got.as_str(),
            if r.fingerprint_matched {
                "match"
            } else {
                "MISMATCH"
            },
        );
        if !r.ok() {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!(
            "bench_explore: {failures}/{} corpus entries changed",
            results.len()
        );
        return 1;
    }
    println!("corpus replay: {} entries bit-identical", results.len());
    0
}

fn campaign_pair(
    args: &Args,
    iters: usize,
    workers: usize,
) -> (Oracle, CampaignReport, Oracle, CampaignReport) {
    let vanilla = Oracle::new(
        OracleConfig::new(ConfigKind::Vanilla)
            .with_nodes(args.nodes)
            .with_seed(args.seed),
    );
    let hardened = Oracle::new(
        OracleConfig::new(ConfigKind::Hardened)
            .with_nodes(args.nodes)
            .with_seed(args.seed),
    );
    let vanilla_report = run_campaign(
        &CampaignConfig::new(args.seed)
            .with_iterations(iters)
            .with_workers(workers),
        &vanilla,
        |i, features, violations| {
            if (i + 1) % 10 == 0 {
                eprintln!(
                    "vanilla campaign: iter {:>3} features {features} violations {violations}",
                    i + 1
                );
            }
        },
    );
    let hardened_report = run_campaign(
        &CampaignConfig::new(args.seed)
            .with_iterations(iters)
            .with_max_violations(0)
            .with_workers(workers),
        &hardened,
        |i, features, violations| {
            if (i + 1) % 10 == 0 {
                eprintln!(
                    "hardened campaign: iter {:>3} features {features} violations {violations}",
                    i + 1
                );
            }
        },
    );
    (vanilla, vanilla_report, hardened, hardened_report)
}

fn run_checks(
    vanilla: &CampaignReport,
    hardened: &CampaignReport,
    rerun_vanilla: &CampaignReport,
    rerun_hardened: &CampaignReport,
) -> Vec<String> {
    let mut failures = Vec::new();
    if vanilla.violations.is_empty() {
        failures.push("vanilla campaign found no violation".to_string());
    }
    for v in &vanilla.violations {
        if !(v.minimal == v.first || strictly_smaller(&v.first, &v.minimal)) {
            failures.push(format!(
                "shrink grew the scenario: first {:?} minimal {:?}",
                v.first, v.minimal
            ));
        }
        if v.minimal_outcome.verdict != v.first_outcome.verdict {
            failures.push("shrink changed the verdict kind".to_string());
        }
    }
    if !hardened.violations.is_empty() {
        let v = &hardened.violations[0];
        failures.push(format!(
            "hardened config violated {} on {}",
            v.minimal_outcome.verdict.as_str(),
            describe(&v.minimal)
        ));
    }
    // Determinism: the same master seed must replay bit-identically.
    for (name, a, b) in [
        ("vanilla", vanilla, rerun_vanilla),
        ("hardened", hardened, rerun_hardened),
    ] {
        if a.oracle_runs != b.oracle_runs
            || a.features != b.features
            || a.violations.len() != b.violations.len()
        {
            failures.push(format!("{name} campaign replay diverged in shape"));
            continue;
        }
        for (va, vb) in a.violations.iter().zip(&b.violations) {
            if va.minimal != vb.minimal
                || va.minimal_outcome.fingerprint != vb.minimal_outcome.fingerprint
            {
                failures.push(format!("{name} campaign replay diverged in violations"));
            }
        }
    }
    failures
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let check = take_flag(&mut raw, "--check");
    let args = match Args::try_parse(raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("bench_explore: {e}");
            exit(2);
        }
    };
    if let Some(dir) = args.extra("corpus") {
        exit(replay_corpus(Path::new(dir)));
    }
    let iters = match args.extra_parsed::<usize>("iters") {
        Ok(v) => v.unwrap_or(60),
        Err(e) => {
            eprintln!("bench_explore: {e}");
            exit(2);
        }
    };
    let workers = match args.extra_parsed::<usize>("workers") {
        Ok(v) => v.unwrap_or_else(default_workers).max(1),
        Err(e) => {
            eprintln!("bench_explore: {e}");
            exit(2);
        }
    };
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    let out = args.extra("out").unwrap_or(default_out).to_string();

    let (vanilla, vanilla_report, _hardened, hardened_report) =
        campaign_pair(&args, iters, workers);
    let results = [
        summarise(ConfigKind::Vanilla, &vanilla_report),
        summarise(ConfigKind::Hardened, &hardened_report),
    ];
    for r in &results {
        println!(
            "{:<9} iterations {:>3} oracle_runs {:>4} features {:>4} violations {} \
             verdict {} minimal [{}]",
            r.config,
            r.iterations,
            r.oracle_runs,
            r.features,
            r.violations,
            r.verdict,
            r.minimal_desc
        );
    }

    if let Some(dir) = args.extra("emit-corpus") {
        let oracles: Vec<(ConfigKind, &Oracle)> = vec![
            (ConfigKind::Vanilla, &vanilla),
            (ConfigKind::Hardened, &_hardened),
        ];
        match emit_corpus(Path::new(dir), &args, &oracles, &vanilla_report) {
            Ok(count) => println!("corpus: wrote {count} entries to {dir}"),
            Err(e) => {
                eprintln!("bench_explore: corpus write failed: {e}");
                exit(1);
            }
        }
    }

    let json = render_json(&args, iters, &results);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_explore: writing {out}: {e}");
        exit(1);
    }
    println!("wrote {out}");

    if check {
        // Replay at a *different* worker count: the rerun asserts both
        // seed-determinism and worker-count invariance in one pass.
        let other_workers = if workers == 1 { 2 } else { 1 };
        eprintln!(
            "check: replaying both campaigns from master seed {} at workers {other_workers} \
             (first pass used {workers})",
            args.seed
        );
        let (_, rerun_vanilla, _, rerun_hardened) = campaign_pair(&args, iters, other_workers);
        let failures = run_checks(
            &vanilla_report,
            &hardened_report,
            &rerun_vanilla,
            &rerun_hardened,
        );
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("CHECK FAILED: {f}");
            }
            exit(1);
        }
        println!("checks passed: deterministic, vanilla violates + shrinks, hardened clear");
    }
}

/// Default judging pool: the machine's cores, capped — oracle runs are
/// milliseconds each, so a huge pool only buys scheduling overhead.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

fn take_flag(raw: &mut Vec<String>, name: &str) -> bool {
    let before = raw.len();
    raw.retain(|a| a != name);
    raw.len() != before
}
