//! Coverage-guided adversarial fault-scenario explorer for Adam2.
//!
//! The repo's reliability claims were checked against a handful of
//! hand-picked [`adam2_sim::FaultScenario`]s; the interesting failures
//! live in the compound-fault space nobody enumerated. This crate fuzzes
//! that space:
//!
//! * [`mutate`] — weighted, adaptive mutation tables over every fault
//!   axis (burst loss, partitions, crash–recover, delay/duplication, the
//!   four Byzantine adversary models), bounded to a calibrated envelope;
//! * [`oracle`] — runs a candidate on the cycle engine and judges it
//!   against mass-conservation, convergence, and Err_a-regression
//!   invariants (panics are caught and reported);
//! * [`coverage`] — a feature map over scenario parameters × telemetry
//!   behaviour signatures that decides which candidates earn corpus
//!   energy;
//! * [`shrink`] — delta-debugs a violation to a minimal scenario that
//!   still violates the same invariant;
//! * [`campaign`] — the scheduler tying it together, fully deterministic
//!   from one master seed;
//! * [`corpus`] — JSON persistence + bit-identical replay, turning every
//!   find into a committed regression test (`tests/corpus_replay.rs`
//!   re-runs the committed corpus in CI).
//!
//! The `bench_explore` binary drives campaigns and writes
//! `BENCH_explore.json`; see the repo README for the workflow.

pub mod campaign;
pub mod corpus;
pub mod coverage;
pub mod mutate;
pub mod oracle;
pub mod shrink;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, FoundViolation};
pub use corpus::{load_dir, replay, CorpusEntry, ReplayResult};
pub use coverage::{behaviour_signature, scenario_features, CoverageMap};
pub use mutate::Mutator;
pub use oracle::{ConfigKind, Oracle, OracleConfig, RunOutcome, Verdict};
pub use shrink::{shrink, strictly_smaller, ShrinkOutcome};
