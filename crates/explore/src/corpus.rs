//! The committed regression corpus: JSON scenario files + replay.
//!
//! Each corpus entry is one file holding the scenario, the oracle
//! parameters it was judged under, and the expected verdict +
//! fingerprint. `replay` re-runs every entry and demands a bit-identical
//! outcome — deterministic replay turns every found counterexample (and
//! every cleared hand-picked scenario) into a permanent regression test.
//! Decoding is strict and never panics: a corrupted corpus file fails
//! the replay with an error naming the file.

use std::fs;
use std::path::{Path, PathBuf};

use adam2_sim::FaultScenario;
use serde::json::{self, Value};

use crate::oracle::{ConfigKind, Oracle, OracleConfig, Verdict};

/// One committed regression scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// Human-readable name (doubles as the file stem).
    pub name: String,
    /// Which protocol configuration judged it.
    pub config: ConfigKind,
    /// Oracle population size.
    pub nodes: usize,
    /// Interpolation points λ.
    pub lambda: usize,
    /// Oracle master seed (population + engine).
    pub seed: u64,
    /// Peers sampled for Err_a.
    pub sample_peers: usize,
    /// Expected verdict.
    pub verdict: Verdict,
    /// Expected violation detail (0.0 for clear entries).
    pub detail: f64,
    /// Expected bit-exact run fingerprint.
    pub fingerprint: u64,
    /// The scenario itself.
    pub scenario: FaultScenario,
}

impl CorpusEntry {
    /// Serialises the entry as pretty-stable compact JSON.
    pub fn to_json(&self) -> String {
        Value::Object(vec![
            ("name".to_string(), Value::String(self.name.clone())),
            (
                "config".to_string(),
                Value::String(self.config.as_str().to_string()),
            ),
            ("nodes".to_string(), Value::Uint(self.nodes as u64)),
            ("lambda".to_string(), Value::Uint(self.lambda as u64)),
            ("seed".to_string(), Value::Uint(self.seed)),
            (
                "sample_peers".to_string(),
                Value::Uint(self.sample_peers as u64),
            ),
            (
                "verdict".to_string(),
                Value::String(self.verdict.as_str().to_string()),
            ),
            ("detail".to_string(), Value::Number(self.detail)),
            ("fingerprint".to_string(), Value::Uint(self.fingerprint)),
            ("scenario".to_string(), self.scenario.to_json_value()),
        ])
        .to_json()
    }

    /// Strict decode; any malformed field is an error, never a panic.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = json::parse(text).map_err(|e| e.to_string())?;
        let pairs = value.as_object().ok_or("corpus entry must be an object")?;
        const ALLOWED: [&str; 10] = [
            "name",
            "config",
            "nodes",
            "lambda",
            "seed",
            "sample_peers",
            "verdict",
            "detail",
            "fingerprint",
            "scenario",
        ];
        for (key, _) in pairs {
            if !ALLOWED.contains(&key.as_str()) {
                return Err(format!("unknown corpus field `{key}`"));
            }
        }
        let get_str = |key: &str| {
            value
                .get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("missing or non-string field `{key}`"))
        };
        let get_u64 = |key: &str| {
            value
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing or non-integer field `{key}`"))
        };
        let config = ConfigKind::from_str(get_str("config")?)
            .ok_or_else(|| "unknown config kind".to_string())?;
        let verdict =
            Verdict::from_str(get_str("verdict")?).ok_or_else(|| "unknown verdict".to_string())?;
        let detail = value
            .get("detail")
            .and_then(Value::as_f64)
            .ok_or("missing or non-number field `detail`")?;
        let scenario_value = value.get("scenario").ok_or("missing field `scenario`")?;
        let scenario = FaultScenario::from_json_value(scenario_value).map_err(|e| e.to_string())?;
        let nodes = usize::try_from(get_u64("nodes")?).map_err(|e| e.to_string())?;
        if nodes == 0 {
            return Err("`nodes` must be positive".to_string());
        }
        let lambda = usize::try_from(get_u64("lambda")?).map_err(|e| e.to_string())?;
        if lambda == 0 {
            return Err("`lambda` must be positive".to_string());
        }
        Ok(Self {
            name: get_str("name")?.to_string(),
            config,
            nodes,
            lambda,
            seed: get_u64("seed")?,
            sample_peers: usize::try_from(get_u64("sample_peers")?).map_err(|e| e.to_string())?,
            verdict,
            detail,
            fingerprint: get_u64("fingerprint")?,
            scenario,
        })
    }

    /// The oracle parameters this entry must be judged under.
    pub fn oracle_config(&self) -> OracleConfig {
        OracleConfig {
            kind: self.config,
            nodes: self.nodes,
            lambda: self.lambda,
            seed: self.seed,
            sample_peers: self.sample_peers,
        }
    }
}

/// Loads every `*.json` file in `dir`, sorted by file name. A file that
/// fails to decode fails the whole load with its path in the error.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut entries = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let entry =
            CorpusEntry::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        entries.push(entry);
    }
    Ok(entries)
}

/// One entry's replay result.
#[derive(Debug)]
pub struct ReplayResult {
    pub name: String,
    pub expected: Verdict,
    pub got: Verdict,
    pub fingerprint_matched: bool,
}

impl ReplayResult {
    pub fn ok(&self) -> bool {
        self.expected == self.got && self.fingerprint_matched
    }
}

/// Replays `entries`, sharing one oracle (and its fault-free baseline)
/// across entries with identical oracle parameters.
pub fn replay(entries: &[CorpusEntry]) -> Vec<ReplayResult> {
    let mut results = Vec::with_capacity(entries.len());
    let mut cached: Option<(OracleConfig, Oracle)> = None;
    let mut sorted: Vec<&CorpusEntry> = entries.iter().collect();
    // Group equal-oracle entries together so the cache hits.
    sorted.sort_by_key(|e| {
        (
            e.config.as_str(),
            e.nodes,
            e.lambda,
            e.seed,
            e.sample_peers,
            e.name.clone(),
        )
    });
    for entry in sorted {
        let wanted = entry.oracle_config();
        let reuse = cached.as_ref().is_some_and(|(c, _)| {
            c.kind == wanted.kind
                && c.nodes == wanted.nodes
                && c.lambda == wanted.lambda
                && c.seed == wanted.seed
                && c.sample_peers == wanted.sample_peers
        });
        if !reuse {
            cached = Some((wanted, Oracle::new(wanted)));
        }
        let oracle = &cached.as_ref().expect("just cached").1;
        let outcome = oracle.run(&entry.scenario);
        results.push(ReplayResult {
            name: entry.name.clone(),
            expected: entry.verdict,
            got: outcome.verdict,
            fingerprint_matched: outcome.fingerprint == entry.fingerprint,
        });
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> CorpusEntry {
        CorpusEntry {
            name: "burst20".to_string(),
            config: ConfigKind::Vanilla,
            nodes: 400,
            lambda: 20,
            seed: 42,
            sample_peers: 100,
            verdict: Verdict::MassLeakage,
            detail: -0.045,
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            scenario: FaultScenario::new(7).with_burst_loss(5, 15, 0.2),
        }
    }

    #[test]
    fn entry_round_trips() {
        let e = entry();
        let text = e.to_json();
        let back = CorpusEntry::from_json(&text).expect("round trip");
        assert_eq!(back, e);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn strict_decode_rejects_bad_entries() {
        let good = entry().to_json();
        for bad in [
            good.replace("\"nodes\":400", "\"nodes\":0"),
            good.replace("\"verdict\":\"mass_leakage\"", "\"verdict\":\"nope\""),
            good.replace("\"config\":\"vanilla\"", "\"config\":\"debug\""),
            good.replace("\"name\"", "\"nome\""),
            good.replace("\"seed\":42", "\"seed\":-1"),
            "not json".to_string(),
            "{}".to_string(),
        ] {
            assert!(CorpusEntry::from_json(&bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn load_dir_reports_broken_files_by_path() {
        let dir = std::env::temp_dir().join("adam2-explore-corpus-test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("good.json"), entry().to_json()).unwrap();
        fs::write(dir.join("ignored.txt"), "not a corpus file").unwrap();
        assert_eq!(load_dir(&dir).unwrap().len(), 1);
        fs::write(dir.join("broken.json"), "{oops").unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert!(err.contains("broken.json"), "error names the file: {err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
