//! Weighted mutation tables over [`FaultScenario`]s.
//!
//! Every mutation stays inside a bounded *envelope* chosen so that (a)
//! [`FaultScenario::validate`] always passes — the campaign never wastes
//! a run on an unrunnable scenario — and (b) the hardened configuration
//! is expected to survive the whole envelope, so a hardened campaign
//! reporting zero violations is a meaningful claim about a calibrated
//! space rather than an artifact of unwinnable inputs. The bounds:
//!
//! * Fault windows live inside the instance's 35 rounds, ending by round
//!   30 (adversary windows may cover the settle tail, like
//!   `bench_byzantine`'s do).
//! * Loss/duplication rates stay in `[0.05, 0.5]` — above 50% burst loss
//!   even repaired exchanges stall for the window's duration.
//! * At most one crash wave (fraction ≤ 0.2) so recovered-node bootstrap
//!   has partners left, and at most one adversary window (fraction ≤
//!   0.15 < the robust merge's breakdown point) with lie magnitudes ≥ 2
//!   so the lies are implausible enough for the robust screen — both
//!   mirror the calibrated `bench_byzantine` operating points.
//! * At most one attribute-drift window, with per-model magnitudes kept
//!   small relative to the ~8000-unit RAM attribute domain (see
//!   [`RAMP_RANGE`]/[`SHIFT_RANGE`]/[`SIGMA_RANGE`]/[`REPLACE_RANGE`]) so
//!   a single instance judged against its enrolment-time truth stays in
//!   the Err_a regression band; tracking *large* drifts is the streaming
//!   subsystem's job (`adam2-stream`), not a single instance's.
//!
//! The table is *adaptive*: [`Mutator::reward`] bumps the weight of an
//! operator whose output reached novel coverage, so the campaign drifts
//! toward the operators that are still finding new behaviour (the
//! beacon-explore weight-table scheme).

use adam2_sim::{AdversaryModel, DriftModel, FaultEvent, FaultScenario, PartitionKind};
use rand::rngs::StdRng;
use rand::RngExt as _;

/// Maximum events per scenario; `Add*` on a full scenario evicts a
/// random event first.
pub const MAX_EVENTS: usize = 6;
/// Last round a (non-adversary) fault window may touch.
pub const MAX_FAULT_ROUND: u64 = 30;
/// Last round an adversary window may touch (covers the settle tail).
pub const MAX_ADVERSARY_ROUND: u64 = 38;
/// Loss/duplication rate envelope.
pub const RATE_RANGE: (f64, f64) = (0.05, 0.5);
/// Crash-wave fraction envelope (single wave).
pub const CRASH_RANGE: (f64, f64) = (0.02, 0.2);
/// Byzantine fraction envelope.
pub const ADVERSARY_RANGE: (f64, f64) = (0.02, 0.15);
/// Poison magnitude envelope (≥ 2 keeps lies outside the plausible
/// band the robust screen admits).
pub const MAGNITUDE_RANGE: (f64, f64) = (2.0, 5.0);
/// Weight-inflation factor envelope.
pub const FACTOR_RANGE: (f64, f64) = (2.0, 8.0);
/// Linear-ramp drift envelope in attribute units per round. The oracle
/// population's RAM attribute spans ~8000 units, so a full-envelope ramp
/// over a 10-round window moves the truth by ≤ 2.5% of the domain —
/// enough to exercise the drift paths, small enough that Err_a against
/// the enrolment-time truth stays inside the regression band (the
/// streaming subsystem, not a single instance, owns larger drifts).
pub const RAMP_RANGE: (f64, f64) = (1.0, 20.0);
/// Step-drift shift envelope in attribute units (same domain argument).
pub const SHIFT_RANGE: (f64, f64) = (50.0, 500.0);
/// Per-node jitter half-width envelope (zero-mean, so the population
/// CDF barely moves even at the top of the range).
pub const SIGMA_RANGE: (f64, f64) = (5.0, 100.0);
/// Population-replacement rate envelope (redraws are from the same
/// source distribution, so the truth is stable by construction).
pub const REPLACE_RANGE: (f64, f64) = (0.01, 0.1);

const OP_NAMES: [&str; 13] = [
    "add_burst",
    "add_partition",
    "add_crash",
    "add_delay",
    "add_duplicate",
    "add_adversary",
    "add_drift",
    "remove_event",
    "widen_window",
    "shift_window",
    "scale_up",
    "scale_down",
    "reseed",
];

/// Adaptive weighted mutation table.
#[derive(Debug, Clone)]
pub struct Mutator {
    weights: [f64; OP_NAMES.len()],
}

impl Default for Mutator {
    fn default() -> Self {
        Self::new()
    }
}

impl Mutator {
    pub fn new() -> Self {
        Self {
            weights: [1.0; OP_NAMES.len()],
        }
    }

    /// Operator names, index-aligned with [`Mutator::mutate`]'s returned
    /// op index and [`Mutator::weights`].
    pub fn op_names() -> &'static [&'static str] {
        &OP_NAMES
    }

    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Rewards `op` for reaching novel coverage (bounded so no operator
    /// monopolises the table).
    pub fn reward(&mut self, op: usize) {
        self.weights[op] = (self.weights[op] + 0.5).min(8.0);
    }

    /// Produces one mutated child of `scenario`. Deterministic in the
    /// RNG state; the output always passes `validate()`.
    pub fn mutate(&self, scenario: &FaultScenario, rng: &mut StdRng) -> (FaultScenario, usize) {
        let op = self.pick_op(rng);
        let mut out = scenario.clone();
        match op {
            0 => add_event(&mut out, gen_burst(rng), rng),
            1 => add_event(&mut out, gen_partition(rng), rng),
            2 => {
                // Single crash wave: replace any existing one.
                out.events
                    .retain(|e| !matches!(e, FaultEvent::CrashRecover { .. }));
                add_event(&mut out, gen_crash(rng), rng);
            }
            3 => add_event(&mut out, gen_delay(rng), rng),
            4 => add_event(&mut out, gen_duplicate(rng), rng),
            5 => {
                // Single adversary window: replace any existing one.
                out.events
                    .retain(|e| !matches!(e, FaultEvent::Adversary { .. }));
                add_event(&mut out, gen_adversary(rng), rng);
            }
            6 => {
                // Single drift window: replace any existing one, so the
                // calibrated per-model envelope bounds the total drift.
                out.events
                    .retain(|e| !matches!(e, FaultEvent::Drift { .. }));
                add_event(&mut out, gen_drift(rng), rng);
            }
            7 => {
                if out.events.is_empty() {
                    reseed(&mut out, rng);
                } else {
                    let idx = rng.random_range(0..out.events.len());
                    out.events.remove(idx);
                }
            }
            8 => with_random_event(&mut out, rng, widen_window),
            9 => with_random_event(&mut out, rng, shift_window),
            10 => with_random_event(&mut out, rng, |e, r| scale_event(e, r, 1.5)),
            11 => with_random_event(&mut out, rng, |e, r| scale_event(e, r, 0.5)),
            _ => reseed(&mut out, rng),
        }
        debug_assert!(out.validate().is_ok(), "mutator produced {out:?}");
        (out, op)
    }

    fn pick_op(&self, rng: &mut StdRng) -> usize {
        let total: f64 = self.weights.iter().sum();
        let mut x = rng.random::<f64>() * total;
        for (i, w) in self.weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        self.weights.len() - 1
    }
}

fn reseed(scenario: &mut FaultScenario, rng: &mut StdRng) {
    scenario.seed = rng.random::<u64>();
}

fn add_event(scenario: &mut FaultScenario, event: FaultEvent, rng: &mut StdRng) {
    if scenario.events.len() >= MAX_EVENTS {
        let idx = rng.random_range(0..scenario.events.len());
        scenario.events.remove(idx);
    }
    scenario.events.push(event);
}

fn with_random_event(
    scenario: &mut FaultScenario,
    rng: &mut StdRng,
    apply: impl FnOnce(&mut FaultEvent, &mut StdRng),
) {
    if scenario.events.is_empty() {
        reseed(scenario, rng);
        return;
    }
    let idx = rng.random_range(0..scenario.events.len());
    apply(&mut scenario.events[idx], rng);
}

/// Draws a window `[from, from + len)` with `len ∈ [1, max_len]` ending
/// by `max_end`.
fn gen_window(rng: &mut StdRng, max_len: u64, max_end: u64) -> (u64, u64) {
    let len = rng.random_range(1..=max_len);
    let from = rng.random_range(0..=(max_end - len));
    (from, from + len)
}

fn gen_burst(rng: &mut StdRng) -> FaultEvent {
    let (from_round, to_round) = gen_window(rng, 10, MAX_FAULT_ROUND);
    FaultEvent::BurstLoss {
        from_round,
        to_round,
        loss_rate: rng.random_range(RATE_RANGE.0..=RATE_RANGE.1),
    }
}

fn gen_partition(rng: &mut StdRng) -> FaultEvent {
    let (from_round, to_round) = gen_window(rng, 8, 22);
    let kind = if rng.random_bool(0.5) {
        PartitionKind::Bisect
    } else {
        PartitionKind::Islands(rng.random_range(2..=8u32))
    };
    FaultEvent::Partition {
        from_round,
        to_round,
        kind,
    }
}

fn gen_crash(rng: &mut StdRng) -> FaultEvent {
    let at_round = rng.random_range(1..=18u64);
    let gap = rng.random_range(2..=10u64);
    FaultEvent::CrashRecover {
        at_round,
        recover_round: at_round + gap,
        fraction: rng.random_range(CRASH_RANGE.0..=CRASH_RANGE.1),
    }
}

fn gen_delay(rng: &mut StdRng) -> FaultEvent {
    let (from_round, to_round) = gen_window(rng, 10, MAX_FAULT_ROUND);
    FaultEvent::Delay {
        from_round,
        to_round,
        extra_ticks: rng.random_range(5..=40u64),
    }
}

fn gen_duplicate(rng: &mut StdRng) -> FaultEvent {
    let (from_round, to_round) = gen_window(rng, 10, MAX_FAULT_ROUND);
    FaultEvent::Duplicate {
        from_round,
        to_round,
        rate: rng.random_range(RATE_RANGE.0..=RATE_RANGE.1),
    }
}

fn gen_adversary(rng: &mut StdRng) -> FaultEvent {
    let from_round = rng.random_range(0..=10u64);
    let to_round = rng.random_range(25..=MAX_ADVERSARY_ROUND);
    let model = match rng.random_range(0..4u32) {
        0 => AdversaryModel::ValuePoisoning {
            magnitude: rng.random_range(MAGNITUDE_RANGE.0..=MAGNITUDE_RANGE.1),
        },
        1 => AdversaryModel::WeightInflation {
            factor: rng.random_range(FACTOR_RANGE.0..=FACTOR_RANGE.1),
        },
        2 => AdversaryModel::TargetedPartner {
            magnitude: rng.random_range(MAGNITUDE_RANGE.0..=MAGNITUDE_RANGE.1),
        },
        _ => AdversaryModel::Equivocation {
            magnitude: rng.random_range(MAGNITUDE_RANGE.0..=MAGNITUDE_RANGE.1),
        },
    };
    FaultEvent::Adversary {
        from_round,
        to_round,
        fraction: rng.random_range(ADVERSARY_RANGE.0..=ADVERSARY_RANGE.1),
        model,
    }
}

fn gen_drift(rng: &mut StdRng) -> FaultEvent {
    let (from_round, to_round) = gen_window(rng, 10, MAX_FAULT_ROUND);
    let model = match rng.random_range(0..4u32) {
        0 => DriftModel::LinearRamp {
            per_round: rng.random_range(RAMP_RANGE.0..=RAMP_RANGE.1),
        },
        1 => DriftModel::Step {
            shift: rng.random_range(SHIFT_RANGE.0..=SHIFT_RANGE.1),
        },
        2 => DriftModel::Jitter {
            sigma: rng.random_range(SIGMA_RANGE.0..=SIGMA_RANGE.1),
        },
        _ => DriftModel::Replacement {
            rate: rng.random_range(REPLACE_RANGE.0..=REPLACE_RANGE.1),
        },
    };
    FaultEvent::Drift {
        from_round,
        to_round,
        model,
    }
}

/// Extends an event's window end by 1–3 rounds, staying inside the
/// axis's envelope (no-op when already at the edge).
fn widen_window(event: &mut FaultEvent, rng: &mut StdRng) {
    let extra = rng.random_range(1..=3u64);
    match event {
        FaultEvent::BurstLoss {
            from_round,
            to_round,
            ..
        }
        | FaultEvent::Delay {
            from_round,
            to_round,
            ..
        }
        | FaultEvent::Duplicate {
            from_round,
            to_round,
            ..
        }
        | FaultEvent::Drift {
            from_round,
            to_round,
            ..
        } => {
            *to_round = (*to_round + extra)
                .min(MAX_FAULT_ROUND)
                .min(*from_round + 10);
        }
        FaultEvent::Partition {
            from_round,
            to_round,
            ..
        } => {
            *to_round = (*to_round + extra).min(22).min(*from_round + 8);
        }
        FaultEvent::CrashRecover {
            at_round,
            recover_round,
            ..
        } => {
            *recover_round = (*recover_round + extra).min(28).min(*at_round + 10);
        }
        FaultEvent::Adversary { to_round, .. } => {
            *to_round = (*to_round + extra).min(MAX_ADVERSARY_ROUND);
        }
    }
}

/// Translates an event's window by −3…+3 rounds, preserving its length
/// and clamping to the axis envelope.
fn shift_window(event: &mut FaultEvent, rng: &mut StdRng) {
    let delta = rng.random_range(-3..=3i64);
    let shift = |from: u64, to: u64, min_from: u64, max_end: u64| {
        let len = to - from;
        let shifted = (from as i64 + delta).max(min_from as i64) as u64;
        let from = shifted.min(max_end - len);
        (from, from + len)
    };
    match event {
        FaultEvent::BurstLoss {
            from_round,
            to_round,
            ..
        }
        | FaultEvent::Delay {
            from_round,
            to_round,
            ..
        }
        | FaultEvent::Duplicate {
            from_round,
            to_round,
            ..
        }
        | FaultEvent::Drift {
            from_round,
            to_round,
            ..
        } => {
            (*from_round, *to_round) = shift(*from_round, *to_round, 0, MAX_FAULT_ROUND);
        }
        FaultEvent::Partition {
            from_round,
            to_round,
            ..
        } => {
            (*from_round, *to_round) = shift(*from_round, *to_round, 0, 22);
        }
        FaultEvent::CrashRecover {
            at_round,
            recover_round,
            ..
        } => {
            (*at_round, *recover_round) = shift(*at_round, *recover_round, 1, 28);
        }
        FaultEvent::Adversary {
            from_round,
            to_round,
            ..
        } => {
            (*from_round, *to_round) = shift(*from_round, *to_round, 0, MAX_ADVERSARY_ROUND);
        }
    }
}

/// Scales an event's main intensity knob by `factor`, clamped to the
/// axis envelope. Partition events rescale the island count instead.
fn scale_event(event: &mut FaultEvent, rng: &mut StdRng, factor: f64) {
    let clamp = |v: f64, range: (f64, f64)| (v * factor).clamp(range.0, range.1);
    match event {
        FaultEvent::BurstLoss { loss_rate, .. } => *loss_rate = clamp(*loss_rate, RATE_RANGE),
        FaultEvent::Duplicate { rate, .. } => *rate = clamp(*rate, RATE_RANGE),
        FaultEvent::CrashRecover { fraction, .. } => *fraction = clamp(*fraction, CRASH_RANGE),
        FaultEvent::Delay { extra_ticks, .. } => {
            *extra_ticks = ((*extra_ticks as f64 * factor) as u64).clamp(5, 40);
        }
        FaultEvent::Partition { kind, .. } => {
            let groups = match *kind {
                PartitionKind::Bisect => 2,
                PartitionKind::Islands(k) => k,
            };
            let scaled = ((f64::from(groups) * factor) as u32).clamp(2, 8);
            *kind = if scaled == 2 && rng.random_bool(0.5) {
                PartitionKind::Bisect
            } else {
                PartitionKind::Islands(scaled)
            };
        }
        FaultEvent::Adversary {
            fraction, model, ..
        } => {
            if rng.random_bool(0.5) {
                *fraction = clamp(*fraction, ADVERSARY_RANGE);
            } else {
                match model {
                    AdversaryModel::ValuePoisoning { magnitude }
                    | AdversaryModel::TargetedPartner { magnitude }
                    | AdversaryModel::Equivocation { magnitude } => {
                        *magnitude = clamp(*magnitude, MAGNITUDE_RANGE);
                    }
                    AdversaryModel::WeightInflation { factor: f } => {
                        *f = clamp(*f, FACTOR_RANGE);
                    }
                }
            }
        }
        FaultEvent::Drift { model, .. } => match model {
            DriftModel::LinearRamp { per_round } => *per_round = clamp(*per_round, RAMP_RANGE),
            DriftModel::Step { shift } => *shift = clamp(*shift, SHIFT_RANGE),
            DriftModel::Jitter { sigma } => *sigma = clamp(*sigma, SIGMA_RANGE),
            DriftModel::Replacement { rate } => *rate = clamp(*rate, REPLACE_RANGE),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adam2_sim::seeded_rng;

    fn deep_mutate(seed: u64, steps: usize) -> FaultScenario {
        let mutator = Mutator::new();
        let mut rng = seeded_rng(seed);
        let mut sc = FaultScenario::new(1);
        for _ in 0..steps {
            sc = mutator.mutate(&sc, &mut rng).0;
        }
        sc
    }

    #[test]
    fn mutation_is_deterministic_under_fixed_seed() {
        for seed in 0..20 {
            assert_eq!(deep_mutate(seed, 40), deep_mutate(seed, 40));
        }
    }

    #[test]
    fn mutated_scenarios_always_validate() {
        for seed in 0..50 {
            let sc = deep_mutate(seed, 60);
            sc.validate().expect("mutated scenario validates");
            assert!(sc.events.len() <= MAX_EVENTS);
        }
    }

    #[test]
    fn envelope_respected_after_deep_mutation() {
        for seed in 0..50 {
            let sc = deep_mutate(seed, 60);
            let mut crash_events = 0;
            let mut adversary_events = 0;
            let mut drift_events = 0;
            for event in &sc.events {
                match *event {
                    FaultEvent::BurstLoss {
                        to_round,
                        loss_rate,
                        ..
                    } => {
                        assert!(to_round <= MAX_FAULT_ROUND);
                        assert!((RATE_RANGE.0..=RATE_RANGE.1).contains(&loss_rate));
                    }
                    FaultEvent::Partition { to_round, kind, .. } => {
                        assert!(to_round <= 22);
                        assert!((2..=8).contains(&kind.groups()));
                    }
                    FaultEvent::CrashRecover {
                        recover_round,
                        fraction,
                        ..
                    } => {
                        crash_events += 1;
                        assert!(recover_round <= 28);
                        assert!((CRASH_RANGE.0..=CRASH_RANGE.1).contains(&fraction));
                    }
                    FaultEvent::Delay {
                        to_round,
                        extra_ticks,
                        ..
                    } => {
                        assert!(to_round <= MAX_FAULT_ROUND);
                        assert!((5..=40).contains(&extra_ticks));
                    }
                    FaultEvent::Duplicate { to_round, rate, .. } => {
                        assert!(to_round <= MAX_FAULT_ROUND);
                        assert!((RATE_RANGE.0..=RATE_RANGE.1).contains(&rate));
                    }
                    FaultEvent::Adversary {
                        to_round,
                        fraction,
                        ref model,
                        ..
                    } => {
                        adversary_events += 1;
                        assert!(to_round <= MAX_ADVERSARY_ROUND);
                        assert!((ADVERSARY_RANGE.0..=ADVERSARY_RANGE.1).contains(&fraction));
                        match *model {
                            AdversaryModel::WeightInflation { factor } => {
                                assert!((FACTOR_RANGE.0..=FACTOR_RANGE.1).contains(&factor));
                            }
                            AdversaryModel::ValuePoisoning { magnitude }
                            | AdversaryModel::TargetedPartner { magnitude }
                            | AdversaryModel::Equivocation { magnitude } => {
                                assert!(
                                    (MAGNITUDE_RANGE.0..=MAGNITUDE_RANGE.1).contains(&magnitude)
                                );
                            }
                        }
                    }
                    FaultEvent::Drift {
                        to_round,
                        ref model,
                        ..
                    } => {
                        drift_events += 1;
                        assert!(to_round <= MAX_FAULT_ROUND);
                        match *model {
                            DriftModel::LinearRamp { per_round } => {
                                assert!((RAMP_RANGE.0..=RAMP_RANGE.1).contains(&per_round));
                            }
                            DriftModel::Step { shift } => {
                                assert!((SHIFT_RANGE.0..=SHIFT_RANGE.1).contains(&shift));
                            }
                            DriftModel::Jitter { sigma } => {
                                assert!((SIGMA_RANGE.0..=SIGMA_RANGE.1).contains(&sigma));
                            }
                            DriftModel::Replacement { rate } => {
                                assert!((REPLACE_RANGE.0..=REPLACE_RANGE.1).contains(&rate));
                            }
                        }
                    }
                }
            }
            assert!(crash_events <= 1, "at most one crash wave");
            assert!(adversary_events <= 1, "at most one adversary window");
            assert!(drift_events <= 1, "at most one drift window");
        }
    }

    #[test]
    fn every_operator_reachable_and_valid() {
        // Drive each op directly by skewing the table to a single op.
        let mut rng = seeded_rng(9);
        let base = deep_mutate(3, 20);
        for op in 0..OP_NAMES.len() {
            let mut mutator = Mutator::new();
            mutator.weights = [0.0; OP_NAMES.len()];
            mutator.weights[op] = 1.0;
            for _ in 0..20 {
                let (sc, picked) = mutator.mutate(&base, &mut rng);
                assert_eq!(picked, op);
                sc.validate().expect("valid under forced op");
            }
        }
    }

    #[test]
    fn rewards_shift_the_table() {
        let mut mutator = Mutator::new();
        for _ in 0..4 {
            mutator.reward(2);
        }
        assert!(mutator.weights()[2] > mutator.weights()[0]);
        // Bounded: rewards saturate.
        for _ in 0..100 {
            mutator.reward(2);
        }
        assert!(mutator.weights()[2] <= 8.0);
    }
}
