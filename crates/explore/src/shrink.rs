//! Delta-debugging shrinker: reduce a violating scenario to a minimal
//! form that still violates the *same* invariant.
//!
//! Candidate reductions, tried greedily to a fixpoint under a run
//! budget:
//!
//! 1. drop one fault event entirely (fewer active fault axes),
//! 2. halve one event's window length,
//! 3. halve one event's intensity (rate / fraction / magnitude / ticks).
//!
//! A candidate is accepted when the oracle returns the same verdict
//! kind; the first accepted candidate restarts the scan (classic ddmin
//! greedy descent). Deterministic: candidates are generated in a fixed
//! order and the oracle itself is deterministic. The population size is
//! fixed per campaign — the corpus entry records it — so "shrink N" is
//! the replayer's job, not the shrinker's.

use adam2_sim::{FaultEvent, FaultScenario};

use crate::oracle::{Oracle, RunOutcome};

/// Result of shrinking one violation.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimal still-violating scenario.
    pub scenario: FaultScenario,
    /// The oracle outcome of the minimal scenario.
    pub outcome: RunOutcome,
    /// Oracle runs spent shrinking.
    pub runs: usize,
}

/// Halves a window `[from, to)` (length ≥ 1 preserved); `None` when the
/// window is already minimal.
fn halve_window(from: u64, to: u64) -> Option<u64> {
    let len = to - from;
    (len >= 2).then(|| from + len / 2)
}

/// Halves an event's intensity; `None` when already below the point
/// where halving again is meaningful.
fn halve_intensity(event: &FaultEvent) -> Option<FaultEvent> {
    let mut out = *event;
    match &mut out {
        FaultEvent::BurstLoss { loss_rate, .. } => {
            if *loss_rate < 0.02 {
                return None;
            }
            *loss_rate /= 2.0;
        }
        FaultEvent::Duplicate { rate, .. } => {
            if *rate < 0.02 {
                return None;
            }
            *rate /= 2.0;
        }
        FaultEvent::CrashRecover { fraction, .. } => {
            if *fraction < 0.02 {
                return None;
            }
            *fraction /= 2.0;
        }
        FaultEvent::Delay { extra_ticks, .. } => {
            if *extra_ticks < 2 {
                return None;
            }
            *extra_ticks /= 2;
        }
        FaultEvent::Adversary {
            fraction, model, ..
        } => {
            if *fraction >= 0.02 {
                *fraction /= 2.0;
            } else {
                use adam2_sim::AdversaryModel::*;
                match model {
                    ValuePoisoning { magnitude }
                    | TargetedPartner { magnitude }
                    | Equivocation { magnitude } => {
                        if *magnitude < 2.0 {
                            return None;
                        }
                        *magnitude /= 2.0;
                    }
                    WeightInflation { factor } => {
                        if *factor < 2.0 {
                            return None;
                        }
                        *factor /= 2.0;
                    }
                }
            }
        }
        FaultEvent::Drift { model, .. } => {
            use adam2_sim::DriftModel::*;
            match model {
                LinearRamp { per_round } => {
                    if per_round.abs() < 1.0 {
                        return None;
                    }
                    *per_round /= 2.0;
                }
                Step { shift } => {
                    if shift.abs() < 1.0 {
                        return None;
                    }
                    *shift /= 2.0;
                }
                Jitter { sigma } => {
                    if *sigma < 1.0 {
                        return None;
                    }
                    *sigma /= 2.0;
                }
                Replacement { rate } => {
                    if *rate < 0.02 {
                        return None;
                    }
                    *rate /= 2.0;
                }
            }
        }
        FaultEvent::Partition { .. } => return None,
    }
    Some(out)
}

/// All one-step reductions of `scenario`, in deterministic order.
fn candidates(scenario: &FaultScenario) -> Vec<FaultScenario> {
    let mut out = Vec::new();
    // Drop each event (most aggressive first: it removes a whole axis).
    for idx in 0..scenario.events.len() {
        let mut sc = scenario.clone();
        sc.events.remove(idx);
        out.push(sc);
    }
    // Halve each window.
    for idx in 0..scenario.events.len() {
        let halved = match scenario.events[idx] {
            FaultEvent::BurstLoss {
                from_round,
                to_round,
                ..
            }
            | FaultEvent::Partition {
                from_round,
                to_round,
                ..
            }
            | FaultEvent::Delay {
                from_round,
                to_round,
                ..
            }
            | FaultEvent::Duplicate {
                from_round,
                to_round,
                ..
            }
            | FaultEvent::Adversary {
                from_round,
                to_round,
                ..
            }
            | FaultEvent::Drift {
                from_round,
                to_round,
                ..
            } => halve_window(from_round, to_round),
            FaultEvent::CrashRecover {
                at_round,
                recover_round,
                ..
            } => {
                // Keep the crash–recover gap ≥ 1 (validate requires
                // recover > at).
                let new = at_round + (recover_round - at_round) / 2;
                (new > at_round && new < recover_round).then_some(new)
            }
        };
        if let Some(new_end) = halved {
            let mut sc = scenario.clone();
            match &mut sc.events[idx] {
                FaultEvent::BurstLoss { to_round, .. }
                | FaultEvent::Partition { to_round, .. }
                | FaultEvent::Delay { to_round, .. }
                | FaultEvent::Duplicate { to_round, .. }
                | FaultEvent::Adversary { to_round, .. }
                | FaultEvent::Drift { to_round, .. } => *to_round = new_end,
                FaultEvent::CrashRecover { recover_round, .. } => *recover_round = new_end,
            }
            out.push(sc);
        }
    }
    // Halve each intensity.
    for idx in 0..scenario.events.len() {
        if let Some(event) = halve_intensity(&scenario.events[idx]) {
            let mut sc = scenario.clone();
            sc.events[idx] = event;
            out.push(sc);
        }
    }
    out.retain(|sc| sc.validate().is_ok());
    out
}

/// Greedily shrinks `scenario` (whose judged outcome is `outcome`) under
/// a budget of at most `budget` oracle runs.
pub fn shrink(
    oracle: &Oracle,
    scenario: &FaultScenario,
    outcome: &RunOutcome,
    budget: usize,
) -> ShrinkOutcome {
    let mut current = scenario.clone();
    let mut current_outcome = outcome.clone();
    let mut runs = 0;
    'descent: while runs < budget {
        for candidate in candidates(&current) {
            if runs >= budget {
                break 'descent;
            }
            runs += 1;
            let judged = oracle.run(&candidate);
            if judged.verdict == current_outcome.verdict {
                current = candidate;
                current_outcome = judged;
                continue 'descent;
            }
        }
        break; // fixpoint: no candidate preserved the violation
    }
    ShrinkOutcome {
        scenario: current,
        outcome: current_outcome,
        runs,
    }
}

/// True when `minimal` is strictly smaller than `first`: fewer events,
/// or equal events with at least one window/intensity strictly reduced
/// and none increased.
pub fn strictly_smaller(first: &FaultScenario, minimal: &FaultScenario) -> bool {
    if minimal.events.len() < first.events.len() {
        return true;
    }
    if minimal.events.len() != first.events.len() {
        return false;
    }
    fn measures(event: &FaultEvent) -> (u64, f64) {
        match *event {
            FaultEvent::BurstLoss {
                from_round,
                to_round,
                loss_rate,
            } => (to_round - from_round, loss_rate),
            FaultEvent::Partition {
                from_round,
                to_round,
                ..
            } => (to_round - from_round, 0.0),
            FaultEvent::CrashRecover {
                at_round,
                recover_round,
                fraction,
            } => (recover_round - at_round, fraction),
            FaultEvent::Delay {
                from_round,
                to_round,
                extra_ticks,
            } => (to_round - from_round, extra_ticks as f64),
            FaultEvent::Duplicate {
                from_round,
                to_round,
                rate,
            } => (to_round - from_round, rate),
            FaultEvent::Adversary {
                from_round,
                to_round,
                fraction,
                ref model,
            } => {
                let lie = match *model {
                    adam2_sim::AdversaryModel::ValuePoisoning { magnitude }
                    | adam2_sim::AdversaryModel::TargetedPartner { magnitude }
                    | adam2_sim::AdversaryModel::Equivocation { magnitude } => magnitude,
                    adam2_sim::AdversaryModel::WeightInflation { factor } => factor,
                };
                (to_round - from_round, fraction + lie)
            }
            FaultEvent::Drift {
                from_round,
                to_round,
                ref model,
            } => {
                let magnitude = match *model {
                    adam2_sim::DriftModel::LinearRamp { per_round } => per_round.abs(),
                    adam2_sim::DriftModel::Step { shift } => shift.abs(),
                    adam2_sim::DriftModel::Jitter { sigma } => sigma,
                    adam2_sim::DriftModel::Replacement { rate } => rate,
                };
                (to_round - from_round, magnitude)
            }
        }
    }
    let mut any_smaller = false;
    for (a, b) in first.events.iter().zip(&minimal.events) {
        let (wa, ia) = measures(a);
        let (wb, ib) = measures(b);
        if wb > wa || ib > ia + 1e-12 {
            return false;
        }
        if wb < wa || ib < ia - 1e-12 {
            any_smaller = true;
        }
    }
    any_smaller
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{ConfigKind, OracleConfig};
    use adam2_sim::PartitionKind;

    #[test]
    fn candidate_generation_covers_all_reductions() {
        let sc = FaultScenario::new(1)
            .with_burst_loss(5, 15, 0.2)
            .with_partition(10, 20, PartitionKind::Bisect);
        let cands = candidates(&sc);
        // 2 drops + 2 window halvings + 1 intensity halving (partition
        // has no intensity).
        assert_eq!(cands.len(), 5);
        for c in &cands {
            c.validate().expect("candidates validate");
        }
    }

    #[test]
    fn shrinks_compound_violation_to_single_axis() {
        let oracle = Oracle::new(OracleConfig::new(ConfigKind::Vanilla).with_nodes(200));
        // Burst loss leaks mass; the partition and delay are passengers
        // the shrinker should strip away.
        let sc = FaultScenario::new(7)
            .with_burst_loss(5, 15, 0.3)
            .with_partition(10, 18, PartitionKind::Bisect)
            .with_delay(0, 9, 20);
        let outcome = oracle.run(&sc);
        assert!(outcome.verdict.is_violation(), "seed scenario violates");
        let shrunk = shrink(&oracle, &sc, &outcome, 60);
        assert_eq!(shrunk.outcome.verdict, outcome.verdict);
        assert!(
            strictly_smaller(&sc, &shrunk.scenario),
            "minimal {:?} not smaller than first {:?}",
            shrunk.scenario,
            sc
        );
        assert!(
            shrunk.scenario.events.len() < sc.events.len(),
            "passenger axes removed: {:?}",
            shrunk.scenario
        );
        assert!(shrunk.runs <= 60);
    }

    #[test]
    fn clear_scenario_budget_zero_is_identity() {
        let oracle = Oracle::new(OracleConfig::new(ConfigKind::Vanilla).with_nodes(200));
        let sc = FaultScenario::new(7).with_burst_loss(5, 15, 0.3);
        let outcome = oracle.run(&sc);
        let shrunk = shrink(&oracle, &sc, &outcome, 0);
        assert_eq!(shrunk.scenario, sc);
        assert_eq!(shrunk.runs, 0);
    }

    #[test]
    fn strictly_smaller_comparisons() {
        let base = FaultScenario::new(1).with_burst_loss(5, 15, 0.2);
        let shorter = FaultScenario::new(1).with_burst_loss(5, 10, 0.2);
        let weaker = FaultScenario::new(1).with_burst_loss(5, 15, 0.1);
        let bigger = FaultScenario::new(1).with_burst_loss(5, 15, 0.4);
        assert!(strictly_smaller(&base, &shorter));
        assert!(strictly_smaller(&base, &weaker));
        assert!(!strictly_smaller(&base, &bigger));
        assert!(!strictly_smaller(&base, &base));
        assert!(strictly_smaller(&base, &FaultScenario::new(1)));
    }
}
