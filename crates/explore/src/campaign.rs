//! The campaign scheduler: coverage-guided traversal of the fault space.
//!
//! One iteration = pick a parent from the energy-weighted pool, mutate
//! it, judge the child with the oracle, fold its features into the
//! coverage map. Novel children enter the pool with energy proportional
//! to how much coverage they added, and the operator that produced them
//! is rewarded in the mutation table. Violations are delta-debugged to
//! minimal form and recorded; the campaign can stop early after
//! `max_violations` finds.
//!
//! Everything derives from `master_seed` — per-iteration RNGs are
//! `seeded_rng(derive_seed(master_seed, ITER_STREAM + i))` — so a
//! campaign re-run with the same seed and iteration budget replays
//! bit-identically, which is what `bench_explore --check` asserts.
//!
//! Oracle runs are the campaign's entire cost, and they are judged on a
//! worker pool: iterations are scheduled in fixed batches of [`BATCH`].
//! Each batch draws its parents and mutations sequentially against the
//! pool state at batch start (pure RNG work, microseconds), judges the
//! batch's deduplicated candidates concurrently, then folds the
//! outcomes back in iteration order — coverage, operator rewards, pool
//! energy, and shrinking all stay sequential. Because the batch size is
//! a constant of the schedule and never derives from the worker count,
//! a campaign replays bit-identically under *any* `workers` setting;
//! `campaign_is_worker_count_invariant` pins that down.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use adam2_sim::{derive_seed, seeded_rng, FaultScenario};
use rand::rngs::StdRng;
use rand::RngExt as _;

use crate::coverage::{scenario_features, CoverageMap};
use crate::mutate::Mutator;
use crate::oracle::{Oracle, RunOutcome};
use crate::shrink::{shrink, ShrinkOutcome};

/// Stream tag separating campaign RNG streams from engine/fault streams.
const ITER_STREAM: u64 = 0xEC5_0000;

/// Iterations scheduled per judging batch. Part of the deterministic
/// schedule (never derived from the worker count): parents for a whole
/// batch are drawn against the pool state at batch start, so novel
/// children only earn energy at batch boundaries.
const BATCH: usize = 8;

/// One drawn batch slot: the iteration number plus, unless the child
/// deduplicated away, `(candidate, mutation op, index into the judged
/// batch)`.
type DrawnSlot = (usize, Option<(FaultScenario, usize, usize)>);

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Single seed the whole campaign derives from.
    pub master_seed: u64,
    /// Mutation iterations (an iteration that dedups to an already-run
    /// scenario costs no oracle run).
    pub iterations: usize,
    /// Oracle-run budget per shrink.
    pub shrink_budget: usize,
    /// Stop after this many violations (0 = never stop early).
    pub max_violations: usize,
    /// Worker threads judging each batch's candidates (min 1). Purely an
    /// execution knob: any value replays the identical campaign.
    pub workers: usize,
}

impl CampaignConfig {
    pub fn new(master_seed: u64) -> Self {
        Self {
            master_seed,
            iterations: 60,
            shrink_budget: 60,
            max_violations: 1,
            workers: 1,
        }
    }

    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    pub fn with_max_violations(mut self, max_violations: usize) -> Self {
        self.max_violations = max_violations;
        self
    }

    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// One violation found and shrunk.
#[derive(Debug, Clone)]
pub struct FoundViolation {
    /// Iteration that produced the first hit.
    pub iteration: usize,
    /// The first (unshrunk) violating scenario.
    pub first: FaultScenario,
    pub first_outcome: RunOutcome,
    /// The delta-debugged minimal scenario.
    pub minimal: FaultScenario,
    pub minimal_outcome: RunOutcome,
    /// Oracle runs the shrink spent.
    pub shrink_runs: usize,
}

/// What a campaign produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// Iterations actually executed (early stop truncates).
    pub iterations_run: usize,
    /// Oracle runs executed (excludes dedup hits, includes shrinking).
    pub oracle_runs: usize,
    /// Distinct coverage features reached.
    pub features: usize,
    /// Violations found, in discovery order.
    pub violations: Vec<FoundViolation>,
    /// A representative cleared scenario (the last judged non-violating
    /// candidate) for determinism checks when nothing violated.
    pub cleared: Option<(FaultScenario, RunOutcome)>,
    /// Final operator weights, name-aligned with `Mutator::op_names()`.
    pub op_weights: Vec<f64>,
}

struct PoolEntry {
    scenario: FaultScenario,
    energy: f64,
}

/// Judges `candidates` on up to `workers` threads. Results come back in
/// candidate order whatever the interleaving, and `Oracle::run` is a
/// pure function of the scenario, so the outcome vector is independent
/// of the worker count.
fn judge_batch(oracle: &Oracle, candidates: &[FaultScenario], workers: usize) -> Vec<RunOutcome> {
    let workers = workers.max(1).min(candidates.len());
    if workers <= 1 {
        return candidates.iter().map(|c| oracle.run(c)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunOutcome>>> =
        candidates.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= candidates.len() {
                    break;
                }
                let outcome = oracle.run(&candidates[idx]);
                *slots[idx].lock().expect("result slot") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every candidate judged")
        })
        .collect()
}

fn pick_parent<'a>(pool: &'a [PoolEntry], rng: &mut StdRng) -> &'a FaultScenario {
    let total: f64 = pool.iter().map(|e| e.energy).sum();
    let mut x = rng.random::<f64>() * total;
    for entry in pool {
        x -= entry.energy;
        if x < 0.0 {
            return &entry.scenario;
        }
    }
    &pool.last().expect("pool is never empty").scenario
}

/// Runs a campaign against `oracle`. `progress` is called once per
/// iteration with (iteration, coverage features, violations so far).
pub fn run_campaign(
    config: &CampaignConfig,
    oracle: &Oracle,
    mut progress: impl FnMut(usize, usize, usize),
) -> CampaignReport {
    let mut mutator = Mutator::new();
    let mut coverage = CoverageMap::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut violations: Vec<FoundViolation> = Vec::new();
    let mut cleared: Option<(FaultScenario, RunOutcome)> = None;
    let mut oracle_runs = 0usize;

    // Seed the pool and the map with the empty scenario (its features
    // are the "no faults" baseline) without spending an oracle run: the
    // oracle's own baseline already judged it.
    let root = FaultScenario::new(derive_seed(config.master_seed, ITER_STREAM));
    seen.insert(root.to_json());
    coverage.observe(scenario_features(&root));
    coverage.observe(oracle.baseline().signature.iter().copied());
    let mut pool = vec![PoolEntry {
        scenario: root,
        energy: 1.0,
    }];

    let mut iterations_run = 0usize;
    let mut batch_start = 0usize;
    'campaign: while batch_start < config.iterations {
        let batch_end = (batch_start + BATCH).min(config.iterations);

        // Draw phase (sequential): parents and mutations for the whole
        // batch, against the pool and mutation table at batch start.
        // `None` marks an iteration whose child deduplicated away.
        let mut drawn: Vec<DrawnSlot> = Vec::new();
        let mut to_judge: Vec<FaultScenario> = Vec::new();
        for iteration in batch_start..batch_end {
            let mut rng = seeded_rng(derive_seed(
                config.master_seed,
                ITER_STREAM + 1 + iteration as u64,
            ));
            let parent = pick_parent(&pool, &mut rng).clone();
            let (candidate, op) = mutator.mutate(&parent, &mut rng);
            if seen.insert(candidate.to_json()) {
                let judge_idx = to_judge.len();
                to_judge.push(candidate.clone());
                drawn.push((iteration, Some((candidate, op, judge_idx))));
            } else {
                drawn.push((iteration, None));
            }
        }

        // Judge phase: the batch's unique candidates, concurrently. The
        // whole batch is judged even if an early member turns out to
        // violate, so the run count never depends on judging order.
        let outcomes = judge_batch(oracle, &to_judge, config.workers);
        oracle_runs += to_judge.len();

        // Fold phase (sequential, iteration order): coverage, rewards,
        // pool energy, shrinking, early stop.
        for (iteration, slot) in drawn {
            iterations_run = iteration + 1;
            let Some((candidate, op, judge_idx)) = slot else {
                progress(iteration, coverage.len(), violations.len());
                continue;
            };
            let outcome = outcomes[judge_idx].clone();

            let mut features = scenario_features(&candidate);
            features.extend(outcome.signature.iter().copied());
            let novel = coverage.observe(features);
            if novel > 0 {
                mutator.reward(op);
                pool.push(PoolEntry {
                    scenario: candidate.clone(),
                    energy: 1.0 + novel as f64,
                });
            }

            if outcome.verdict.is_violation() {
                let ShrinkOutcome {
                    scenario: minimal,
                    outcome: minimal_outcome,
                    runs,
                } = shrink(oracle, &candidate, &outcome, config.shrink_budget);
                oracle_runs += runs;
                violations.push(FoundViolation {
                    iteration,
                    first: candidate,
                    first_outcome: outcome,
                    minimal,
                    minimal_outcome,
                    shrink_runs: runs,
                });
                if config.max_violations > 0 && violations.len() >= config.max_violations {
                    progress(iteration, coverage.len(), violations.len());
                    break 'campaign;
                }
            } else {
                cleared = Some((candidate, outcome));
            }
            progress(iteration, coverage.len(), violations.len());
        }
        batch_start = batch_end;
    }

    CampaignReport {
        iterations_run,
        oracle_runs,
        features: coverage.len(),
        violations,
        cleared,
        op_weights: mutator.weights().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{ConfigKind, OracleConfig, Verdict};
    use crate::shrink::strictly_smaller;

    fn oracle(kind: ConfigKind) -> Oracle {
        Oracle::new(OracleConfig::new(kind).with_nodes(200))
    }

    #[test]
    fn vanilla_campaign_finds_and_shrinks_a_violation() {
        let oracle = oracle(ConfigKind::Vanilla);
        let config = CampaignConfig::new(1234).with_iterations(40);
        let report = run_campaign(&config, &oracle, |_, _, _| {});
        assert!(
            !report.violations.is_empty(),
            "vanilla config must violate within 40 iterations (features {})",
            report.features
        );
        let v = &report.violations[0];
        assert!(v.first_outcome.verdict.is_violation());
        assert_eq!(v.minimal_outcome.verdict, v.first_outcome.verdict);
        assert!(
            v.minimal == v.first || strictly_smaller(&v.first, &v.minimal),
            "shrink never grows the scenario"
        );
        assert!(report.features > 0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let oracle = oracle(ConfigKind::Vanilla);
        let config = CampaignConfig::new(99).with_iterations(12);
        let a = run_campaign(&config, &oracle, |_, _, _| {});
        let b = run_campaign(&config, &oracle, |_, _, _| {});
        assert_eq!(a.iterations_run, b.iterations_run);
        assert_eq!(a.oracle_runs, b.oracle_runs);
        assert_eq!(a.features, b.features);
        assert_eq!(a.violations.len(), b.violations.len());
        for (va, vb) in a.violations.iter().zip(&b.violations) {
            assert_eq!(va.minimal, vb.minimal);
            assert_eq!(
                va.minimal_outcome.fingerprint,
                vb.minimal_outcome.fingerprint
            );
        }
        assert_eq!(
            a.cleared
                .as_ref()
                .map(|(sc, o)| (sc.clone(), o.fingerprint)),
            b.cleared
                .as_ref()
                .map(|(sc, o)| (sc.clone(), o.fingerprint))
        );
    }

    #[test]
    fn campaign_is_worker_count_invariant() {
        let oracle = oracle(ConfigKind::Vanilla);
        let config = CampaignConfig::new(99).with_iterations(12);
        let serial = run_campaign(&config, &oracle, |_, _, _| {});
        let pooled = run_campaign(&config.with_workers(4), &oracle, |_, _, _| {});
        assert_eq!(serial.iterations_run, pooled.iterations_run);
        assert_eq!(serial.oracle_runs, pooled.oracle_runs);
        assert_eq!(serial.features, pooled.features);
        assert_eq!(serial.op_weights, pooled.op_weights);
        assert_eq!(serial.violations.len(), pooled.violations.len());
        for (a, b) in serial.violations.iter().zip(&pooled.violations) {
            assert_eq!(a.iteration, b.iteration);
            assert_eq!(a.first, b.first);
            assert_eq!(a.minimal, b.minimal);
            assert_eq!(a.minimal_outcome.fingerprint, b.minimal_outcome.fingerprint);
            assert_eq!(a.shrink_runs, b.shrink_runs);
        }
        assert_eq!(
            serial
                .cleared
                .as_ref()
                .map(|(sc, o)| (sc.clone(), o.fingerprint)),
            pooled
                .cleared
                .as_ref()
                .map(|(sc, o)| (sc.clone(), o.fingerprint))
        );
    }

    #[test]
    fn hardened_short_campaign_stays_clear() {
        let oracle = oracle(ConfigKind::Hardened);
        assert_eq!(oracle.baseline().verdict, Verdict::Clear);
        let config = CampaignConfig::new(77)
            .with_iterations(6)
            .with_max_violations(0);
        let report = run_campaign(&config, &oracle, |_, _, _| {});
        assert!(
            report.violations.is_empty(),
            "hardened config cleared the envelope, got {:?}",
            report
                .violations
                .iter()
                .map(|v| (v.minimal_outcome.verdict, v.minimal.clone()))
                .collect::<Vec<_>>()
        );
        assert!(report.cleared.is_some());
    }
}
