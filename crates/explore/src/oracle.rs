//! Invariant oracles: run one candidate [`FaultScenario`] and judge it.
//!
//! A run is judged against four invariants, in priority order:
//!
//! 1. **Panic** — the engine or protocol panicked (caught, never fatal to
//!    the campaign).
//! 2. **Mass conservation** — the per-round [`MassDefect`] of the
//!    instance, audited exactly like `bench_faults` does, must stay
//!    within tolerance. Only checked when the scenario makes mass a real
//!    invariant: crash–recover destroys crashed replicas' mass by design,
//!    a self-heal restart resets the ledger mid-run, and a Byzantine
//!    node's own accounting is fiction — in those runs the damage has to
//!    show up in the error/convergence checks instead. Attribute drift
//!    is the one partial case: weight mass is value-independent and
//!    stays a hard invariant, but the fraction audit compares enrolled
//!    contributions against indicators recomputed from the *drifted*
//!    values, so drifted runs keep the weight audit only.
//! 3. **Non-convergence** — an honest peer finished the round budget
//!    without any estimate.
//! 4. **Err_a regression** — the honest peers' Err_a exceeds
//!    `baseline × REGRESSION_FACTOR + REGRESSION_FLOOR`, where the
//!    baseline is a fault-free run of the *same* configuration (computed
//!    once per [`Oracle`]).
//!
//! Two protocol configurations are exposed as [`ConfigKind`]:
//! `Vanilla` is the paper's plain protocol on a loss-free engine with no
//! defenses, so any injected fault axis can violate; `Hardened` layers
//! every defense the repo has (two-phase exchange repair, robust
//! bounded-influence merging, verification points + self-healing) and is
//! expected to clear the mutator's entire bounded scenario envelope.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use adam2_bench::{
    adam2_engine_with, evaluate_peer_estimates, run_instance_audited, setup, ErrorReport,
    ExperimentSetup, PeerEstimate, AUDIT_FRACTION, AUDIT_WEIGHT,
};
use adam2_core::{
    uniform_points, Adam2Config, Adam2Node, AsyncAdam2, InstanceId, InstanceMeta, RobustPolicy,
};
use adam2_sim::{
    ActiveAdversary, EventConfig, EventEngine, ExchangeRepair, FaultEvent, FaultScenario,
    LatencyModel, MassAuditor, MassViolation, NodeId, NodeSlab, RoundSnapshot, SimTelemetry,
};
use adam2_traces::Attribute;

use crate::coverage::behaviour_signature;

/// Gossip rounds per instance (matches `bench_faults`/`bench_byzantine`).
pub const ROUNDS: u64 = 35;
/// Extra rounds after the instance deadline so recovered nodes can
/// bootstrap estimates before the final evaluation.
pub const SETTLE_ROUNDS: u64 = 4;
/// Weight-mass drift above this is a violation (repaired runs hold
/// ~1e-15; unrepaired 20% burst leaks ~4.5e-2).
pub const WEIGHT_TOLERANCE: f64 = 1e-9;
/// Fraction-mass drift above this is a violation (looser than weight:
/// the defect is a sum of λ components, each carrying fp rounding).
pub const FRACTION_TOLERANCE: f64 = 1e-6;
/// Err_a must stay under `baseline * factor + floor`. The floor absorbs
/// population-truth drift from crash waves (replacements are fresh draws,
/// so the initial-population CDF is no longer exactly the truth).
pub const REGRESSION_FACTOR: f64 = 6.0;
/// See [`REGRESSION_FACTOR`].
pub const REGRESSION_FLOOR: f64 = 0.05;
/// The robust merge influence cap used by the hardened config (mirrors
/// `bench_byzantine`).
pub const INFLUENCE_CAP: f64 = 0.25;
/// Event-engine ticks per gossip round (mirrors `bench_byzantine`).
pub const PERIOD: u64 = 200;
/// Period boundaries sampled for the event-engine mass audit, counted
/// back from the instance deadline. The async network's one-sided
/// absorbs leave mass in flight at any instant — early in the run the
/// initiator's whole unit weight can be airborne — so only late
/// boundaries, after the defect has frozen, are meaningful.
pub const EVENT_AUDIT_BOUNDARIES: u64 = 3;
/// Event-engine weight-mass tolerance. Snapshot-based one-sided
/// absorption is only *approximately* conservative under concurrency
/// (the documented `AsyncAdam2` caveat): interleaved exchanges during
/// the early spreading phase bake in a permanent defect of ~6.2e-2 at
/// 10^4 nodes even fault-free, so the cycle engine's 1e-9 bar is
/// unreachable here. Real fault damage sits far above this envelope —
/// an unrepaired 30% loss burst freezes the defect at ~1.31.
pub const EVENT_WEIGHT_TOLERANCE: f64 = 0.15;
/// Per-node fraction-mass tolerance for the event engine (the fraction
/// defect is a sum over the population, so it scales with n). Measured
/// fault-free envelope ~7e-4 per node at 10^4 nodes; the 30% burst
/// leaves ~4.2e-3 per node.
pub const EVENT_FRACTION_TOLERANCE_PER_NODE: f64 = 2e-3;

/// Which protocol/engine configuration a run is judged under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigKind {
    /// Plain Adam2 on a loss-free engine: no repair, no robust merge, no
    /// self-healing. The paper's baseline; faults are expected to hurt.
    Vanilla,
    /// Every defense on: exchange repair, robust bounded-influence
    /// merging, verification points + self-healing.
    Hardened,
}

impl ConfigKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ConfigKind::Vanilla => "vanilla",
            ConfigKind::Hardened => "hardened",
        }
    }

    #[allow(clippy::should_implement_trait)] // fallible, not the Err-typed trait
    pub fn from_str(s: &str) -> Option<Self> {
        match s {
            "vanilla" => Some(ConfigKind::Vanilla),
            "hardened" => Some(ConfigKind::Hardened),
            _ => None,
        }
    }
}

/// The oracle's judgment of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Every invariant held.
    Clear,
    /// Aggregate mass rose above its baseline.
    MassInflation,
    /// Aggregate mass fell below its baseline.
    MassLeakage,
    /// Err_a exceeded the regression threshold.
    ErrRegression,
    /// An honest peer finished without an estimate.
    NonConvergence,
    /// The run panicked.
    Panic,
}

impl Verdict {
    pub fn is_violation(self) -> bool {
        self != Verdict::Clear
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Clear => "clear",
            Verdict::MassInflation => "mass_inflation",
            Verdict::MassLeakage => "mass_leakage",
            Verdict::ErrRegression => "err_regression",
            Verdict::NonConvergence => "non_convergence",
            Verdict::Panic => "panic",
        }
    }

    #[allow(clippy::should_implement_trait)] // fallible, not the Err-typed trait
    pub fn from_str(s: &str) -> Option<Self> {
        match s {
            "clear" => Some(Verdict::Clear),
            "mass_inflation" => Some(Verdict::MassInflation),
            "mass_leakage" => Some(Verdict::MassLeakage),
            "err_regression" => Some(Verdict::ErrRegression),
            "non_convergence" => Some(Verdict::NonConvergence),
            "panic" => Some(Verdict::Panic),
            _ => None,
        }
    }
}

/// Everything the campaign needs from one judged run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    pub verdict: Verdict,
    /// Magnitude of the violation: signed mass drift, Err_a ratio over
    /// baseline, or missing-peer count. `0.0` when clear.
    pub detail: f64,
    /// Honest peers' Err_a over the whole CDF domain.
    pub err_a: f64,
    /// Bit-exact FNV-1a digest over every peer's final state; two runs
    /// with equal fingerprints took byte-identical trajectories.
    pub fingerprint: u64,
    /// Behaviour features for the coverage map (log2-bucketed telemetry
    /// counters, error buckets).
    pub signature: Vec<u64>,
    /// Self-heal epoch restarts observed.
    pub healed: u64,
    /// Honest peers that finished without an estimate.
    pub peers_without_estimate: usize,
}

/// Parameters shared by every run of one [`Oracle`].
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    pub kind: ConfigKind,
    pub nodes: usize,
    pub lambda: usize,
    pub seed: u64,
    pub sample_peers: usize,
}

impl OracleConfig {
    /// Campaign defaults: 400 nodes keeps one judged run in the low
    /// milliseconds so a bounded campaign can afford hundreds of them.
    pub fn new(kind: ConfigKind) -> Self {
        Self {
            kind,
            nodes: 400,
            lambda: 20,
            seed: 42,
            sample_peers: 100,
        }
    }

    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A reusable judge: one generated population + one fault-free baseline,
/// then any number of candidate scenarios scored against them.
pub struct Oracle {
    config: OracleConfig,
    setup: ExperimentSetup,
    baseline: RunOutcome,
}

impl Oracle {
    /// Builds the population and runs the fault-free baseline.
    pub fn new(config: OracleConfig) -> Self {
        let s = setup(Attribute::Ram, config.nodes, config.seed);
        let baseline = run_cycle(&config, &s, None, None);
        Self {
            config,
            setup: s,
            baseline,
        }
    }

    pub fn config(&self) -> &OracleConfig {
        &self.config
    }

    /// The fault-free baseline outcome (its verdict is `Clear` for any
    /// sane configuration; the campaign asserts this before exploring).
    pub fn baseline(&self) -> &RunOutcome {
        &self.baseline
    }

    /// Judges one scenario. Panics inside the run are caught and
    /// reported as [`Verdict::Panic`].
    pub fn run(&self, scenario: &FaultScenario) -> RunOutcome {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_cycle(
                &self.config,
                &self.setup,
                Some(scenario),
                Some(self.baseline.err_a),
            )
        }));
        result.unwrap_or_else(|_| RunOutcome {
            verdict: Verdict::Panic,
            detail: 1.0,
            err_a: f64::NAN,
            fingerprint: 0,
            signature: Vec::new(),
            healed: 0,
            peers_without_estimate: 0,
        })
    }
}

/// FNV-1a over the little-endian bytes of `v`, folded into `h` (the same
/// digest `bench_byzantine` uses, so fingerprints are comparable).
pub fn mix(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The first adversary window's membership oracle, if the scenario has
/// one. The mutator never emits more than one adversary event; hand-
/// written corpus entries with several windows are judged against the
/// first (earlier honest-set changes are not modelled).
pub fn adversary_of(scenario: &FaultScenario) -> Option<ActiveAdversary> {
    scenario.events.iter().find_map(|event| match event {
        FaultEvent::Adversary { from_round, .. } => scenario.adversary_at(*from_round),
        _ => None,
    })
}

/// Lowest honest slot (assumed-honest initiator, worst case for the
/// targeted-partner model whose victim is the lowest live slot).
pub fn honest_initiator(ids: &[NodeId], adversary: Option<&ActiveAdversary>) -> NodeId {
    *ids.iter()
        .filter(|id| adversary.is_none_or(|adv| !adv.is_byzantine(id.slot())))
        .min_by_key(|id| id.slot())
        .expect("at least one honest node")
}

/// Which mass audits are real invariants of this run (see the module
/// docs). Weight mass is value-independent, so attribute drift leaves it
/// a hard invariant; the fraction audit compares enrolled indicator
/// contributions against indicators *recomputed from current values*, so
/// a drift window makes the comparison read stale-by-design estimates as
/// a defect — drifted runs keep the weight audit and drop the fraction
/// audit.
#[derive(Debug, Clone, Copy)]
struct MassEligibility {
    weight: bool,
    fraction: bool,
}

fn mass_eligibility_for(scenario: Option<&FaultScenario>, healed: u64) -> MassEligibility {
    let base = healed == 0
        && scenario.is_none_or(|sc| {
            !sc.events.iter().any(|e| {
                matches!(
                    e,
                    FaultEvent::CrashRecover { .. } | FaultEvent::Adversary { .. }
                )
            })
        });
    MassEligibility {
        weight: base,
        fraction: base && scenario.is_none_or(|sc| !sc.has_drift()),
    }
}

/// Judges the auditor + evaluation results shared by the cycle and event
/// paths. `baseline_err` of `None` skips the regression check (used for
/// the baseline run itself).
#[allow(clippy::too_many_arguments)]
fn judge(
    mass_eligible: MassEligibility,
    weight_drift: Option<f64>,
    weight_violation: Option<MassViolation>,
    fraction_drift: Option<f64>,
    fraction_violation: Option<MassViolation>,
    err_a: f64,
    peers_without_estimate: usize,
    baseline_err: Option<f64>,
) -> (Verdict, f64) {
    if mass_eligible.weight {
        if let Some(kind) = weight_violation {
            let verdict = match kind {
                MassViolation::Inflation => Verdict::MassInflation,
                MassViolation::Leakage => Verdict::MassLeakage,
            };
            return (verdict, weight_drift.unwrap_or(f64::NAN));
        }
    }
    if mass_eligible.fraction {
        if let Some(kind) = fraction_violation {
            let verdict = match kind {
                MassViolation::Inflation => Verdict::MassInflation,
                MassViolation::Leakage => Verdict::MassLeakage,
            };
            return (verdict, fraction_drift.unwrap_or(f64::NAN));
        }
    }
    if peers_without_estimate > 0 {
        return (Verdict::NonConvergence, peers_without_estimate as f64);
    }
    if let Some(base) = baseline_err {
        if err_a > base * REGRESSION_FACTOR + REGRESSION_FLOOR {
            return (Verdict::ErrRegression, err_a / base);
        }
    }
    (Verdict::Clear, 0.0)
}

fn run_cycle(
    config: &OracleConfig,
    s: &ExperimentSetup,
    scenario: Option<&FaultScenario>,
    baseline_err: Option<f64>,
) -> RunOutcome {
    let hardened = config.kind == ConfigKind::Hardened;
    let mut proto_config = Adam2Config::new()
        .with_lambda(config.lambda)
        .with_rounds_per_instance(ROUNDS);
    if hardened {
        proto_config = proto_config
            .with_robust(
                RobustPolicy::new()
                    .with_trim_fraction(0.0)
                    .with_influence_cap(INFLUENCE_CAP),
            )
            .with_verify_points(10)
            .with_self_heal(1e-15, 1);
    }
    let mut engine = adam2_engine_with(s, proto_config, config.seed, |c| {
        if hardened {
            c.with_repair(ExchangeRepair::enabled())
        } else {
            c
        }
    });
    engine.attach_telemetry(SimTelemetry::new());
    let adversary = scenario.and_then(adversary_of);
    if let Some(sc) = scenario {
        engine
            .set_fault_scenario(sc.clone())
            .expect("oracle inputs are pre-validated scenarios");
    }
    let ids: Vec<NodeId> = engine.nodes().iter().map(|(id, _)| id).collect();
    let initiator = honest_initiator(&ids, adversary.as_ref());
    let meta = engine
        .with_ctx(|proto, ctx| proto.start_instance(initiator, ctx))
        .expect("instance start");
    // A self-heal restart needs its extended deadline to pass before it
    // finalises, so hardened runs get a second instance epoch.
    let total_rounds = if hardened {
        2 * ROUNDS + 1 + SETTLE_ROUNDS
    } else {
        ROUNDS + 1 + SETTLE_ROUNDS
    };
    let auditor = run_instance_audited(&mut engine, &meta, total_rounds);
    let healed = engine.protocol().healed_count();

    let (peers, n_hats) = collect_peers(engine.nodes());
    let report = score_honest(&peers, adversary.as_ref(), s, config);
    let fingerprint = fingerprint_of(&peers, &n_hats);

    let snapshots: Vec<RoundSnapshot> = engine
        .telemetry_mut()
        .map(|t| t.telemetry().snapshots().to_vec())
        .unwrap_or_default();
    let signature = behaviour_signature(
        &snapshots,
        report.avg_cdf,
        healed,
        report.peers_without_estimate,
    );

    // Judge the *worst excursion*, not the final reading: once the
    // instance completes it leaves the accounting scope and the defect
    // reads 0 again, but the drift while it was live already corrupted
    // the estimates derived from it (`bench_faults` reports the same
    // max-excursion statistic).
    let mass_eligible = mass_eligibility_for(scenario, healed);
    let (verdict, detail) = judge(
        mass_eligible,
        auditor.worst_drift_of(AUDIT_WEIGHT),
        auditor.worst_violation_of(AUDIT_WEIGHT, WEIGHT_TOLERANCE),
        auditor.worst_drift_of(AUDIT_FRACTION),
        auditor.worst_violation_of(AUDIT_FRACTION, FRACTION_TOLERANCE),
        report.avg_cdf,
        report.peers_without_estimate,
        baseline_err,
    );
    RunOutcome {
        verdict,
        detail,
        err_a: report.avg_cdf,
        fingerprint,
        signature,
        healed,
        peers_without_estimate: report.peers_without_estimate,
    }
}

/// Final per-peer state (slot + optional estimate) and n̂ samples, shared
/// by the cycle and event paths (both engines expose the same
/// [`Adam2Node`] slab).
fn collect_peers(nodes: &NodeSlab<Adam2Node>) -> PeerStates {
    let peers: Vec<(usize, Option<PeerEstimate>)> = nodes
        .iter()
        .map(|(id, node)| {
            let est = node.estimate().map(|est| PeerEstimate {
                instance: est.instance.as_u64(),
                thresholds: est.thresholds.clone(),
                fractions: est.fractions.clone(),
                min: est.min,
                max: est.max,
            });
            (id.slot(), est)
        })
        .collect();
    let n_hats: Vec<Option<f64>> = nodes
        .iter()
        .map(|(_, node)| node.estimate().and_then(|est| est.n_hat))
        .collect();
    (peers, n_hats)
}

type PeerStates = (Vec<(usize, Option<PeerEstimate>)>, Vec<Option<f64>>);

/// Err_a over the honest peers only (a Byzantine node's estimate is not
/// an invariant the protocol owes anyone).
fn score_honest(
    peers: &[(usize, Option<PeerEstimate>)],
    adversary: Option<&ActiveAdversary>,
    s: &ExperimentSetup,
    config: &OracleConfig,
) -> ErrorReport {
    let honest: Vec<Option<PeerEstimate>> = peers
        .iter()
        .filter(|(slot, _)| adversary.is_none_or(|adv| !adv.is_byzantine(*slot)))
        .map(|(_, est)| est.clone())
        .collect();
    evaluate_peer_estimates(&honest, &s.truth, config.sample_peers, config.seed)
}

/// FNV-1a digest over every peer's final state (same construction as
/// `bench_byzantine`): two runs with equal fingerprints took
/// byte-identical trajectories.
fn fingerprint_of(peers: &[(usize, Option<PeerEstimate>)], n_hats: &[Option<f64>]) -> u64 {
    let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
    for (slot, est) in peers {
        fingerprint = mix(fingerprint, *slot as u64);
        let Some(est) = est else { continue };
        for f in &est.fractions {
            fingerprint = mix(fingerprint, f.to_bits());
        }
        fingerprint = mix(fingerprint, est.min.to_bits());
        fingerprint = mix(fingerprint, est.max.to_bits());
    }
    for n_hat in n_hats.iter().flatten() {
        fingerprint = mix(fingerprint, n_hat.to_bits());
    }
    fingerprint
}

/// The event-engine counterpart of `adam2_bench::mass_defect`: aggregate
/// weight and fraction mass of `meta`'s instance over the whole slab.
fn event_mass_defect(engine: &EventEngine<AsyncAdam2>, meta: &InstanceMeta) -> (f64, f64) {
    let lambda = meta.thresholds.len();
    let mut weight = 0.0f64;
    let mut fractions = vec![0.0f64; lambda];
    let mut indicators = vec![0.0f64; lambda];
    let mut participants = 0usize;
    for (_, node) in engine.nodes().iter() {
        let Some(inst) = node.active_instance(meta.id) else {
            continue;
        };
        participants += 1;
        weight += inst.weight;
        for (acc, f) in fractions.iter_mut().zip(&inst.fractions) {
            *acc += f;
        }
        for (acc, t) in indicators.iter_mut().zip(meta.thresholds.iter()) {
            *acc += node.value().indicator(*t);
        }
    }
    let fraction = fractions
        .iter()
        .zip(&indicators)
        .map(|(f, x)| (f - x).abs())
        .fold(0.0f64, f64::max);
    (if participants > 0 { weight - 1.0 } else { 0.0 }, fraction)
}

impl Oracle {
    /// Judges one scenario on the *event engine* (the oracle's
    /// cross-engine check, closing the PR 5 parity gap): same population,
    /// same invariants, judged from period-boundary mass samples because
    /// the async network's one-sided absorbs keep mass in flight at any
    /// instant — see [`EVENT_AUDIT_BOUNDARIES`].
    ///
    /// `Hardened` here means the robust bounded-influence merge (exchange
    /// repair and self-healing are cycle-engine defenses; the async
    /// protocol has neither). `baseline_err` of `None` skips the
    /// regression check — run a fault-free event baseline first and pass
    /// its `err_a`; the cycle baseline is not comparable because the
    /// engines converge at different rates.
    pub fn run_event(
        &self,
        scenario: Option<&FaultScenario>,
        threads: usize,
        baseline_err: Option<f64>,
    ) -> RunOutcome {
        let config = &self.config;
        let s = &self.setup;
        let hardened = config.kind == ConfigKind::Hardened;
        let mut proto = AsyncAdam2::with_population(PERIOD, s.population.values().to_vec(), {
            let pop = s.population.clone();
            move |rng| pop.draw_fresh(rng)
        });
        if hardened {
            proto = proto.with_robust(
                RobustPolicy::new()
                    .with_trim_fraction(0.0)
                    .with_influence_cap(INFLUENCE_CAP),
            );
        }
        let event_config = EventConfig::new(s.population.len(), config.seed)
            .with_gossip_period(PERIOD)
            .with_latency(LatencyModel::Uniform { min: 5, max: 40 })
            .with_threads(threads);
        let mut engine = EventEngine::new(event_config, proto);
        let adversary = scenario.and_then(adversary_of);
        if let Some(sc) = scenario {
            engine
                .set_fault_scenario(sc.clone())
                .expect("oracle inputs are pre-validated scenarios");
        }
        let thresholds = uniform_points(s.truth.min(), s.truth.max(), config.lambda);
        let meta = Arc::new(InstanceMeta {
            id: InstanceId::derive(0, 0, 1),
            thresholds: thresholds.into(),
            verify_thresholds: Vec::new().into(),
            start_round: 0,
            end_round: ROUNDS,
            multi: false,
        });
        let ids: Vec<NodeId> = engine.nodes().iter().map(|(id, _)| id).collect();
        let initiator = honest_initiator(&ids, adversary.as_ref());
        engine.with_ctx(|proto, ctx| proto.start_instance(initiator, meta.clone(), ctx));

        let mut auditor = MassAuditor::new();
        auditor.observe(AUDIT_WEIGHT, 0.0);
        auditor.observe(AUDIT_FRACTION, 0.0);
        for k in (ROUNDS - EVENT_AUDIT_BOUNDARIES)..ROUNDS {
            engine.run_until_parallel(k * PERIOD);
            let (weight, fraction) = event_mass_defect(&engine, &meta);
            auditor.observe(AUDIT_WEIGHT, weight);
            auditor.observe(AUDIT_FRACTION, fraction);
        }
        engine.run_until_parallel(PERIOD * (ROUNDS + 1 + SETTLE_ROUNDS));

        let (peers, n_hats) = collect_peers(engine.nodes());
        let report = score_honest(&peers, adversary.as_ref(), s, config);
        let fingerprint = fingerprint_of(&peers, &n_hats);

        let mass_eligible = mass_eligibility_for(scenario, 0);
        let (verdict, detail) = judge(
            mass_eligible,
            auditor.worst_drift_of(AUDIT_WEIGHT),
            auditor.worst_violation_of(AUDIT_WEIGHT, EVENT_WEIGHT_TOLERANCE),
            auditor.worst_drift_of(AUDIT_FRACTION),
            auditor.worst_violation_of(
                AUDIT_FRACTION,
                EVENT_FRACTION_TOLERANCE_PER_NODE * config.nodes as f64,
            ),
            report.avg_cdf,
            report.peers_without_estimate,
            baseline_err,
        );
        RunOutcome {
            verdict,
            detail,
            err_a: report.avg_cdf,
            fingerprint,
            // The event engine's telemetry is tick-granular; the
            // behaviour signature is a cycle-path concept and stays
            // empty here (the campaign only explores on the cycle
            // engine).
            signature: Vec::new(),
            healed: 0,
            peers_without_estimate: report.peers_without_estimate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adam2_sim::{AdversaryModel, PartitionKind};

    fn small(kind: ConfigKind) -> Oracle {
        Oracle::new(OracleConfig::new(kind).with_nodes(200))
    }

    #[test]
    fn baseline_is_clear() {
        let oracle = small(ConfigKind::Vanilla);
        assert_eq!(oracle.baseline().verdict, Verdict::Clear);
        assert!(
            oracle.baseline().err_a < 0.05,
            "err_a {}",
            oracle.baseline().err_a
        );
        assert_eq!(oracle.baseline().peers_without_estimate, 0);
    }

    #[test]
    fn vanilla_burst_loss_leaks_mass() {
        let oracle = small(ConfigKind::Vanilla);
        let scenario = FaultScenario::new(7).with_burst_loss(5, 15, 0.3);
        let outcome = oracle.run(&scenario);
        assert!(
            matches!(
                outcome.verdict,
                Verdict::MassLeakage | Verdict::MassInflation
            ),
            "expected a mass violation, got {:?} (detail {})",
            outcome.verdict,
            outcome.detail
        );
    }

    #[test]
    fn hardened_burst_loss_is_clear() {
        let oracle = small(ConfigKind::Hardened);
        let scenario = FaultScenario::new(7).with_burst_loss(5, 15, 0.3);
        let outcome = oracle.run(&scenario);
        assert_eq!(outcome.verdict, Verdict::Clear, "detail {}", outcome.detail);
    }

    #[test]
    fn vanilla_partition_alone_is_clear() {
        // A healed partition loses no messages: mass is conserved and the
        // instance still has 15+ rounds to converge.
        let oracle = small(ConfigKind::Vanilla);
        let scenario = FaultScenario::new(7).with_partition(5, 12, PartitionKind::Bisect);
        let outcome = oracle.run(&scenario);
        assert_eq!(outcome.verdict, Verdict::Clear, "detail {}", outcome.detail);
    }

    #[test]
    fn vanilla_poisoning_regresses_error() {
        let oracle = small(ConfigKind::Vanilla);
        let scenario = FaultScenario::new(7).with_adversary(
            0,
            ROUNDS + 3,
            0.1,
            AdversaryModel::ValuePoisoning { magnitude: 5.0 },
        );
        let outcome = oracle.run(&scenario);
        assert_eq!(
            outcome.verdict,
            Verdict::ErrRegression,
            "err_a {} vs baseline {}",
            outcome.err_a,
            oracle.baseline().err_a
        );
    }

    #[test]
    fn hardened_poisoning_is_clear() {
        let oracle = small(ConfigKind::Hardened);
        let scenario = FaultScenario::new(7).with_adversary(
            0,
            ROUNDS + 3,
            0.1,
            AdversaryModel::ValuePoisoning { magnitude: 5.0 },
        );
        let outcome = oracle.run(&scenario);
        assert_eq!(outcome.verdict, Verdict::Clear, "err_a {}", outcome.err_a);
    }

    #[test]
    fn drift_inside_envelope_is_clear_on_both_configs() {
        use adam2_sim::DriftModel;
        // Top-of-envelope drifts (see `mutate`'s RAMP/SHIFT ranges): the
        // fraction audit is waived, the weight audit holds, and Err_a
        // against the enrolment-time truth stays inside the band.
        for kind in [ConfigKind::Vanilla, ConfigKind::Hardened] {
            let oracle = small(kind);
            for scenario in [
                FaultScenario::new(7).with_drift(5, 15, DriftModel::LinearRamp { per_round: 20.0 }),
                FaultScenario::new(7).with_drift(10, 11, DriftModel::Step { shift: 500.0 }),
                FaultScenario::new(7).with_drift(0, 30, DriftModel::Replacement { rate: 0.1 }),
            ] {
                let outcome = oracle.run(&scenario);
                assert_eq!(
                    outcome.verdict,
                    Verdict::Clear,
                    "{kind:?} {scenario:?}: detail {} err_a {} (baseline {})",
                    outcome.detail,
                    outcome.err_a,
                    oracle.baseline().err_a
                );
            }
        }
    }

    #[test]
    fn drifted_burst_still_caught_by_weight_audit() {
        use adam2_sim::DriftModel;
        // Drift waives only the fraction audit: an unrepaired loss burst
        // riding the same scenario still leaks value-independent weight
        // mass, and the oracle must keep catching it.
        let oracle = small(ConfigKind::Vanilla);
        let scenario = FaultScenario::new(7)
            .with_burst_loss(5, 15, 0.3)
            .with_drift(5, 15, DriftModel::LinearRamp { per_round: 10.0 });
        let outcome = oracle.run(&scenario);
        assert!(
            matches!(
                outcome.verdict,
                Verdict::MassLeakage | Verdict::MassInflation
            ),
            "expected a weight-mass violation, got {:?} (detail {})",
            outcome.verdict,
            outcome.detail
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let oracle = small(ConfigKind::Vanilla);
        let scenario = FaultScenario::new(7).with_burst_loss(5, 15, 0.3);
        let a = oracle.run(&scenario);
        let b = oracle.run(&scenario);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.detail.to_bits(), b.detail.to_bits());
        assert_eq!(a.signature, b.signature);
    }

    #[test]
    fn verdict_strings_round_trip() {
        for v in [
            Verdict::Clear,
            Verdict::MassInflation,
            Verdict::MassLeakage,
            Verdict::ErrRegression,
            Verdict::NonConvergence,
            Verdict::Panic,
        ] {
            assert_eq!(Verdict::from_str(v.as_str()), Some(v));
        }
        assert_eq!(Verdict::from_str("bogus"), None);
        for k in [ConfigKind::Vanilla, ConfigKind::Hardened] {
            assert_eq!(ConfigKind::from_str(k.as_str()), Some(k));
        }
    }
}
