//! Property-based tests of the scenario mutator: whatever the fuzzer
//! produces must be a *valid* scenario (the oracle trusts `validate()`
//! and never re-checks), and mutation must be a pure function of
//! (parent, RNG seed) so campaigns replay bit-identically.

use proptest::prelude::*;

use adam2_explore::mutate::Mutator;
use adam2_sim::{derive_seed, seeded_rng, FaultScenario, PartitionKind};

/// A small pool of valid parents covering every fault axis; property
/// cases pick one by index and then walk it through chained mutations.
fn parents() -> Vec<FaultScenario> {
    vec![
        FaultScenario::new(1),
        FaultScenario::new(2).with_burst_loss(5, 15, 0.2),
        FaultScenario::new(3)
            .with_burst_loss(5, 15, 0.2)
            .with_partition(10, 20, PartitionKind::Bisect),
        FaultScenario::new(4).with_crash_recover(8, 16, 0.1),
        FaultScenario::new(5)
            .with_delay(0, 9, 20)
            .with_duplication(3, 12, 0.15),
        FaultScenario::new(6).with_adversary(
            0,
            30,
            0.1,
            adam2_sim::AdversaryModel::ValuePoisoning { magnitude: 5.0 },
        ),
    ]
}

proptest! {
    #[test]
    fn mutated_scenarios_always_validate(
        parent_idx in 0usize..6,
        seed in any::<u64>(),
        steps in 1usize..8,
    ) {
        let mutator = Mutator::new();
        let mut scenario = parents()[parent_idx].clone();
        let mut rng = seeded_rng(seed);
        // Chained mutation — each child becomes the next parent, so
        // validity must be closed under arbitrarily deep mutation.
        for step in 0..steps {
            let (child, op) = mutator.mutate(&scenario, &mut rng);
            prop_assert!(op < Mutator::op_names().len());
            prop_assert!(
                child.validate().is_ok(),
                "step {step} op {} produced invalid scenario {:?} from {:?}",
                Mutator::op_names()[op],
                child,
                scenario,
            );
            scenario = child;
        }
    }

    #[test]
    fn mutation_is_deterministic_under_fixed_seed(
        parent_idx in 0usize..6,
        seed in any::<u64>(),
    ) {
        let mutator = Mutator::new();
        let parent = &parents()[parent_idx];
        let (a, op_a) = mutator.mutate(parent, &mut seeded_rng(seed));
        let (b, op_b) = mutator.mutate(parent, &mut seeded_rng(seed));
        prop_assert_eq!(&a, &b, "same seed, same child");
        prop_assert_eq!(op_a, op_b);
        // A derived stream is a different but equally valid draw (the
        // campaign keys each iteration off `derive_seed(master, i)`).
        let (c, _) = mutator.mutate(parent, &mut seeded_rng(derive_seed(seed, 1)));
        prop_assert!(c.validate().is_ok());
    }

    #[test]
    fn rewarded_weights_stay_normalisable(
        ops in prop::collection::vec(0usize..8, 1..40),
    ) {
        let mut mutator = Mutator::new();
        let n_ops = Mutator::op_names().len();
        for op in ops {
            mutator.reward(op % n_ops);
        }
        let weights = mutator.weights();
        prop_assert_eq!(weights.len(), n_ops);
        prop_assert!(weights.iter().all(|w| w.is_finite() && *w > 0.0));
    }
}
