//! Replays the committed regression corpus (`corpus/` at the repository
//! root) and demands bit-identical outcomes: same verdict, same run
//! fingerprint. Every scenario the explorer ever shrank to minimal form
//! — and every hand-picked cleared scenario — stays a permanent
//! regression test through this file.
//!
//! Regenerate the corpus with
//! `bench_explore --nodes 400 --emit-corpus corpus` after an intentional
//! engine change, and review the diff: a verdict flip is a behaviour
//! change, not noise.

use std::path::Path;

use adam2_explore::corpus::{load_dir, replay};

#[test]
fn committed_corpus_replays_bit_identically() {
    let dir = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../corpus"));
    let entries = load_dir(dir).expect("committed corpus loads");
    assert!(
        entries.len() >= 11,
        "seed corpus has at least the 4 fault shapes, 4 attacks and 3 drift entries, got {}",
        entries.len()
    );
    assert!(
        entries.iter().any(|e| e.scenario.has_drift()),
        "corpus exercises the drifted oracle path"
    );
    let results = replay(&entries);
    let failures: Vec<String> = results
        .iter()
        .filter(|r| !r.ok())
        .map(|r| {
            format!(
                "{}: expected {} got {} (fingerprint {})",
                r.name,
                r.expected.as_str(),
                r.got.as_str(),
                if r.fingerprint_matched {
                    "match"
                } else {
                    "MISMATCH"
                }
            )
        })
        .collect();
    assert!(
        failures.is_empty(),
        "corpus entries changed behaviour:\n{}",
        failures.join("\n")
    );
}
