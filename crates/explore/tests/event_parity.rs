//! Cycle ↔ event engine fault-scenario parity (the PR 5 carry-over gap):
//! the same scenario, judged by the same oracle invariants, must reach
//! the same verdict *category* on both engines, and the event engine's
//! batch driver must be thread-count invariant under faults.
//!
//! Verdict **kind** is only compared where the physics makes it
//! deterministic: a fault-free run is `Clear` everywhere, while an
//! unrepaired loss burst breaks conservation on both engines but the
//! *sign* of the broken mass is a random walk over which halves of which
//! exchanges died, so the two engines may disagree on
//! inflation-vs-leakage while agreeing the invariant broke.

use adam2_explore::oracle::{ConfigKind, Oracle, OracleConfig, Verdict};
use adam2_sim::FaultScenario;

fn mass_broken(v: Verdict) -> bool {
    matches!(v, Verdict::MassInflation | Verdict::MassLeakage)
}

fn parity_at(nodes: usize) {
    let oracle = Oracle::new(OracleConfig::new(ConfigKind::Vanilla).with_nodes(nodes));

    // Fault-free: clear on both engines, and the event engine's parallel
    // driver is bit-identical across thread counts.
    assert_eq!(oracle.baseline().verdict, Verdict::Clear, "cycle baseline");
    let event_base = oracle.run_event(None, 2, None);
    assert_eq!(
        event_base.verdict,
        Verdict::Clear,
        "event baseline (detail {})",
        event_base.detail
    );
    assert_eq!(event_base.peers_without_estimate, 0);
    let event_base_seq = oracle.run_event(None, 1, None);
    assert_eq!(
        event_base.fingerprint, event_base_seq.fingerprint,
        "event engine must be thread-count invariant"
    );

    // Unrepaired loss burst: conservation breaks on both engines.
    let burst = FaultScenario::new(7).with_burst_loss(5, 15, 0.3);
    let cycle = oracle.run(&burst);
    assert!(
        mass_broken(cycle.verdict),
        "cycle burst verdict {:?} (detail {})",
        cycle.verdict,
        cycle.detail
    );
    let event = oracle.run_event(Some(&burst), 2, Some(event_base.err_a));
    assert!(
        mass_broken(event.verdict),
        "event burst verdict {:?} (detail {})",
        event.verdict,
        event.detail
    );
    let event_seq = oracle.run_event(Some(&burst), 1, Some(event_base.err_a));
    assert_eq!(
        event.fingerprint, event_seq.fingerprint,
        "thread-count invariance must survive injected faults"
    );
    assert_eq!(event.verdict, event_seq.verdict);
}

#[test]
fn cycle_event_parity_10k() {
    parity_at(10_000);
}

#[test]
#[ignore = "10^5-node event runs; run with --ignored (or via the scale CI lane)"]
fn cycle_event_parity_100k() {
    parity_at(100_000);
}
